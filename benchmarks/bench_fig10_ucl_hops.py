"""Benchmark: regenerate Figure 10 (UCL hop-length vs latency)."""

from benchmarks.conftest import assert_shapes, run_once
from repro.experiments import fig10_ucl_hops


def test_fig10(benchmark, scale):
    result = run_once(benchmark, fig10_ucl_hops.run, scale)
    assert_shapes(result)
    assert result.n_pairs > 100
    print(result.render())
