"""Benchmark: regenerate Figure 5 (intra- vs inter-domain latency CDFs)."""

from benchmarks.conftest import assert_shapes, run_once
from repro.experiments import fig5_intra_inter


def test_fig5(benchmark, scale):
    result = run_once(benchmark, fig5_intra_inter.run, scale)
    assert_shapes(result)
    print(result.render())
