"""Ablation: peers per end-network (the paper fixes 2).

More peers per end-network mean more "correct" answers per target, so
exact-closest discovery gets easier even though the cluster is equally
opaque — quantifying how much of the paper's difficulty stems from the
1-mate setup.
"""

from benchmarks.conftest import run_once
from repro.algorithms import MeridianSearch
from repro.analysis.tables import series_table
from repro.harness import QueryEngine, SamplingSpec
from repro.latency.builder import build_clustered_oracle
from repro.topology.clustered import ClusteredConfig

PEERS_PER_EN = (1, 2, 4, 8)


def sweep():
    engine = QueryEngine()
    rows = []
    for peers in PEERS_PER_EN:
        world = build_clustered_oracle(
            ClusteredConfig(
                n_clusters=10,
                end_networks_per_cluster=50,
                peers_per_end_network=peers,
                delta=0.2,
            ),
            seed=47,
        )
        record = engine.run_world_trial(
            world,
            MeridianSearch(),
            sampling=SamplingSpec(n_targets=80),
            n_queries=250,
            seed=47,
        )
        rows.append((peers, record.exact_rate, record.cluster_rate))
    return rows


def test_peers_per_en_effect(benchmark):
    rows = run_once(benchmark, sweep)
    peers = [r[0] for r in rows]
    closest = [r[1] for r in rows]
    cluster = [r[2] for r in rows]
    print(
        series_table(
            "peers/end-network",
            peers,
            {
                "P(correct closest)": [f"{v:.3f}" for v in closest],
                "P(correct cluster)": [f"{v:.3f}" for v in cluster],
            },
        )
    )
    # With one peer per EN there is no same-EN mate at all for most targets
    # (their EN-mates are targets too); more peers per EN -> easier exact hits.
    assert closest[-1] > closest[0]
