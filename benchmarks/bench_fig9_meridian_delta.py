"""Benchmark: regenerate Figure 9 (Meridian accuracy vs delta)."""

from benchmarks.conftest import assert_shapes, run_once
from repro.experiments import fig9_meridian_delta


def test_fig9(benchmark, scale):
    result = run_once(benchmark, fig9_meridian_delta.run, scale)
    assert_shapes(result)
    print(result.render())
