"""Ablation: nodes per ring (the paper fixes 16).

Ring capacity bounds the in-cluster candidates a query can probe, which is
exactly the brute-force budget once the clustering condition bites: success
scales with ring size (the Section 2 lower-bound's budget term) while probe
cost grows alongside.
"""

from benchmarks.conftest import run_once
from repro.algorithms import MeridianSearch
from repro.analysis.tables import series_table
from repro.core.lowerbound import success_probability_with_budget
from repro.harness import QueryEngine, SamplingSpec
from repro.latency.builder import build_clustered_oracle
from repro.meridian.overlay import MeridianConfig
from repro.topology.clustered import ClusteredConfig

RING_SIZES = (4, 8, 16, 32)
END_NETWORKS = 60


def sweep():
    world = build_clustered_oracle(
        ClusteredConfig(
            n_clusters=10, end_networks_per_cluster=END_NETWORKS, delta=0.2
        ),
        seed=43,
    )
    engine = QueryEngine()
    rows = []
    for ring_size in RING_SIZES:
        config = MeridianConfig(
            ring_size=ring_size, candidate_pool=max(48, 2 * ring_size)
        )
        record = engine.run_world_trial(
            world,
            MeridianSearch(config),
            sampling=SamplingSpec(n_targets=80),
            n_queries=300,
            seed=43,
        )
        rows.append((ring_size, record.exact_rate))
    return rows


def test_ring_size_budget_effect(benchmark):
    rows = run_once(benchmark, sweep)
    sizes = [r[0] for r in rows]
    accuracy = [r[1] for r in rows]
    bound = [
        success_probability_with_budget(END_NETWORKS, k) for k in sizes
    ]
    print(
        series_table(
            "ring size",
            sizes,
            {
                "P(correct closest)": [f"{v:.3f}" for v in accuracy],
                "budget bound": [f"{v:.3f}" for v in bound],
            },
        )
    )
    # Bigger rings help (more in-cluster budget)...
    assert accuracy[-1] > accuracy[0]
    # ...but success stays below the analytic in-cluster budget ceiling
    # (the query must also *enter* the right cluster and know the mate).
    for measured, ceiling in zip(accuracy, bound):
        assert measured <= ceiling + 0.1
