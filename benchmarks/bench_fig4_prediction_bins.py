"""Benchmark: regenerate Figure 4 (prediction measure vs predicted latency)."""

from benchmarks.conftest import assert_shapes, run_once
from repro.experiments import fig4_prediction_bins


def test_fig4(benchmark, scale):
    result = run_once(benchmark, fig4_prediction_bins.run, scale)
    assert_shapes(result)
    print(result.render())
