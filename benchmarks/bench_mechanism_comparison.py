"""Head-to-head: the Section 5 mechanisms vs the latency-only fallback.

"We suggest different possible approaches to tackle this issue ... and show
using a preliminary evaluation that one of these [UCL] is very promising."
This benchmark joins a peer population through the full cascade and
attributes every successful same-network discovery to the stage that found
it, with a Meridian-only control group.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis.tables import format_table
from repro.core.finder import NearestPeerFinder
from repro.topology.internet import InternetConfig, SyntheticInternet


def run_comparison():
    internet = SyntheticInternet.generate(
        InternetConfig(
            n_isps=4,
            pops_per_isp_low=2,
            pops_per_isp_high=4,
            en_per_pop_low=10,
            en_per_pop_high=40,
            mean_peers_per_campus_en=2.0,
        ),
        seed=61,
    )
    rng = np.random.default_rng(61)
    peers = np.array(internet.peer_ids)
    targets = rng.choice(peers, size=40, replace=False)
    target_set = set(int(t) for t in targets)
    members = [int(p) for p in peers if int(p) not in target_set]

    configurations = {
        "ucl-only": ("ucl",),
        "prefix-only": ("prefix",),
        "multicast+registry": ("multicast", "registry"),
        "full cascade": ("multicast", "registry", "ucl", "prefix"),
        "latency-only (fallback)": (),
    }
    rows = []
    for label, mechanisms in configurations.items():
        finder = NearestPeerFinder(internet, mechanisms=mechanisms, seed=61)
        finder.join_all(members[:250])
        exact = near = 0
        stages = {}
        for target in targets:
            result = finder.find(int(target))
            truth, truth_latency = finder.true_nearest(int(target))
            if result.found is not None:
                found_latency = internet.route(int(target), result.found).latency_ms
                exact += found_latency <= truth_latency + 1e-9
                near += found_latency <= max(2 * truth_latency, truth_latency + 1.0)
            stages[result.stage] = stages.get(result.stage, 0) + 1
        dominant = max(stages, key=stages.get)
        rows.append([label, exact / len(targets), near / len(targets), dominant])
    return rows


def test_mechanism_comparison(benchmark):
    rows = run_once(benchmark, run_comparison)
    print(
        format_table(
            ["configuration", "exact rate", "near rate", "dominant stage"], rows
        )
    )
    by_label = {r[0]: r for r in rows}
    # The paper's conclusion: the UCL mechanism dominates latency-only search.
    assert by_label["ucl-only"][1] > by_label["latency-only (fallback)"][1]
    assert by_label["full cascade"][1] >= by_label["ucl-only"][1] - 0.1
