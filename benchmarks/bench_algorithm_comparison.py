"""Head-to-head: every latency-only scheme on one clustered world.

The paper argues (Sections 2.3 and 6) that *all* of them fail to find the
same-end-network peer under the clustering condition.  This benchmark runs
the full zoo through the unified trial harness on the registered
``paper-comparison`` scenario — an identical world with realistic probe
noise, shared across schemes — and reports exact-hit rate, cluster-hit
rate, and probe cost.
"""

from benchmarks.conftest import run_once
from repro.algorithms import (
    BeaconSearch,
    KargerRuhlSearch,
    MeridianSearch,
    PicSearch,
    RandomProbeSearch,
    TapestrySearch,
    TiersSearch,
    VivaldiGreedySearch,
)
from repro.analysis.compare import format_trial_records
from repro.harness import QueryEngine, get_scenario

ALGORITHMS = (
    MeridianSearch,
    KargerRuhlSearch,
    TapestrySearch,
    PicSearch,
    VivaldiGreedySearch,
    TiersSearch,
    BeaconSearch,
    RandomProbeSearch,
)


def run_comparison():
    return QueryEngine().compare(get_scenario("paper-comparison"), ALGORITHMS)


def test_algorithm_comparison(benchmark):
    records = run_once(benchmark, run_comparison)
    print(format_trial_records(records))
    by_name = {r.scheme: r for r in records}
    # The paper's claim: no latency-only scheme reliably finds the mate.
    for name, record in by_name.items():
        assert record.exact_rate < 0.9, (
            f"{name} should not beat the clustering condition"
        )
    # Structured schemes should at least reach the right cluster far more
    # often than they find the exact mate (the phase transition signature).
    meridian = by_name["meridian"]
    assert meridian.cluster_rate > meridian.exact_rate
