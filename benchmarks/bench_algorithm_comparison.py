"""Head-to-head: every latency-only scheme on one clustered world.

The paper argues (Sections 2.3 and 6) that *all* of them fail to find the
same-end-network peer under the clustering condition.  This benchmark runs
the full zoo on an identical world with realistic probe noise and reports
exact-hit rate, cluster-hit rate, and probe cost.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.algorithms import (
    BeaconSearch,
    KargerRuhlSearch,
    MeridianSearch,
    PicSearch,
    RandomProbeSearch,
    TapestrySearch,
    TiersSearch,
    VivaldiGreedySearch,
)
from repro.analysis.tables import format_table
from repro.latency.builder import build_clustered_oracle
from repro.topology.clustered import ClusteredConfig
from repro.topology.oracle import NoisyOracle

ALGORITHMS = (
    MeridianSearch,
    KargerRuhlSearch,
    TapestrySearch,
    PicSearch,
    VivaldiGreedySearch,
    TiersSearch,
    BeaconSearch,
    RandomProbeSearch,
)


def run_comparison():
    world = build_clustered_oracle(
        ClusteredConfig(n_clusters=8, end_networks_per_cluster=40, delta=0.2),
        seed=53,
    )
    topology = world.topology
    n = topology.n_nodes
    rng = np.random.default_rng(53)
    targets = rng.choice(n, size=60, replace=False)
    target_set = set(int(t) for t in targets)
    members = np.array([i for i in range(n) if i not in target_set])
    noisy = NoisyOracle(world.oracle, sigma=0.05, additive_ms=0.3, seed=53)

    rows = []
    for algorithm_class in ALGORITHMS:
        algorithm = algorithm_class()
        algorithm.build(world.oracle, members, seed=53, probe_oracle=noisy)
        exact = cluster = probes = 0
        for target in targets:
            result = algorithm.query(int(target), seed=int(target))
            row = world.matrix.values[target, members]
            exact += world.matrix.values[target, result.found] <= row.min() + 1e-12
            cluster += topology.same_cluster(result.found, int(target))
            probes += result.probes
        rows.append(
            [
                algorithm.name,
                exact / len(targets),
                cluster / len(targets),
                probes / len(targets),
            ]
        )
    return rows


def test_algorithm_comparison(benchmark):
    rows = run_once(benchmark, run_comparison)
    print(
        format_table(
            ["algorithm", "P(exact closest)", "P(correct cluster)", "probes/query"],
            rows,
        )
    )
    by_name = {r[0]: r for r in rows}
    # The paper's claim: no latency-only scheme reliably finds the mate.
    for name, row in by_name.items():
        assert row[1] < 0.9, f"{name} should not beat the clustering condition"
    # Structured schemes should at least reach the right cluster far more
    # often than they find the exact mate (the phase transition signature).
    meridian = by_name["meridian"]
    assert meridian[2] > meridian[1]
