"""Benchmark: regenerate Table 1 (vantage points + spread verification)."""

from benchmarks.conftest import assert_shapes, run_once
from repro.experiments import table1_vantage


def test_table1(benchmark, scale):
    result = run_once(benchmark, table1_vantage.run, scale)
    assert_shapes(result)
    print(result.render())
