"""Benchmark: the future-work extension (true extent of the condition)."""

from benchmarks.conftest import assert_shapes, run_once
from repro.experiments import ext_condition_extent


def test_condition_extent(benchmark, scale):
    result = run_once(benchmark, ext_condition_extent.run, scale)
    assert_shapes(result)
    print(result.render())
