"""Benchmark: regenerate Figure 7 (top-5 cluster hub-latency CDFs)."""

from benchmarks.conftest import assert_shapes, run_once
from repro.experiments import fig7_intra_cluster


def test_fig7(benchmark, scale):
    result = run_once(benchmark, fig7_intra_cluster.run, scale)
    assert_shapes(result)
    print(result.render())
