"""Benchmark configuration.

Every benchmark regenerates one of the paper's tables/figures and asserts
its shape checks, so ``pytest benchmarks/ --benchmark-only`` doubles as the
reproduction harness.  Experiments are multi-second affairs; benchmarks run
them once (``pedantic`` with one round) and time that single execution.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentScale


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """Default (reduced, trend-preserving) experiment scale."""
    return ExperimentScale()


def run_once(benchmark, fn, *args, **kwargs):
    """Time one execution of an experiment driver."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def assert_shapes(result) -> None:
    """Fail the benchmark if any of the paper's qualitative claims breaks."""
    for check in result.shape_checks():
        assert check.evaluate(), f"{check.experiment}: {check.claim}"
