"""Benchmark: regenerate Figure 6 (cluster-size distributions)."""

from benchmarks.conftest import assert_shapes, run_once
from repro.experiments import fig6_cluster_sizes


def test_fig6(benchmark, scale):
    result = run_once(benchmark, fig6_cluster_sizes.run, scale)
    assert_shapes(result)
    print(result.render())
