"""Benchmark: regenerate Figure 3 (prediction-measure CDF)."""

from benchmarks.conftest import assert_shapes, run_once
from repro.experiments import fig3_prediction_cdf


def test_fig3(benchmark, scale):
    result = run_once(benchmark, fig3_prediction_cdf.run, scale)
    assert_shapes(result)
    assert result.n_pairs > 500
    print(result.render())
