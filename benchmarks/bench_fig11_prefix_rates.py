"""Benchmark: regenerate Figure 11 (prefix heuristic error rates)."""

from benchmarks.conftest import assert_shapes, run_once
from repro.experiments import fig11_prefix_rates


def test_fig11(benchmark, scale):
    result = run_once(benchmark, fig11_prefix_rates.run, scale)
    assert_shapes(result)
    print(result.render())
