"""Daemon scaling benchmark: flat per-event-loop-step cost up to 1M peers.

The vectorised daemon core (struct-of-arrays member state, batch round
stepping, matrix-free sparse worlds) exists so the simulated-time service
scales by *population* without the per-step cost creeping up.  This
benchmark pins that claim with three sections:

* ``sweep`` — a static-membership ``random-probe`` (budget 32) daemon run
  at each population in the scale's sweep, built on
  :func:`~repro.latency.builder.build_sparse_clustered_world` (O(n)
  memory; a dense 1M matrix would be 8 TB).  Static membership plus the
  single-round baseline isolates what we are measuring: the cost of one
  event-loop step (arrival, round completion, FIFO handoff), which must
  not grow with n.  ``per_step_cost_ratio`` divides the largest
  population's per-step cost by the smallest's — the committed paper
  baseline holds it <= 1.5, CI smoke holds <= 2 on the tiny scale.
* ``scalar_speedup`` — the same workload at n=100k under a wide fan-out
  (budget 256), timed under both steppers.  The scalar stepper pays one
  loop event per probe; the batch stepper one per round — identical
  timelines (the equivalence tests pin it), so the wall-clock ratio is
  pure stepping overhead.
* ``daemon_steady_1m`` — the registered ``daemon-steady`` spec (Poisson
  load, background churn) served at n=1,000,000, proving the full service
  path — membership events, FIFO queueing, time-weighted load accounting
  — completes at the paper's motivating population.

Setup (world build, member split, index build) is timed separately from
serving; only serving wall-clock divides into the per-step cost.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_daemon_scale.py \
        --scale paper --output BENCH_daemon_scale.json

``--scale tiny`` (populations 2k and 8k, no 1M steady section) is the CI
smoke setting; ``--scale paper`` sweeps 2k -> 20k -> 100k -> 1M — the
committed perf baseline.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.algorithms import RandomProbeSearch
from repro.harness import DaemonSpec, SamplingSpec, get_scenario
from repro.latency.builder import build_sparse_clustered_world
from repro.service import QueryDaemon
from repro.topology.clustered import ClusteredConfig
from repro.util.rng import make_rng

SCALES = ("tiny", "paper")

#: Population -> world shape (n = clusters x end-networks x 2 peers).
POPULATIONS = {
    2_000: ClusteredConfig(n_clusters=10, end_networks_per_cluster=100, delta=0.2),
    8_000: ClusteredConfig(n_clusters=20, end_networks_per_cluster=200, delta=0.2),
    20_000: ClusteredConfig(n_clusters=20, end_networks_per_cluster=500, delta=0.2),
    100_000: ClusteredConfig(
        n_clusters=50, end_networks_per_cluster=1000, delta=0.2
    ),
    1_000_000: ClusteredConfig(
        n_clusters=100, end_networks_per_cluster=5000, delta=0.2
    ),
}

SWEEPS = {"tiny": (2_000, 8_000), "paper": (2_000, 20_000, 100_000, 1_000_000)}

#: Static-membership service load for the per-step sweep.
SWEEP_SPEC = DaemonSpec(
    mean_interarrival_ms=40.0,
    per_node_concurrency=2,
    initial_fraction=0.7,
    min_members=32,
)

SWEEP_BUDGET = 32
#: Wide fan-out for the stepper shoot-out: with one loop event per probe
#: the scalar stepper's bill is ~budget events/query, the batch stepper's
#: ~3 — the ratio is the vectorisation win, not scheme work.
SPEEDUP_BUDGET = 512
SPEEDUP_N = 100_000


def _build_daemon(
    n_hosts: int, spec: DaemonSpec, budget: int, seed: int, n_targets: int = 100
) -> QueryDaemon:
    """World + member split + build + daemon, mirroring ``run_daemon_trial``.

    Same stream discipline as the engine front-end (targets off the trial
    rng first, workload generator split next) so these timings replay the
    exact runs the harness would produce — minus the scoring pass, which
    is not event-loop work.
    """
    world = build_sparse_clustered_world(POPULATIONS[n_hosts], seed=seed)
    rng = make_rng(seed)
    targets = SamplingSpec(n_targets=n_targets).sample(world, rng)
    members = np.setdiff1d(np.arange(world.topology.n_nodes), targets)
    workload_rng = np.random.default_rng(int(rng.integers(2**63)))
    n_initial = int(round(spec.initial_fraction * members.size))
    n_initial = min(members.size, max(spec.min_members, n_initial))
    shuffled = workload_rng.permutation(members)
    live = np.sort(shuffled[:n_initial])
    standby = shuffled[n_initial:].tolist()
    algorithm = RandomProbeSearch(budget=budget)
    algorithm.build(world.oracle, live, seed=rng)
    return QueryDaemon(
        algorithm,
        spec,
        targets=targets,
        workload_rng=workload_rng,
        algo_rng=rng,
        standby=standby,
    )


def _timed_run(daemon: QueryDaemon, n_queries: int) -> tuple[dict, object]:
    start = time.perf_counter()
    run = daemon.run(n_queries)
    serve_s = time.perf_counter() - start
    tta = np.array([job.time_to_answer_ms for job in run.jobs])
    return {
        "n_queries": n_queries,
        "serve_s": serve_s,
        "loop_events": run.loop_events,
        "per_step_us": 1e6 * serve_s / run.loop_events,
        "makespan_ms": run.makespan_ms,
        "tta_median_ms": float(np.median(tta)),
        "tta_p95_ms": float(np.percentile(tta, 95)),
        "tta_p99_ms": float(np.percentile(tta, 99)),
        "in_flight_probes_max": run.in_flight_probes_max,
        "queue_depth_max": run.queue_depth_max,
    }, run


def sweep_point(n_hosts: int, seed: int, n_queries: int) -> dict:
    start = time.perf_counter()
    daemon = _build_daemon(n_hosts, SWEEP_SPEC, SWEEP_BUDGET, seed)
    setup_s = time.perf_counter() - start
    row, _run = _timed_run(daemon, n_queries)
    row = {"n_hosts": n_hosts, "setup_s": setup_s, **row}
    print(
        f"  n={n_hosts:>9,}: setup {setup_s:6.1f}s  serve {row['serve_s']:6.2f}s  "
        f"{row['loop_events']} events  {row['per_step_us']:.1f}us/step"
    )
    return row


def scalar_speedup(seed: int, n_queries: int) -> dict:
    timings = {}
    for stepper in ("batch", "scalar"):
        spec = DaemonSpec(
            mean_interarrival_ms=SWEEP_SPEC.mean_interarrival_ms,
            per_node_concurrency=SWEEP_SPEC.per_node_concurrency,
            initial_fraction=SWEEP_SPEC.initial_fraction,
            min_members=SWEEP_SPEC.min_members,
            stepper=stepper,
        )
        daemon = _build_daemon(SPEEDUP_N, spec, SPEEDUP_BUDGET, seed)
        row, _run = _timed_run(daemon, n_queries)
        timings[stepper] = row
        print(
            f"  {stepper:>6}: serve {row['serve_s']:6.2f}s  "
            f"{row['loop_events']} events"
        )
    speedup = timings["scalar"]["serve_s"] / timings["batch"]["serve_s"]
    print(f"  batch speedup: {speedup:.1f}x")
    return {
        "n_hosts": SPEEDUP_N,
        "budget": SPEEDUP_BUDGET,
        "batch": timings["batch"],
        "scalar": timings["scalar"],
        "speedup": speedup,
    }


def daemon_steady_1m(seed: int, n_queries: int) -> dict:
    spec = get_scenario("daemon-steady").daemon
    start = time.perf_counter()
    daemon = _build_daemon(1_000_000, spec, SWEEP_BUDGET, seed)
    setup_s = time.perf_counter() - start
    row, run = _timed_run(daemon, n_queries)
    print(
        f"  steady 1M: setup {setup_s:.1f}s  serve {row['serve_s']:.2f}s  "
        f"{run.n_events} membership events  tta p50 {row['tta_median_ms']:.1f}ms"
    )
    return {
        "n_hosts": 1_000_000,
        "scenario": "daemon-steady",
        "completes": True,
        "setup_s": setup_s,
        "n_membership_events": run.n_events,
        **row,
    }


def run_suite(scale: str, seed: int) -> dict:
    n_queries = 120 if scale == "tiny" else 300
    print(f"per-step sweep (random-probe budget {SWEEP_BUDGET}, static membership)")
    sweep = [sweep_point(n, seed, n_queries) for n in SWEEPS[scale]]
    ratio = sweep[-1]["per_step_us"] / sweep[0]["per_step_us"]
    print(
        f"per-step cost ratio n={sweep[-1]['n_hosts']:,} / n={sweep[0]['n_hosts']:,}: "
        f"{ratio:.2f}x"
    )
    report = {
        "suite": "daemon-scale",
        "scale": scale,
        "seed": seed,
        "scheme": "random-probe",
        "sweep_budget": SWEEP_BUDGET,
        "sweep": sweep,
        "per_step_cost_ratio": ratio,
    }
    if scale == "paper":
        print(f"stepper shoot-out (n={SPEEDUP_N:,}, budget {SPEEDUP_BUDGET})")
        report["scalar_speedup"] = scalar_speedup(seed, n_queries)
        print("steady-state service at 1M peers")
        report["daemon_steady_1m"] = daemon_steady_1m(seed, n_queries)
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--scale", choices=SCALES, default="tiny")
    parser.add_argument("--seed", type=int, default=2008)
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help=(
            "where to write the JSON report (default: BENCH_daemon_scale.json "
            "for --scale paper, bench_daemon_scale_<scale>.json otherwise, so "
            "a casual tiny run cannot clobber the committed paper baseline)"
        ),
    )
    args = parser.parse_args()
    output = args.output
    if output is None:
        output = (
            Path("BENCH_daemon_scale.json")
            if args.scale == "paper"
            else Path(f"bench_daemon_scale_{args.scale}.json")
        )
    report = run_suite(args.scale, args.seed)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")


if __name__ == "__main__":
    main()
