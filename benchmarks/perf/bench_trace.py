"""Trace-overhead benchmark: the observability layer must be passive and cheap.

Runs the registered ``daemon-steady`` scenario for the same three schemes
as :mod:`bench_daemon` — ``random-probe``, ``beaconing``, ``meridian`` —
twice per scheme: tracing off (the default ``DaemonSpec``) and tracing on
(``trace=TraceSpec()``).  It reports

* ``identical`` — whether the traced run reproduced the untraced run's
  answers, probe bills and per-query timeline bit-for-bit (the passivity
  guarantee: tracing may never perturb the simulation it observes);
* ``overhead_ratio`` — best-of-``--reps`` wall-clock of the traced arm
  over the untraced arm, per scheme and in total.  The CI smoke gates the
  total at 1.15x;
* ``n_spans`` / ``trace_problems`` — the traced runs' span streams are
  dumped to a multi-block JSONL file and schema-validated, so the export
  path is exercised on every benchmark run.

Arms are interleaved (off, on, off, on, ...) and scored best-of so a
noisy neighbour inflates both arms rather than one side of the ratio.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_trace.py \
        --scale paper --output BENCH_trace.json

``--scale tiny`` is the CI smoke setting; ``--scale paper`` raises the
query count on the same world for a steadier ratio.
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.algorithms import BeaconSearch, MeridianSearch, RandomProbeSearch
from repro.harness import QueryEngine, TraceSpec, get_scenario
from repro.latency.builder import build_clustered_oracle
from repro.obs.export import dump_trace_jsonl, validate_trace

SCALES = ("tiny", "paper")

SCHEMES = (
    ("random-probe", lambda: RandomProbeSearch(budget=32)),
    ("beaconing", BeaconSearch),
    ("meridian", MeridianSearch),
)


def trace_scenario(scale: str):
    """The daemon-steady scenario at a query count that steadies the ratio."""
    base = get_scenario("daemon-steady")
    return base.with_(n_queries=250 if scale == "tiny" else 1000, trials=1)


def run_arm(scenario, world, factory, traced: bool):
    """One timed daemon trial; returns (record, wall_seconds)."""
    spec = scenario.daemon
    if traced:
        spec = replace(spec, trace=TraceSpec())
    engine = QueryEngine()
    start = time.perf_counter()
    record = engine.run_daemon_trial(
        world,
        factory(),
        spec,
        sampling=scenario.sampling,
        n_queries=scenario.n_queries,
        seed=scenario.seed,
        noise=scenario.noise,
    )
    return record, time.perf_counter() - start


def records_identical(off, on) -> bool:
    """The passivity check: traced and untraced runs must agree exactly."""
    return (
        np.array_equal(off.found, on.found)
        and np.array_equal(off.probes, on.probes)
        and np.array_equal(off.arrival_ms, on.arrival_ms)
        and np.array_equal(off.start_ms, on.start_ms)
        and np.array_equal(off.finish_ms, on.finish_ms)
        and off.makespan_ms == on.makespan_ms
        and off.total_maintenance_probes == on.total_maintenance_probes
    )


def bench_scheme(name, factory, scenario, world, reps: int, trace_path: Path, first: bool) -> dict:
    best_off = float("inf")
    best_on = float("inf")
    record_off = record_on = None
    for _ in range(reps):
        off, wall_off = run_arm(scenario, world, factory, traced=False)
        on, wall_on = run_arm(scenario, world, factory, traced=True)
        best_off = min(best_off, wall_off)
        best_on = min(best_on, wall_on)
        record_off, record_on = off, on
    identical = records_identical(record_off, record_on)
    dump_trace_jsonl(
        trace_path,
        record_on.spans,
        meta={
            "scheme": name,
            "n_queries": record_on.n_queries,
            "scenario": "daemon-steady",
            "seed": scenario.seed,
        },
        mode="w" if first else "a",
    )
    ratio = best_on / best_off
    print(
        f"{name}: off={best_off * 1e3:.0f}ms on={best_on * 1e3:.0f}ms "
        f"ratio={ratio:.3f}  spans={len(record_on.spans)}  "
        f"identical={identical}"
    )
    return {
        "name": name,
        "n_queries": record_on.n_queries,
        "identical": identical,
        "wall_off_s": best_off,
        "wall_on_s": best_on,
        "overhead_ratio": ratio,
        "n_spans": len(record_on.spans),
        "tta_median_ms": record_on.tta_median_ms,
    }


def run_suite(scale: str, seed: int, reps: int, trace_path: Path) -> dict:
    scenario = trace_scenario(scale).with_(seed=seed)
    world = build_clustered_oracle(
        scenario.topology, seed=seed, core_pool_size=scenario.core_pool_size
    )
    results = []
    for i, (name, factory) in enumerate(SCHEMES):
        results.append(
            bench_scheme(
                name, factory, scenario, world, reps, trace_path, first=i == 0
            )
        )
    problems = validate_trace(trace_path)
    total_off = sum(r["wall_off_s"] for r in results)
    total_on = sum(r["wall_on_s"] for r in results)
    total_ratio = total_on / total_off
    print(
        f"\ntotal: off={total_off * 1e3:.0f}ms on={total_on * 1e3:.0f}ms "
        f"ratio={total_ratio:.3f}  trace file: {trace_path} "
        f"({'OK' if not problems else problems})"
    )
    return {
        "suite": "trace",
        "scale": scale,
        "seed": seed,
        "reps": reps,
        "scenario": "daemon-steady",
        "n_queries": scenario.n_queries,
        "all_identical": all(r["identical"] for r in results),
        "total_overhead_ratio": total_ratio,
        "trace_file": str(trace_path),
        "trace_problems": problems,
        "benchmarks": results,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--scale", choices=SCALES, default="tiny")
    parser.add_argument("--seed", type=int, default=2008)
    parser.add_argument(
        "--reps",
        type=int,
        default=7,
        help="interleaved repetitions per arm (best-of scoring)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help=(
            "where to write the JSON report (default: BENCH_trace.json for "
            "--scale paper, bench_trace_<scale>.json otherwise, so a casual "
            "tiny run cannot clobber the committed paper baseline)"
        ),
    )
    parser.add_argument(
        "--trace-output",
        type=Path,
        default=None,
        help="where to write the traced runs' JSONL span streams",
    )
    args = parser.parse_args()
    output = args.output
    if output is None:
        output = (
            Path("BENCH_trace.json")
            if args.scale == "paper"
            else Path(f"bench_trace_{args.scale}.json")
        )
    trace_path = args.trace_output
    if trace_path is None:
        trace_path = output.with_suffix(".trace.jsonl")
    report = run_suite(args.scale, args.seed, args.reps, trace_path)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")


if __name__ == "__main__":
    main()
