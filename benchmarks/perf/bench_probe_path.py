"""Probe-path microbenchmarks: before/after timings for the batch fast path.

Times every layer the batched probe API accelerates, against a faithful
"before" that forces the historical scalar code path:

* ``meridian_overlay_build`` — overlay construction over a scalar-only
  oracle shim (one ``latency_ms`` call per probe, the pre-batch loop)
  versus the vectorised ``latencies_from`` / ``latency_block`` path;
* ``ring_selection`` — the O(k²) pairwise ring-selection block, scalar
  loop versus one ``latency_block`` call;
* ``algorithm_query_batch`` — a query batch through the common
  ``NearestPeerAlgorithm`` interface with scalar versus batched probes;
* ``dns_pair_latencies`` — the DNS study's true pair RTTs via per-pair
  ``route()`` versus one ``RouterLevelTopology.latency_matrix`` block;
* ``dns_study_pipeline`` — the full Section 3.1 pipeline with
  ``batch_true_latencies`` off versus on (results are bit-identical, see
  the equivalence tests).

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_probe_path.py \
        --scale paper --output BENCH_probe_path.json

``--scale tiny`` is the CI smoke setting (seconds, no timing thresholds);
``--scale paper`` is the committed perf baseline (n >= 2000 overlay
members, study-scale Internet).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.algorithms.random_probe import RandomProbeSearch
from repro.latency.synthetic import SyntheticCoreConfig, synthetic_core_matrix
from repro.measurement.datasets import generate_dns_server_population
from repro.measurement.dns_pipeline import DnsStudy, DnsStudyConfig
from repro.meridian.overlay import MeridianConfig, MeridianOverlay
from repro.meridian.selection import select_maxmin
from repro.topology.oracle import MatrixOracle, NoisyOracle, batch_latency_block

SCALES = ("tiny", "paper")


class ScalarOnlyOracle:
    """Shim hiding an oracle's batch methods: forces the pre-batch path.

    Every call site dispatches through ``batch_latencies_from`` /
    ``batch_latency_block``, whose fallback for this shim is exactly the
    historical per-probe Python loop — so timing against the shim measures
    the code this PR replaced.
    """

    def __init__(self, inner) -> None:
        self._inner = inner

    @property
    def n_nodes(self) -> int:
        return self._inner.n_nodes

    def latency_ms(self, a: int, b: int) -> float:
        return self._inner.latency_ms(a, b)


def _timed(fn) -> tuple[float, object]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _restore_legacy_paths(internet) -> None:
    """Patch one internet instance back to the pre-batch pipeline paths.

    Restores the two per-call patterns the batch PR replaced — host-pair
    latencies that materialise the full routed path, and the router-anchor
    linear scan over every end-network — so the "before" pipeline timing
    measures the code this PR replaced, on the same topology.  Values are
    unchanged (only the access pattern differs), so before/after results
    stay bit-identical.
    """
    from repro.topology.elements import RouterKind

    internet.latency_ms = lambda a, b: internet.route(a, b).latency_ms

    def legacy_router_anchor(router_id):
        record = internet.routers[router_id]
        if record.kind in (RouterKind.POP, RouterKind.CORE, RouterKind.IXP):
            return router_id, 0.0
        if router_id in internet.agg_parent:
            total = 0.0
            current = router_id
            while current in internet.agg_parent:
                parent, link_ms = internet.agg_parent[current]
                total += link_ms
                current = parent
            return current, total
        if record.kind == RouterKind.EDGE:
            for en in internet.end_networks:
                if en.attachment_router_ids and en.attachment_router_ids[0] == router_id:
                    return en.attachment_router_ids[-1], float(
                        sum(en.attachment_latencies_ms[1:])
                    )
        return None

    internet.router_anchor = legacy_router_anchor


def bench_overlay_build(scale: str, seed: int) -> dict:
    n = 2000 if scale == "paper" else 64
    matrix = synthetic_core_matrix(
        n, seed=seed, config=SyntheticCoreConfig(n_nodes=n)
    )
    members = np.arange(n)
    config = MeridianConfig()
    oracle = MatrixOracle(matrix)
    before_s, before = _timed(
        lambda: MeridianOverlay.build(
            ScalarOnlyOracle(oracle), members, config=config, seed=seed
        )
    )
    after_s, after = _timed(
        lambda: MeridianOverlay.build(oracle, members, config=config, seed=seed)
    )
    # Same seed + same latency values => identical overlays; fail loudly if
    # the fast path ever diverges from the scalar one.
    sample = [int(m) for m in members[:: max(1, n // 16)]]
    for node_id in sample:
        assert before.node(node_id).all_members() == after.node(node_id).all_members()
    return {
        "name": "meridian_overlay_build",
        "params": {"n_members": n, "ring_size": config.ring_size},
        "before_s": before_s,
        "after_s": after_s,
        "speedup": before_s / after_s,
    }


def bench_ring_selection(scale: str, seed: int) -> dict:
    pool = 48
    repeats = 200 if scale == "paper" else 20
    n = 512 if scale == "paper" else 96
    matrix = synthetic_core_matrix(
        n, seed=seed, config=SyntheticCoreConfig(n_nodes=n)
    )
    oracle = MatrixOracle(matrix)
    shim = ScalarOnlyOracle(oracle)
    rng = np.random.default_rng(seed)
    candidate_sets = [
        rng.choice(n, size=pool, replace=False) for _ in range(repeats)
    ]

    def run(target) -> list[list[int]]:
        return [
            select_maxmin(batch_latency_block(target, c, c), 16)
            for c in candidate_sets
        ]

    before_s, before = _timed(lambda: run(shim))
    after_s, after = _timed(lambda: run(oracle))
    assert before == after
    return {
        "name": "ring_selection",
        "params": {"candidate_pool": pool, "repeats": repeats},
        "before_s": before_s,
        "after_s": after_s,
        "speedup": before_s / after_s,
    }


def bench_algorithm_query_batch(scale: str, seed: int) -> dict:
    n = 2000 if scale == "paper" else 96
    n_queries = 300 if scale == "paper" else 20
    budget = 64 if scale == "paper" else 16
    matrix = synthetic_core_matrix(
        n, seed=seed, config=SyntheticCoreConfig(n_nodes=n)
    )
    members = np.arange(n - 32)
    targets = np.arange(n - 32, n)

    def run(probe_oracle) -> list[int]:
        algorithm = RandomProbeSearch(budget=budget)
        algorithm.build(
            MatrixOracle(matrix), members, seed=seed, probe_oracle=probe_oracle
        )
        found = []
        for i in range(n_queries):
            target = int(targets[i % targets.size])
            found.append(algorithm.query(target, seed=i).found)
        return found

    # Probe noise without additive lag: the batched draw order is
    # bit-identical to the scalar one, so both paths return the same peers.
    before_s, before = _timed(
        lambda: run(ScalarOnlyOracle(NoisyOracle(MatrixOracle(matrix), seed=seed)))
    )
    after_s, after = _timed(
        lambda: run(NoisyOracle(MatrixOracle(matrix), seed=seed))
    )
    assert before == after
    return {
        "name": "algorithm_query_batch",
        "params": {"n_members": int(members.size), "n_queries": n_queries, "budget": budget},
        "before_s": before_s,
        "after_s": after_s,
        "speedup": before_s / after_s,
    }


def bench_dns_pair_latencies(scale: str, seed: int) -> dict:
    """All-pairs true server RTTs: per-pair ``route()`` vs one block."""
    internet = generate_dns_server_population(
        seed=seed, paper_scale=(scale == "paper")
    )
    cap = 400 if scale == "paper" else 60
    servers = internet.dns_server_ids[:cap]

    def per_pair_route() -> np.ndarray:
        return np.array(
            [[internet.route(a, b).latency_ms for b in servers] for a in servers]
        )

    before_s, before = _timed(per_pair_route)
    after_s, after = _timed(lambda: internet.latency_matrix(servers))
    assert np.allclose(before, after, rtol=0, atol=1e-9)
    return {
        "name": "dns_pair_latencies",
        "params": {"n_servers": len(servers), "n_pairs": len(servers) ** 2},
        "before_s": before_s,
        "after_s": after_s,
        "speedup": before_s / after_s,
    }


def bench_dns_study_pipeline(scale: str, seed: int) -> dict:
    """Full Section 3.1 pipeline, pre-batch versus batched.

    The "before" run reproduces the historical pipeline code paths (see
    :func:`_restore_legacy_paths`) with ``batch_true_latencies`` off.
    Results are bit-identical either way, so the assert doubles as an
    equivalence check.
    """
    paper = scale == "paper"
    before_internet = generate_dns_server_population(seed=seed, paper_scale=paper)
    _restore_legacy_paths(before_internet)
    before_s, before = _timed(
        lambda: DnsStudy(
            before_internet,
            config=DnsStudyConfig(batch_true_latencies=False),
            seed=seed,
        ).run()
    )
    after_internet = generate_dns_server_population(seed=seed, paper_scale=paper)
    after_s, after = _timed(
        lambda: DnsStudy(
            after_internet,
            config=DnsStudyConfig(batch_true_latencies=True),
            seed=seed,
        ).run()
    )
    assert before.measurements == after.measurements
    return {
        "name": "dns_study_pipeline",
        "params": {
            "paper_scale": paper,
            "servers_traced": after.servers_traced,
            "pairs_measured": len(after.measurements),
        },
        "before_s": before_s,
        "after_s": after_s,
        "speedup": before_s / after_s,
    }


BENCHMARKS = (
    bench_overlay_build,
    bench_ring_selection,
    bench_algorithm_query_batch,
    bench_dns_pair_latencies,
    bench_dns_study_pipeline,
)


def run_suite(scale: str, seed: int) -> dict:
    results = []
    for bench in BENCHMARKS:
        result = bench(scale, seed)
        print(
            f"{result['name']}: before={result['before_s']:.3f}s "
            f"after={result['after_s']:.3f}s speedup={result['speedup']:.1f}x"
        )
        results.append(result)
    return {
        "suite": "probe_path",
        "scale": scale,
        "seed": seed,
        "benchmarks": results,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--scale", choices=SCALES, default="tiny")
    parser.add_argument("--seed", type=int, default=2008)
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help=(
            "where to write the JSON report (default: BENCH_probe_path.json "
            "for --scale paper, bench_probe_path_<scale>.json otherwise, so "
            "a casual tiny run cannot clobber the committed paper baseline)"
        ),
    )
    args = parser.parse_args()
    output = args.output
    if output is None:
        output = (
            Path("BENCH_probe_path.json")
            if args.scale == "paper"
            else Path(f"bench_probe_path_{args.scale}.json")
        )
    report = run_suite(args.scale, args.seed)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")


if __name__ == "__main__":
    main()
