"""Partial-freshness benchmark: full-flush vs region-touch maintenance.

Runs the ``steady-churn`` workload for the two rebuild-policy schemes
that support partial freshness (karger-ruhl's sampled ball hierarchy,
tapestry's prefix-routing neighborhoods) under both lazy disciplines:

* ``lazy`` — the classic full flush: the first query after a batch of
  buffered membership events pays one full |M|-region reconstruction;
* ``lazy-partial`` — the partial-freshness path: a query refreshes only
  the regions its descent actually reads, billed exactly against the
  buffered events through the scheduler's per-event ledger.

Both arms replay the identical world, event schedule and query targets
(common random numbers), and the region-keyed reconstruction guarantees
**bit-identical answers** — the report asserts the found-peer, latency
and query-probe arrays match element for element before computing the
maintenance savings ratio.  Per scheme the report carries each arm's
total/mean maintenance probes, per-event ledger mean and wall-clock,
plus the headline ``full_over_partial`` probe ratio (the acceptance
floor is 5x at paper scale, 3x at the CI smoke scale).

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_maintenance.py \
        --scale paper --output BENCH_maintenance.json

``--scale tiny`` is the CI smoke setting (the registered scenario's own
240-host world, trimmed query count); ``--scale paper`` is the committed
baseline at n=2000 hosts.
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.algorithms import KargerRuhlSearch, TapestrySearch
from repro.harness import ChurnSpec, QueryEngine, SamplingSpec, get_scenario
from repro.latency.builder import build_clustered_oracle
from repro.topology.clustered import ClusteredConfig

SCALES = ("tiny", "paper")

#: The schemes with a partial_flush path (``supports_partial_flush``).
SCHEMES = (
    ("karger-ruhl", KargerRuhlSearch),
    ("tapestry", TapestrySearch),
)

#: Full-flush baseline first, partial-freshness challenger second.
DISCIPLINES = ("lazy", "lazy-partial")


def maintenance_scenario(scale: str):
    """Touch-sparse steady churn: few regions read per query."""
    base = get_scenario("steady-churn")
    if scale == "tiny":
        return base.with_(
            n_queries=12,
            trials=1,
            churn=replace(base.churn, warmup_steps=5),
        )
    # Paper scale: n = 10 clusters x 100 end-networks x 2 peers = 2000
    # hosts.  Each query's descent touches O(log n) regions out of ~1600
    # live members, so the per-query refresh is far sparser than tiny's.
    return base.with_(
        topology=ClusteredConfig(
            n_clusters=10, end_networks_per_cluster=100, delta=0.2
        ),
        sampling=SamplingSpec(n_targets=100),
        churn=ChurnSpec(
            initial_fraction=0.8,
            arrival_rate=1.0,
            departure_rate=1.0,
            session_length=150.0,
            warmup_steps=25,
            min_members=200,
        ),
        n_queries=60,
        trials=1,
    )


def run_arm(factory, discipline: str, scenario, world) -> tuple[dict, object]:
    """One (scheme, discipline) trial; returns (report row, record)."""
    algorithm = factory(maintenance=discipline)
    engine = QueryEngine()
    start = time.perf_counter()
    record = engine.run_world_trial(
        world,
        algorithm,
        sampling=scenario.sampling,
        protocol="churn",
        n_queries=scenario.n_queries,
        seed=scenario.seed,
        noise=scenario.noise,
        churn=scenario.churn,
    )
    elapsed = time.perf_counter() - start
    row = {
        "discipline": discipline,
        "n_queries": record.n_queries,
        "n_events": record.n_churn_events,
        "trial_s": elapsed,
        "queries_per_sec": record.n_queries / elapsed,
        "total_maintenance_probes": record.total_maintenance_probes,
        "mean_maintenance_probes_per_query": (
            record.mean_maintenance_probes_per_query
        ),
        "maintenance_probes_per_event": record.maintenance_probes_per_event,
        "rebuilds": int(algorithm.rebuild_count),
        "exact_rate": record.exact_rate,
    }
    return row, record


def answers_identical(a, b) -> bool:
    """Element-for-element equality of the two arms' query answers."""
    return (
        bool(np.array_equal(a.found, b.found))
        and bool(np.array_equal(a.found_latency_ms, b.found_latency_ms))
        and bool(np.array_equal(a.probes, b.probes))
    )


def run_suite(scale: str, seed: int) -> dict:
    scenario = maintenance_scenario(scale).with_(seed=seed)
    world = build_clustered_oracle(
        scenario.topology, seed=seed, core_pool_size=scenario.core_pool_size
    )
    schemes = []
    for name, factory in SCHEMES:
        rows, records = [], {}
        for discipline in DISCIPLINES:
            row, record = run_arm(factory, discipline, scenario, world)
            records[discipline] = record
            print(
                f"{name} [{discipline}]: "
                f"maint total={row['total_maintenance_probes']}  "
                f"maint/q={row['mean_maintenance_probes_per_query']:.0f}  "
                f"rebuilds={row['rebuilds']}  "
                f"exact={row['exact_rate']:.2f}  {row['trial_s']:.1f}s"
            )
            rows.append(row)
        identical = answers_identical(
            records["lazy"], records["lazy-partial"]
        )
        partial_total = rows[1]["total_maintenance_probes"]
        ratio = (
            rows[0]["total_maintenance_probes"] / partial_total
            if partial_total > 0
            else float("inf")
        )
        speedup = rows[0]["trial_s"] / rows[1]["trial_s"]
        print(
            f"{name}: full/partial maintenance ratio {ratio:.1f}x, "
            f"wall-clock speedup {speedup:.1f}x, "
            f"answers identical: {identical}"
        )
        schemes.append(
            {
                "name": name,
                "arms": rows,
                "full_over_partial": ratio,
                "wall_clock_speedup": speedup,
                "answers_identical": identical,
            }
        )
    return {
        "suite": "maintenance",
        "scale": scale,
        "seed": seed,
        "scenario": "steady-churn",
        "n_hosts": int(world.topology.n_nodes),
        "schemes": schemes,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--scale", choices=SCALES, default="tiny")
    parser.add_argument("--seed", type=int, default=2008)
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help=(
            "where to write the JSON report (default: BENCH_maintenance.json "
            "for --scale paper, bench_maintenance_<scale>.json otherwise, so "
            "a casual tiny run cannot clobber the committed paper baseline)"
        ),
    )
    args = parser.parse_args()
    output = args.output
    if output is None:
        output = (
            Path("BENCH_maintenance.json")
            if args.scale == "paper"
            else Path(f"bench_maintenance_{args.scale}.json")
        )
    report = run_suite(args.scale, args.seed)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")


if __name__ == "__main__":
    main()
