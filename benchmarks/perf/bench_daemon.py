"""Simulated-time daemon benchmark: time-to-answer under steady load.

Runs the registered ``daemon-steady`` scenario (see
:mod:`repro.harness.scenario`) through
:meth:`~repro.harness.engine.QueryEngine.run_daemon_trial` for the three
schemes spanning the round-structure spectrum — ``random-probe`` (one
fan-out), ``beaconing`` (two rounds), ``meridian`` (ring descent, one
round per hop) — and reports each scheme's

* ``tta_median_ms`` / ``tta_p95_ms`` / ``tta_p99_ms`` — simulated
  time-to-answer percentiles, queueing delay included: the paper's
  "difficulty" in wall-clock terms rather than probe count;
* ``mean_probe_rounds`` / ``mean_probes_per_query`` — the critical-path
  depth next to the classic probe bill (more probes in *fewer* rounds can
  answer faster — exactly what probe counting cannot see);
* ``queue_depth_time_avg`` / ``in_flight_probes_max`` — daemon load
  stats, plus ``exact_rate`` for accuracy under the live membership.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_daemon.py \
        --scale paper --output BENCH_daemon.json

``--scale tiny`` is the CI smoke setting (the registered scenario's own
240-host world, trimmed query count); ``--scale paper`` scales the world
to n=2000 hosts with 300 queries — the committed perf baseline.
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import replace
from pathlib import Path

from repro.algorithms import BeaconSearch, MeridianSearch, RandomProbeSearch
from repro.analysis.compare import format_trial_records, rank_by_time_to_answer
from repro.harness import QueryEngine, SamplingSpec, get_scenario
from repro.latency.builder import build_clustered_oracle
from repro.topology.clustered import ClusteredConfig

SCALES = ("tiny", "paper")

SCHEMES = (
    ("random-probe", lambda: RandomProbeSearch(budget=32)),
    ("beaconing", BeaconSearch),
    ("meridian", MeridianSearch),
)


def daemon_scenario(scale: str):
    """The daemon-steady scenario, scaled to the requested size."""
    base = get_scenario("daemon-steady")
    if scale == "tiny":
        return base.with_(n_queries=40, trials=1)
    # Paper scale: n = 10 clusters x 100 end-networks x 2 peers = 2000
    # hosts, same steady Poisson load and background churn.
    return base.with_(
        topology=ClusteredConfig(
            n_clusters=10, end_networks_per_cluster=100, delta=0.2
        ),
        sampling=SamplingSpec(n_targets=100),
        n_queries=300,
        trials=1,
    )


def bench_scheme(name: str, factory, scenario, world) -> dict:
    engine = QueryEngine()
    start = time.perf_counter()
    record = engine.run_daemon_trial(
        world,
        factory(),
        scenario.daemon,
        sampling=scenario.sampling,
        n_queries=scenario.n_queries,
        seed=scenario.seed,
        noise=scenario.noise,
    )
    elapsed = time.perf_counter() - start
    return {
        "name": name,
        "n_queries": record.n_queries,
        "trial_s": elapsed,
        "tta_median_ms": record.tta_median_ms,
        "tta_p95_ms": record.tta_p95_ms,
        "tta_p99_ms": record.tta_p99_ms,
        "tta_mean_ms": record.tta_mean_ms,
        "mean_queue_wait_ms": record.mean_queue_wait_ms,
        "mean_probe_rounds": record.mean_probe_rounds,
        "mean_probes_per_query": record.mean_probes_per_query,
        "simulated_queries_per_sec": record.simulated_queries_per_sec,
        "makespan_ms": record.makespan_ms,
        "queue_depth_time_avg": record.queue_depth_time_avg,
        "queue_depth_max": record.queue_depth_max,
        "in_flight_probes_time_avg": record.in_flight_probes_time_avg,
        "in_flight_probes_max": record.in_flight_probes_max,
        "n_membership_events": record.n_churn_events,
        "total_maintenance_probes": record.total_maintenance_probes,
        "ring_repair_passes": record.ring_repair_passes,
        "ring_repair_probes": record.ring_repair_probes,
        "exact_rate": record.exact_rate,
        "cluster_rate": record.cluster_rate,
    }, record


def bench_section(scenario, world) -> tuple[list[dict], list]:
    results = []
    records = []
    for name, factory in SCHEMES:
        row, record = bench_scheme(name, factory, scenario, world)
        print(
            f"{row['name']}: tta p50={row['tta_median_ms']:.1f}ms "
            f"p95={row['tta_p95_ms']:.1f}ms p99={row['tta_p99_ms']:.1f}ms  "
            f"rounds/q={row['mean_probe_rounds']:.2f}  "
            f"probes/q={row['mean_probes_per_query']:.1f}  "
            f"exact={row['exact_rate']:.2f}  {row['trial_s']:.1f}s"
        )
        results.append(row)
        records.append(record)
    return results, records


def run_suite(scale: str, seed: int) -> dict:
    scenario = daemon_scenario(scale).with_(seed=seed)
    world = build_clustered_oracle(
        scenario.topology, seed=seed, core_pool_size=scenario.core_pool_size
    )
    results, records = bench_section(scenario, world)
    print()
    print(format_trial_records(rank_by_time_to_answer(records)))
    # Same workload with the coordination hop billed: each probe's
    # completion also pays the entry->prober dispatch RTT, pricing the
    # round-trip a real deployment spends asking peers to measure.
    print()
    print("dispatch-charged (entry->prober RTT billed per probe):")
    charged_scenario = scenario.with_(
        daemon=replace(scenario.daemon, charge_dispatch=True)
    )
    charged_results, charged_records = bench_section(charged_scenario, world)
    return {
        "suite": "daemon",
        "scale": scale,
        "seed": seed,
        "scenario": "daemon-steady",
        "n_hosts": int(world.topology.n_nodes),
        "n_queries": scenario.n_queries,
        "ranking_by_tta_median": [
            r.scheme for r in rank_by_time_to_answer(records)
        ],
        "benchmarks": results,
        "ranking_by_tta_median_dispatch_charged": [
            r.scheme for r in rank_by_time_to_answer(charged_records)
        ],
        "dispatch_charged": charged_results,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--scale", choices=SCALES, default="tiny")
    parser.add_argument("--seed", type=int, default=2008)
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help=(
            "where to write the JSON report (default: BENCH_daemon.json for "
            "--scale paper, bench_daemon_<scale>.json otherwise, so a casual "
            "tiny run cannot clobber the committed paper baseline)"
        ),
    )
    args = parser.parse_args()
    output = args.output
    if output is None:
        output = (
            Path("BENCH_daemon.json")
            if args.scale == "paper"
            else Path(f"bench_daemon_{args.scale}.json")
        )
    report = run_suite(args.scale, args.seed)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")


if __name__ == "__main__":
    main()
