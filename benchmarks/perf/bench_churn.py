"""Churn-protocol benchmark: query throughput and maintenance cost.

Runs the registered ``steady-churn`` scenario (see
:mod:`repro.harness.scenario`) through the query engine for a set of
schemes with distinct maintenance policies, and reports each scheme's

* ``queries_per_sec`` — wall-clock throughput of the interleaved
  event+query loop (algorithm build included, world build excluded);
* ``mean_maintenance_probes_per_query`` / ``total_maintenance_probes`` —
  the honest membership-maintenance bill next to the query probe bill;
* ``exact_rate`` / ``mean_membership_size`` — accuracy against the
  membership alive at query time, and the population the trial averaged.

A second section sweeps the **maintenance disciplines** (eager vs
coalesce-8 vs lazy, see
:class:`repro.algorithms.base.MaintenanceScheduler`) for the
rebuild-policy schemes on the registered ``steady-churn`` spec itself —
the schemes whose per-event |M|² bill the scheduler exists to amortise —
and reports each discipline's ``maintenance_probes_per_event`` plus the
eager/coalesce savings ratio.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_churn.py \
        --scale paper --output BENCH_churn.json

``--scale tiny`` is the CI smoke setting (the registered scenario's own
240-host world, trimmed query count); ``--scale paper`` scales the main
suite up to n=2000 hosts with 300 queries — the committed perf baseline.
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import replace
from pathlib import Path

from repro.algorithms import (
    BeaconSearch,
    KargerRuhlSearch,
    MeridianSearch,
    RandomProbeSearch,
    TapestrySearch,
)
from repro.harness import ChurnSpec, QueryEngine, SamplingSpec, get_scenario
from repro.latency.builder import build_clustered_oracle
from repro.topology.clustered import ClusteredConfig

SCALES = ("tiny", "paper")

#: Schemes spanning the maintenance-policy spectrum: free incremental
#: (random-probe), cheap incremental (beaconing), structural incremental
#: (meridian ring insert/evict).  The rebuild-policy schemes bill |M|² per
#: event by design and are exercised by the discipline sweep below.
SCHEMES = (
    ("random-probe", lambda: RandomProbeSearch(budget=32)),
    ("beaconing", BeaconSearch),
    ("meridian", MeridianSearch),
)

#: The scheduling disciplines under comparison.
DISCIPLINES = ("eager", "coalesce:8", "lazy")

#: Rebuild-policy schemes: every applied event costs a counted |M|²
#: reconstruction, so the coalescing window translates directly into the
#: per-event bill.
DISCIPLINE_SCHEMES = (
    ("karger-ruhl", KargerRuhlSearch),
    ("tapestry", TapestrySearch),
)


def churn_scenario(scale: str):
    """The steady-churn smoke scenario, scaled to the requested size."""
    base = get_scenario("steady-churn")
    if scale == "tiny":
        return base.with_(n_queries=50, trials=1)
    # Paper scale: n = 10 clusters x 100 end-networks x 2 peers = 2000
    # hosts, with the same balanced churn dynamics.
    return base.with_(
        topology=ClusteredConfig(
            n_clusters=10, end_networks_per_cluster=100, delta=0.2
        ),
        sampling=SamplingSpec(n_targets=100),
        churn=ChurnSpec(
            initial_fraction=0.8,
            arrival_rate=1.0,
            departure_rate=1.0,
            session_length=150.0,
            warmup_steps=25,
            min_members=200,
        ),
        n_queries=300,
        trials=1,
    )


def bench_scheme(name: str, factory, scenario, world) -> dict:
    engine = QueryEngine()
    start = time.perf_counter()
    record = engine.run_world_trial(
        world,
        factory(),
        sampling=scenario.sampling,
        protocol="churn",
        n_queries=scenario.n_queries,
        seed=scenario.seed,
        noise=scenario.noise,
        churn=scenario.churn,
    )
    elapsed = time.perf_counter() - start
    return {
        "name": name,
        "maintenance_policy": factory().maintenance_policy,
        "n_queries": record.n_queries,
        "trial_s": elapsed,
        "queries_per_sec": record.n_queries / elapsed,
        "mean_maintenance_probes_per_query": (
            record.mean_maintenance_probes_per_query
        ),
        "total_maintenance_probes": record.total_maintenance_probes,
        "warmup_maintenance_probes": record.warmup_maintenance_probes,
        "mean_probes_per_query": record.mean_probes_per_query,
        "exact_rate": record.exact_rate,
        "cluster_rate": record.cluster_rate,
        "mean_membership_size": record.mean_membership_size,
    }


def discipline_scenario(scale: str):
    """The discipline sweep workload: steady-churn's own 240-host spec.

    Rebuild-policy schemes pay a counted |M|² reconstruction per applied
    event, so the sweep runs on the registered scenario's own world (the
    comparison is about the *ratio* between disciplines, which the
    membership size scales out of) with the query count trimmed per
    scale — eager tapestry at n=2000 would spend minutes per trial
    re-deriving a number the 240-host run already pins.
    """
    base = get_scenario("steady-churn")
    if scale == "tiny":
        return base.with_(
            n_queries=15,
            trials=1,
            churn=replace(base.churn, warmup_steps=5),
        )
    return base.with_(n_queries=80, trials=1)


def bench_discipline(name, factory, discipline: str, scenario, world) -> dict:
    algorithm = factory(maintenance=discipline)
    engine = QueryEngine()
    start = time.perf_counter()
    record = engine.run_world_trial(
        world,
        algorithm,
        sampling=scenario.sampling,
        protocol="churn",
        n_queries=scenario.n_queries,
        seed=scenario.seed,
        noise=scenario.noise,
        churn=scenario.churn,
    )
    elapsed = time.perf_counter() - start
    return {
        "name": name,
        "discipline": discipline,
        "n_queries": record.n_queries,
        "n_events": record.n_churn_events,
        "trial_s": elapsed,
        "queries_per_sec": record.n_queries / elapsed,
        "total_maintenance_probes": record.total_maintenance_probes,
        "maintenance_probes_per_event": record.maintenance_probes_per_event,
        "rebuilds": int(algorithm.rebuild_count),
        "exact_rate": record.exact_rate,
        "cluster_rate": record.cluster_rate,
    }


def run_discipline_sweep(scale: str, seed: int) -> dict:
    scenario = discipline_scenario(scale).with_(seed=seed)
    world = build_clustered_oracle(
        scenario.topology, seed=seed, core_pool_size=scenario.core_pool_size
    )
    schemes = []
    for name, factory in DISCIPLINE_SCHEMES:
        rows = []
        for discipline in DISCIPLINES:
            row = bench_discipline(name, factory, discipline, scenario, world)
            print(
                f"{name} [{discipline}]: "
                f"maint/event={row['maintenance_probes_per_event']:.0f}  "
                f"rebuilds={row['rebuilds']}  "
                f"exact={row['exact_rate']:.2f}  {row['trial_s']:.1f}s"
            )
            rows.append(row)
        per_event = {r["discipline"]: r["maintenance_probes_per_event"] for r in rows}
        ratio = (
            per_event["eager"] / per_event["coalesce:8"]
            if per_event["coalesce:8"] > 0
            else float("inf")
        )
        print(f"{name}: eager/coalesce-8 maintenance ratio {ratio:.1f}x")
        schemes.append(
            {"name": name, "rows": rows, "eager_over_coalesce8": ratio}
        )
    return {
        "scenario": "steady-churn",
        "n_hosts": int(world.topology.n_nodes),
        "n_queries": scenario.n_queries,
        "schemes": schemes,
    }


def run_suite(scale: str, seed: int) -> dict:
    scenario = churn_scenario(scale)
    world = build_clustered_oracle(
        scenario.topology, seed=seed, core_pool_size=scenario.core_pool_size
    )
    scenario = scenario.with_(seed=seed)
    results = []
    for name, factory in SCHEMES:
        result = bench_scheme(name, factory, scenario, world)
        print(
            f"{result['name']}: {result['queries_per_sec']:.1f} q/s  "
            f"maint/q={result['mean_maintenance_probes_per_query']:.1f}  "
            f"probes/q={result['mean_probes_per_query']:.1f}  "
            f"exact={result['exact_rate']:.2f}  "
            f"members~{result['mean_membership_size']:.0f}"
        )
        results.append(result)
    return {
        "suite": "churn",
        "scale": scale,
        "seed": seed,
        "scenario": "steady-churn",
        "n_hosts": int(world.topology.n_nodes),
        "benchmarks": results,
        "disciplines": run_discipline_sweep(scale, seed),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--scale", choices=SCALES, default="tiny")
    parser.add_argument("--seed", type=int, default=2008)
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help=(
            "where to write the JSON report (default: BENCH_churn.json for "
            "--scale paper, bench_churn_<scale>.json otherwise, so a casual "
            "tiny run cannot clobber the committed paper baseline)"
        ),
    )
    args = parser.parse_args()
    output = args.output
    if output is None:
        output = (
            Path("BENCH_churn.json")
            if args.scale == "paper"
            else Path(f"bench_churn_{args.scale}.json")
        )
    report = run_suite(args.scale, args.seed)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")


if __name__ == "__main__":
    main()
