"""Broken-network daemon benchmark: all seven schemes under faults.

Runs the three registered fault scenarios (see
:mod:`repro.harness.scenario`) through
:meth:`~repro.harness.engine.QueryEngine.run_daemon_trial` for every
latency-only scheme:

* ``daemon-lossy`` — 3% intra / 10% cross-cluster loss with bounded
  exponential-backoff retransmits;
* ``daemon-natted`` — a quarter of the hosts behind NATs, probes
  relaying through designated reachable peers and billing the detour;
* ``daemon-partition`` — two scheduled regional outage windows plus 5%
  clock skew, exercising full probe timeouts and whole-plan retries.

Each scheme reports its simulated time-to-answer percentiles (timeout
waits, retransmit backoffs and relay detours included), its
**availability** — the fraction of queries answered within the
scenario's deadline — and the raw fault bills (drops, retransmits,
timeouts, relayed probes, retries).  Time-to-answer under faults is the
paper's "difficulty" with the network allowed to misbehave: schemes with
deep sequential round structure expose more of the timeout ladder per
query than one-shot fan-outs do.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_daemon_faults.py \
        --scale paper --output BENCH_daemon_faults.json

``--scale tiny`` is the CI smoke setting (the registered scenarios' own
240-host world, trimmed query count); ``--scale paper`` runs the full
registered workloads — the committed perf baseline.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.algorithms import (
    BeaconSearch,
    KargerRuhlSearch,
    MeridianSearch,
    PicSearch,
    RandomProbeSearch,
    TapestrySearch,
    TiersSearch,
)
from repro.analysis.compare import format_trial_records, rank_by_time_to_answer
from repro.harness import QueryEngine, get_scenario

SCALES = ("tiny", "paper")

FAULT_SCENARIOS = ("daemon-lossy", "daemon-natted", "daemon-partition")

#: All seven latency-only schemes, parameterised for the 240-host fault
#: worlds (matching the daemon test sizes so round structures are
#: comparable, not budget-starved).
SCHEMES = (
    ("random-probe", lambda: RandomProbeSearch(budget=16)),
    ("karger-ruhl", lambda: KargerRuhlSearch(samples_per_scale=4, max_rounds=12)),
    ("tapestry", lambda: TapestrySearch(id_digits=4, probe_budget_per_level=8)),
    ("tiers", lambda: TiersSearch(branching=8)),
    ("meridian", MeridianSearch),
    ("beaconing", lambda: BeaconSearch(n_beacons=8, probe_budget=12)),
    ("pic", PicSearch),
)

#: Generous simulated-time guard: a run that passes it is livelocked.
MAX_SIM_MS = 600_000.0


def bench_scheme(name: str, factory, scenario, world) -> tuple[dict, object]:
    engine = QueryEngine()
    start = time.perf_counter()
    record = engine.run_daemon_trial(
        world,
        factory(),
        scenario.daemon,
        sampling=scenario.sampling,
        n_queries=scenario.n_queries,
        seed=scenario.seed,
        max_sim_ms=MAX_SIM_MS,
    )
    elapsed = time.perf_counter() - start
    row = {
        "name": name,
        "n_queries": record.n_queries,
        "trial_s": elapsed,
        "tta_median_ms": record.tta_median_ms,
        "tta_p95_ms": record.tta_p95_ms,
        "tta_p99_ms": record.tta_p99_ms,
        "tta_mean_ms": record.tta_mean_ms,
        "availability": record.availability,
        "deadline_ms": record.deadline_ms,
        "mean_probe_rounds": record.mean_probe_rounds,
        "mean_probes_per_query": record.mean_probes_per_query,
        "probe_drops": record.total_probe_drops,
        "probe_retransmits": record.total_probe_retransmits,
        "probe_timeouts": record.total_probe_timeouts,
        "relayed_probes": record.total_relayed_probes,
        "relay_extra_ms": record.relay_extra_ms,
        "query_retries": record.total_query_retries,
        "makespan_ms": record.makespan_ms,
        "exact_rate": record.exact_rate,
        "cluster_rate": record.cluster_rate,
    }
    return row, record


def bench_scenario(scenario_name: str, scale: str, seed: int | None) -> dict:
    scenario = get_scenario(scenario_name)
    if seed is not None:
        scenario = scenario.with_(seed=seed)
    if scale == "tiny":
        scenario = scenario.with_(n_queries=40)
    from repro.latency.builder import build_clustered_oracle

    world = build_clustered_oracle(
        scenario.topology,
        seed=scenario.seed,
        core_pool_size=scenario.core_pool_size,
    )
    print(f"== {scenario.name}: {scenario.description}")
    results = []
    records = []
    for name, factory in SCHEMES:
        row, record = bench_scheme(name, factory, scenario, world)
        print(
            f"{row['name']}: tta p50={row['tta_median_ms']:.1f}ms "
            f"p99={row['tta_p99_ms']:.1f}ms  avail={row['availability']:.3f}  "
            f"drops={row['probe_drops']} to={row['probe_timeouts']} "
            f"relay={row['relayed_probes']} retries={row['query_retries']}  "
            f"{row['trial_s']:.1f}s"
        )
        results.append(row)
        records.append(record)
    print()
    print(format_trial_records(rank_by_time_to_answer(records)))
    print()
    return {
        "scenario": scenario.name,
        "seed": scenario.seed,
        "deadline_ms": scenario.daemon.faults.deadline_ms,
        "n_hosts": int(world.topology.n_nodes),
        "n_queries": scenario.n_queries,
        "ranking_by_tta_median": [
            r.scheme for r in rank_by_time_to_answer(records)
        ],
        "benchmarks": results,
    }


def run_suite(scale: str, seed: int | None) -> dict:
    return {
        "suite": "daemon-faults",
        "scale": scale,
        "seed": seed,
        "scenarios": [
            bench_scenario(name, scale, seed) for name in FAULT_SCENARIOS
        ],
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--scale", choices=SCALES, default="tiny")
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override every scenario's registered seed (default: keep them)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help=(
            "where to write the JSON report (default: "
            "BENCH_daemon_faults.json for --scale paper, "
            "bench_daemon_faults_<scale>.json otherwise, so a casual tiny "
            "run cannot clobber the committed paper baseline)"
        ),
    )
    args = parser.parse_args()
    output = args.output
    if output is None:
        output = (
            Path("BENCH_daemon_faults.json")
            if args.scale == "paper"
            else Path(f"bench_daemon_faults_{args.scale}.json")
        )
    report = run_suite(args.scale, args.seed)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")


if __name__ == "__main__":
    main()
