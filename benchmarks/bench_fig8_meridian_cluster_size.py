"""Benchmark: regenerate Figure 8 (Meridian accuracy vs cluster size).

The heavyweight experiment: five cluster sizes x two ~2,500-peer worlds x
hundreds of queries each.
"""

from benchmarks.conftest import assert_shapes, run_once
from repro.experiments import fig8_meridian_cluster_size


def test_fig8(benchmark, scale):
    result = run_once(benchmark, fig8_meridian_cluster_size.run, scale)
    assert_shapes(result)
    print(result.render())
