"""Ablation: Meridian's beta parameter (the paper fixes beta = 0.5).

Beta controls "the trade-off between the number of messages sent as part
of a Meridian query resolution and the accuracy of the result" — larger
beta widens the probe band and loosens the forwarding criterion, spending
probes to buy accuracy.  The ablation verifies the trade-off direction on
a clustered world.
"""

from benchmarks.conftest import run_once
from repro.algorithms import MeridianSearch
from repro.analysis.tables import series_table
from repro.harness import QueryEngine, SamplingSpec
from repro.latency.builder import build_clustered_oracle
from repro.meridian.overlay import MeridianConfig
from repro.topology.clustered import ClusteredConfig

BETAS = (0.25, 0.5, 0.75, 0.9)


def sweep():
    world = build_clustered_oracle(
        ClusteredConfig(n_clusters=25, end_networks_per_cluster=25, delta=0.2),
        seed=41,
    )
    engine = QueryEngine()
    rows = []
    for beta in BETAS:
        record = engine.run_world_trial(
            world,
            MeridianSearch(MeridianConfig(beta=beta)),
            sampling=SamplingSpec(n_targets=80),
            n_queries=300,
            seed=41,
        )
        rows.append((beta, record.exact_rate, record.mean_probes_per_query))
    return rows


def test_beta_tradeoff(benchmark):
    rows = run_once(benchmark, sweep)
    betas = [r[0] for r in rows]
    accuracy = [r[1] for r in rows]
    probes = [r[2] for r in rows]
    print(
        series_table(
            "beta",
            betas,
            {
                "P(correct closest)": [f"{v:.3f}" for v in accuracy],
                "probes/query": [f"{v:.1f}" for v in probes],
            },
        )
    )
    # Wider beta must cost more probes; accuracy must not degrade much.
    assert probes[-1] > probes[0]
    assert accuracy[-1] >= accuracy[0] - 0.05
    # And no beta rescues Meridian from the clustering condition.
    assert max(accuracy) < 0.8
