"""Shared fixtures: small worlds reused across the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.latency.builder import ClusteredWorld, build_clustered_oracle
from repro.topology.clustered import ClusteredConfig
from repro.topology.internet import InternetConfig, SyntheticInternet


@pytest.fixture(scope="session")
def small_internet() -> SyntheticInternet:
    """A compact router-level Internet (seconds to build, shared)."""
    config = InternetConfig(
        n_isps=4,
        pops_per_isp_low=2,
        pops_per_isp_high=4,
        en_per_pop_low=6,
        en_per_pop_high=24,
    )
    return SyntheticInternet.generate(config, seed=1234)


@pytest.fixture(scope="session")
def clustered_world() -> ClusteredWorld:
    """A Section 4 world exhibiting the clustering condition."""
    return build_clustered_oracle(
        ClusteredConfig(n_clusters=6, end_networks_per_cluster=20, delta=0.2),
        seed=99,
    )


@pytest.fixture(scope="session")
def uniform_matrix() -> np.ndarray:
    """A latency matrix from points uniform in a 2-D square (no clusters).

    The benign geometry every latency-only algorithm is happy in.
    """
    rng = np.random.default_rng(5)
    points = rng.uniform(0.0, 50.0, size=(160, 2))
    diff = points[:, None, :] - points[None, :, :]
    matrix = np.sqrt((diff**2).sum(axis=2))
    np.fill_diagonal(matrix, 0.0)
    return matrix
