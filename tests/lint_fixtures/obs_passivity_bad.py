# Fixture: every tagged line must be caught by obs-passivity.
import random  # LINT: obs-passivity
import numpy as np
from random import choice  # LINT: obs-passivity
from repro.util.rng import make_rng  # LINT: obs-passivity


def leaky_span_builder(oracle, nodes, seed):
    rng = np.random.default_rng(seed)  # LINT: obs-passivity
    jitter = np.random.random()  # LINT: obs-passivity
    one = oracle.latency_ms(nodes[0], nodes[1])  # LINT: obs-passivity
    block = oracle.probe_many(nodes)  # LINT: obs-passivity
    return rng, jitter, one, block, random, choice, make_rng
