# Fixture: every tagged line must be caught by plan-purity.
# Linted as though it lived at src/repro/algorithms/fixture.py.
from repro.topology.oracle import batch_latencies_from


class ImpurePlanScheme:
    def _plan(self, target: int, rng):
        direct = self.oracle.latency_ms(0, target)  # LINT: plan-purity
        row = batch_latencies_from(self.oracle, 0, [target])  # LINT: plan-purity
        hidden = self.maintenance_probe_many(0, [target])  # LINT: plan-purity
        offline = self.offline_distances_from(target)  # LINT: plan-purity
        yield direct
        return row, hidden, offline

    def query_plan(self, target: int, seed=None):
        value = self.oracle.latency_block([0], [target])  # LINT: plan-purity
        yield value
