# Fixture: the clean counterpart of ordered_iteration_bad.py — zero findings.


def consume(rng, live, departed):
    pending = set(live)
    for node in sorted(pending):  # sorted: deterministic order
        rng.integers(node)
    for node in sorted(pending - set(departed)):
        rng.integers(node)
    if any(n > 10 for n in pending):  # order-free reduction over a set
        rng.integers(1)
    total = sum(n for n in pending)  # order-free reduction
    biggest = max(pending) if pending else 0  # membership/reduction only
    ordered = dict.fromkeys(live)  # insertion-ordered stand-in
    for node in ordered:
        rng.integers(node)
    return total, biggest
