# Fixture: every tagged line must be caught by counted-probes.
# Linted as though it lived at src/repro/algorithms/fixture.py.
from repro.topology.oracle import batch_latencies_from, batch_latency_block


class SneakyScheme:
    def __init__(self, oracle) -> None:
        self._oracle = oracle

    def free_scalar_probe(self, a: int, b: int) -> float:
        return self._oracle.latency_ms(a, b)  # LINT: counted-probes

    def free_row(self, a: int, members) -> list:
        return self._oracle.latencies_from(a, members)  # LINT: counted-probes

    def free_block(self, rows, cols):
        return self._oracle.latency_block(rows, cols)  # LINT: counted-probes

    def free_batch(self, a: int, members):
        return batch_latencies_from(self._oracle, a, members)  # LINT: counted-probes

    def free_batch_block(self, rows, cols):
        return batch_latency_block(self._oracle, rows, cols)  # LINT: counted-probes
