# Fixture: the clean counterpart of counted_probes_bad.py — zero findings.
# Every measurement flows through the counted channels of the base class.


class HonestScheme:
    def query_probes(self, nodes, target):
        return self.probe_many(nodes, target)

    def query_block(self, rows, cols):
        return self.probe_block(rows, cols)

    def churn_probes(self, a, nodes):
        return self.maintenance_probe_many(a, nodes)

    def build_probes(self, node):
        return self.offline_distances_from(node)
