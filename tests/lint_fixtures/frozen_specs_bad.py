# Fixture: every tagged line must be caught by frozen-specs.
# Linted as though it lived at src/repro/harness/fixture.py.
from dataclasses import dataclass


@dataclass
class MutableChurnSpec:  # LINT: frozen-specs
    rate: float = 0.5


@dataclass(eq=True)
class KeywordButNotFrozenSpec:  # LINT: frozen-specs
    shards: int = 1


def tweak(spec: MutableChurnSpec, daemon_spec) -> None:
    spec.rate = 0.9  # LINT: frozen-specs
    daemon_spec.shards += 1  # LINT: frozen-specs
