# Fixture: a passive observability helper — obs-passivity stays silent.
# Everything here reads clocks the driver already advanced and counters
# the driver already kept; nothing measures, nothing draws randomness.


def phase_total_ms(spans, name):
    total = 0.0
    for span in spans:
        if span.name == name:
            total += span.end_ms - span.start_ms
    return total


def snapshot(loop, counters):
    return {"now": loop.now, **{k: c.total for k, c in counters.items()}}
