# Fixture: the clean counterpart of frozen_specs_bad.py — zero findings.
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class SteadyChurnSpec:
    rate: float = 0.5


class SpecLikeButNotADataclassSpec:
    """Not a dataclass: out of the rule's scope."""

    rate = 0.5


def derive(spec: SteadyChurnSpec) -> SteadyChurnSpec:
    return replace(spec, rate=0.9)  # the sanctioned way to vary a spec
