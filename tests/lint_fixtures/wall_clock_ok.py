# Fixture: the clean counterpart of wall_clock_bad.py — zero findings.
# Simulated components take their clock from the event loop.


class EventLoopUser:
    def __init__(self, loop) -> None:
        self._loop = loop

    def now_ms(self) -> float:
        return self._loop.now_ms  # simulated time, not the host clock

    def sleep_ms(self, delay: float) -> None:
        self._loop.schedule(delay, lambda: None)
