# Fixture: every tagged line must be caught by ordered-iteration.
# Linted as though it lived at src/repro/service/fixture.py.


def consume(rng, live, departed):
    pending = set(live)
    for node in pending:  # LINT: ordered-iteration
        rng.integers(node)
    for node in {1, 2, 3}:  # LINT: ordered-iteration
        rng.integers(node)
    for node in pending - set(departed):  # LINT: ordered-iteration
        rng.integers(node)
    for index, node in enumerate(frozenset(live)):  # LINT: ordered-iteration
        rng.integers(index + node)
    drained = [rng.integers(n) for n in pending]  # LINT: ordered-iteration
    listed = list(pending)
    for node in listed:  # LINT: ordered-iteration
        rng.integers(node)
    return drained


def annotated(rng, waiting: set[int]):
    for node in waiting:  # LINT: ordered-iteration
        rng.integers(node)
