# Fixture: every tagged line must be caught by rng-discipline.
# Linted by tests as though it lived at src/repro/algorithms/fixture.py.
import random  # LINT: rng-discipline

import numpy as np


def draw_everything():
    pick = random.random()
    np.random.seed(1234)  # LINT: rng-discipline
    legacy = np.random.randint(0, 10)  # LINT: rng-discipline
    rng = np.random.default_rng()  # LINT: rng-discipline
    explicit_none = np.random.default_rng(None)  # LINT: rng-discipline
    return pick, legacy, rng, explicit_none
