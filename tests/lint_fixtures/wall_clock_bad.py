# Fixture: every tagged line must be caught by no-wall-clock.
import time
from datetime import datetime
from time import perf_counter  # LINT: no-wall-clock


def stamp_everything():
    started = time.time()  # LINT: no-wall-clock
    tick = time.perf_counter()  # LINT: no-wall-clock
    mono = time.monotonic_ns()  # LINT: no-wall-clock
    today = datetime.now()  # LINT: no-wall-clock
    return started, tick, mono, today, perf_counter
