# Fixture: the clean counterpart of plan_purity_bad.py — zero findings.
# Plans measure through the counted query channel and offer every round
# to the driver via _offer_round / yield; helpers outside the plan may
# use the maintenance channel (billed by R3's package scope, not R4).


class PurePlanScheme:
    def _plan(self, target: int, rng):
        picks = list(self.members)
        values = self.probe_many(picks, target)
        picks, values, _ = yield from self._offer_round(picks, target, values)
        return self.result(target, dict(zip(picks, values)))

    def _place_member(self, node: int):
        # Not a plan: the maintenance channel is the right one here.
        return self.maintenance_probe_many(node, list(self.members))
