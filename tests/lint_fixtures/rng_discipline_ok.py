# Fixture: the clean counterpart of rng_discipline_bad.py — zero findings.
import numpy as np

from repro.util.rng import child_rng, make_rng


def draw_everything(seed: int) -> float:
    rng = make_rng(seed)
    child = child_rng(rng, 7)
    seeded = np.random.default_rng(seed)  # seeded: allowed outside util/rng.py
    return float(rng.random() + child.random() + seeded.random())
