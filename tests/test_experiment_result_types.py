"""Unit tests for experiment result dataclasses (no simulations needed).

The drivers' aggregation/rendering logic is exercised on hand-built
points, so regressions in shape-check predicates or series accessors are
caught without running the underlying experiments.
"""

import numpy as np

from repro.analysis.binning import BinnedPercentiles
from repro.experiments.fig8_meridian_cluster_size import Fig8Point, Fig8Result
from repro.experiments.fig9_meridian_delta import Fig9Point, Fig9Result
from repro.experiments.fig10_ucl_hops import Fig10Result
from repro.experiments.fig11_prefix_rates import Fig11Result
from repro.mechanisms.ipprefix import PrefixErrorRates


def fig8(closest, cluster):
    xs = (5, 25, 50, 125, 250)
    return Fig8Result(
        points=[
            Fig8Point(
                end_networks=x,
                closest_median=c,
                closest_min=c,
                closest_max=c,
                cluster_median=k,
                cluster_min=k,
                cluster_max=k,
            )
            for x, c, k in zip(xs, closest, cluster)
        ]
    )


class TestFig8Result:
    def test_paper_shape_passes(self):
        result = fig8(
            closest=[0.19, 0.23, 0.15, 0.08, 0.04],
            cluster=[0.7, 0.99, 1.0, 1.0, 1.0],
        )
        assert all(c.evaluate() for c in result.shape_checks())

    def test_monotone_decreasing_fails_peak_check(self):
        result = fig8(
            closest=[0.5, 0.4, 0.3, 0.2, 0.1],
            cluster=[0.7, 0.9, 1.0, 1.0, 1.0],
        )
        checks = {c.claim: c.evaluate() for c in result.shape_checks()}
        peak_claim = next(k for k in checks if "peak" in k)
        assert not checks[peak_claim]

    def test_no_collapse_fails(self):
        result = fig8(
            closest=[0.2, 0.25, 0.24, 0.22, 0.21],
            cluster=[0.7, 0.9, 1.0, 1.0, 1.0],
        )
        checks = {c.claim: c.evaluate() for c in result.shape_checks()}
        collapse_claim = next(k for k in checks if "collapses" in k)
        assert not checks[collapse_claim]

    def test_render_contains_table_and_plot(self):
        result = fig8(
            closest=[0.1, 0.2, 0.15, 0.08, 0.05],
            cluster=[0.6, 0.9, 0.95, 1.0, 1.0],
        )
        text = result.render()
        assert "end-networks/cluster" in text
        assert "closest" in text


class TestFig9Result:
    def make(self, closest, hub):
        return Fig9Result(
            points=[
                Fig9Point(
                    delta=d, closest_median=c, found_hub_latency_median_ms=h
                )
                for d, c, h in zip((0.0, 0.2, 0.4, 0.6, 0.8, 1.0), closest, hub)
            ]
        )

    def test_paper_shape_passes(self):
        result = self.make(
            closest=[0.05, 0.07, 0.1, 0.15, 0.25, 0.4],
            hub=[5.2, 5.0, 4.0, 3.0, 2.0, 1.7],
        )
        assert all(c.evaluate() for c in result.shape_checks())

    def test_flat_accuracy_fails(self):
        result = self.make(
            closest=[0.2, 0.2, 0.2, 0.2, 0.2, 0.2],
            hub=[5.0, 4.0, 3.0, 2.0, 1.5, 1.0],
        )
        assert not all(c.evaluate() for c in result.shape_checks())


class TestFig10Result:
    def make(self):
        bins = BinnedPercentiles(
            centers=np.array([0.5, 2.0, 4.0, 8.0]),
            counts=np.array([50, 80, 120, 60]),
            percentiles={
                5: np.array([2, 2, 2, 4]),
                25: np.array([2, 3, 3, 6]),
                50: np.array([2, 3, 4, 9]),
                75: np.array([3, 4, 6, 12]),
                95: np.array([4, 6, 9, 16]),
            },
        )
        return Fig10Result(bins=bins, n_pairs=310)

    def test_routers_to_track_is_half_hops(self):
        result = self.make()
        assert result.routers_to_track(4.0, 50) == 2.0
        assert result.routers_to_track(8.0, 95) == 8.0

    def test_paper_shape_passes(self):
        assert all(c.evaluate() for c in self.make().shape_checks())


class TestFig11Result:
    def make(self, fp, fn):
        lengths = (8, 12, 16, 20, 24)
        return Fig11Result(
            rates=[
                PrefixErrorRates(
                    prefix_length=l,
                    median_false_positive_rate=p,
                    median_false_negative_rate=n,
                    peers_evaluated=100,
                    peers_with_close_peer=60,
                )
                for l, p, n in zip(lengths, fp, fn)
            ]
        )

    def test_no_sweet_spot_detected(self):
        result = self.make(
            fp=[0.9, 0.4, 0.15, 0.02, 0.0], fn=[0.0, 0.05, 0.3, 0.8, 0.95]
        )
        assert not result.has_sweet_spot()
        assert all(c.evaluate() for c in result.shape_checks())

    def test_sweet_spot_flagged(self):
        result = self.make(
            fp=[0.9, 0.3, 0.05, 0.01, 0.0], fn=[0.0, 0.01, 0.05, 0.6, 0.9]
        )
        assert result.has_sweet_spot()
        checks = {c.claim: c.evaluate() for c in result.shape_checks()}
        sweet_claim = next(k for k in checks if "sweet" in k)
        assert not checks[sweet_claim]
