"""Tests for UCL-extended composite proximity addresses (Section 5)."""

import numpy as np
import pytest

from repro.mechanisms.proximity import (
    ProximityAddress,
    proximity_compare,
    rank_candidates,
)
from repro.mechanisms.ucl import UclEntry
from repro.util.errors import DataError


def address(node_id, coordinate, ucl=(), prefix=None):
    return ProximityAddress(
        node_id=node_id,
        coordinate=np.asarray(coordinate, dtype=float),
        ucl=tuple(ucl),
        ip_prefix=prefix,
    )


class TestSharedRouterEstimate:
    def test_shared_router_found(self):
        a = address(1, [0, 0], ucl=[UclEntry(10, 2.0), UclEntry(11, 4.0)])
        b = address(2, [50, 50], ucl=[UclEntry(11, 1.0), UclEntry(12, 9.0)])
        assert a.shared_router_estimate(b) == pytest.approx(5.0)

    def test_minimum_over_shared_routers(self):
        a = address(1, [0, 0], ucl=[UclEntry(10, 2.0), UclEntry(11, 4.0)])
        b = address(2, [0, 0], ucl=[UclEntry(10, 8.0), UclEntry(11, 1.0)])
        assert a.shared_router_estimate(b) == pytest.approx(5.0)

    def test_no_shared_router(self):
        a = address(1, [0, 0], ucl=[UclEntry(10, 2.0)])
        b = address(2, [0, 0], ucl=[UclEntry(99, 2.0)])
        assert a.shared_router_estimate(b) is None


class TestProximityCompare:
    def test_ucl_overrides_coordinates(self):
        """The paper: if a router is shared, the proximity address is
        ignored — even when coordinates claim the nodes are far apart."""
        a = address(1, [0.0, 0.0], ucl=[UclEntry(7, 1.0)])
        b = address(2, [1000.0, 1000.0], ucl=[UclEntry(7, 1.5)])
        assert proximity_compare(a, b) == pytest.approx(2.5)

    def test_falls_back_to_coordinates(self):
        a = address(1, [0.0, 0.0])
        b = address(2, [3.0, 4.0])
        assert proximity_compare(a, b) == pytest.approx(5.0)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(DataError):
            proximity_compare(address(1, [0.0]), address(2, [0.0, 0.0]))


class TestRankCandidates:
    def test_shared_router_candidate_ranks_first(self):
        me = address(0, [0.0, 0.0], ucl=[UclEntry(5, 0.5)])
        lan_mate = address(1, [200.0, 0.0], ucl=[UclEntry(5, 0.4)])
        coord_close = address(2, [2.0, 0.0])
        ranked = rank_candidates(me, [coord_close, lan_mate])
        assert ranked[0][0] == 1  # the mate wins despite awful coordinates
        assert ranked[0][1] == pytest.approx(0.9)

    def test_orders_by_estimate(self):
        me = address(0, [0.0, 0.0])
        near = address(1, [1.0, 0.0])
        far = address(2, [9.0, 0.0])
        ranked = rank_candidates(me, [far, near])
        assert [node for node, _ in ranked] == [1, 2]
