"""Fixed-seed replay tests for the modules audited under rng-discipline (R1).

The lint sweep for stdlib ``random`` / unseeded generators came back empty —
every module below already draws through ``repro.util.rng`` — so these tests
pin that state: two independent instances driven by the same seeds must
produce byte-identical outcomes.  Any future drift to ambient randomness
(stdlib ``random``, the global numpy state, hash-order-dependent draw order)
breaks one of these before it breaks an experiment.
"""

import numpy as np

from repro.algorithms import PicSearch
from repro.dht.chord import ChordRing
from repro.dht.kvstore import DhtKeyValueStore
from repro.experiments import ext_condition_extent
from repro.experiments.config import ExperimentScale
from repro.experiments.runner import run_all
from repro.mechanisms.composite import CompositeFinder
from repro.mechanisms.ipprefix import PrefixMap
from repro.mechanisms.multicast import MulticastSearch
from repro.mechanisms.registry import EndNetworkRegistry
from repro.mechanisms.ucl import DictBackend, UclMap, compute_ucl
from repro.topology.oracle import MatrixOracle


def en_mates(internet, count=4):
    """(peer, en-mate) pairs from multi-peer end-networks."""
    by_en = {}
    for peer in internet.peer_ids:
        by_en.setdefault(internet.host(peer).en_id, []).append(peer)
    pairs = [tuple(v[:2]) for v in by_en.values() if len(v) >= 2]
    return pairs[:count]


class TestMechanismReplay:
    def test_compute_ucl_replays(self, small_internet):
        peer = small_internet.peer_ids[0]
        assert compute_ucl(small_internet, peer, seed=9) == compute_ucl(
            small_internet, peer, seed=9
        )

    def test_prefix_map_replays(self, small_internet):
        pairs = en_mates(small_internet)
        runs = []
        for _ in range(2):
            prefix_map = PrefixMap(small_internet, prefix_length=24)
            for a, _ in pairs:
                prefix_map.insert_peer(a)
            runs.append(
                [prefix_map.find_nearest(b, seed=b) for _, b in pairs]
            )
        assert runs[0] == runs[1]

    def test_prefix_map_probe_budget_replays(self, small_internet):
        # The budgeted path shuffles the candidate set: the truncated probe
        # order (hence the answer) must still be a pure function of the seed.
        pairs = en_mates(small_internet)
        runs = []
        for _ in range(2):
            prefix_map = PrefixMap(small_internet, prefix_length=16)
            for a, _ in pairs:
                prefix_map.insert_peer(a)
            runs.append(
                [
                    prefix_map.find_nearest(b, seed=b, probe_budget=2)
                    for _, b in pairs
                ]
            )
        assert runs[0] == runs[1]

    def test_ucl_map_replays(self, small_internet):
        pairs = en_mates(small_internet)
        runs = []
        for _ in range(2):
            ucl_map = UclMap(small_internet, backend=DictBackend())
            for a, _ in pairs:
                ucl_map.insert_peer(a, compute_ucl(small_internet, a, seed=a))
            runs.append(
                [
                    ucl_map.find_nearest(
                        b, compute_ucl(small_internet, b, seed=b), seed=b
                    )
                    for _, b in pairs
                ]
            )
        assert runs[0] == runs[1]

    def test_registry_replays(self, small_internet):
        runs = []
        for _ in range(2):
            registry = EndNetworkRegistry(small_internet)
            joined = [p for p in small_internet.peer_ids if registry.join(p)]
            runs.append(
                (
                    joined,
                    [registry.find_nearest(p) for p in joined[:20]],
                    registry.stats(),
                )
            )
        assert runs[0] == runs[1]

    def test_composite_cascade_replays(self, small_internet):
        pairs = en_mates(small_internet)
        runs = []
        for _ in range(2):
            finder = CompositeFinder(
                small_internet,
                multicast=MulticastSearch(
                    small_internet, multicast_enabled_fraction=0.5, seed=0
                ),
                registry=EndNetworkRegistry(small_internet),
                ucl_map=UclMap(small_internet, backend=DictBackend()),
                prefix_map=PrefixMap(small_internet, prefix_length=24),
                seed=42,
            )
            for a, _ in pairs:
                finder.register_peer(a)
            runs.append([finder.find_nearest(b) for _, b in pairs])
        assert runs[0] == runs[1]


class TestDhtReplay:
    def test_kvstore_replays(self):
        runs = []
        for _ in range(2):
            ring = ChordRing.build(list(range(32)))
            store = DhtKeyValueStore(ring, replicas=2, seed=3)
            for key in range(40):
                store.put(key, key * 7)
                store.put(key, key * 11)
            gets = [sorted(store.get(key)) for key in range(40)]
            runs.append((gets, store.stats.mean_hops))
        assert runs[0] == runs[1]


class TestAlgorithmReplay:
    def test_pic_join_leave_query_replays(self, uniform_matrix):
        # Exercises the churn path whose departure loop the R5 audit
        # rewrote from set-order iteration to per-node pops.
        n = uniform_matrix.shape[0]
        members = np.arange(n - 30)
        joiners = np.arange(n - 30, n - 20)
        targets = [int(t) for t in range(n - 20, n - 10)]
        runs = []
        for _ in range(2):
            algorithm = PicSearch()
            algorithm.build(MatrixOracle(uniform_matrix), members, seed=7)
            algorithm.join(joiners, seed=8)
            algorithm.leave(joiners[::2], seed=9)
            results = [algorithm.query(t, seed=100 + t) for t in targets]
            runs.append(
                [(r.found, r.found_latency_ms, r.probes) for r in results]
            )
        assert runs[0] == runs[1]


class TestExperimentReplay:
    def test_ext_condition_extent_replays(self):
        scale = ExperimentScale()
        assert ext_condition_extent.run(scale) == ext_condition_extent.run(scale)

    def test_runner_replays_modulo_durations(self):
        # Wall-clock durations are operator telemetry (the runner's two
        # suppressed no-wall-clock reads); everything scored must replay.
        reports = [
            run_all(ExperimentScale(), only=("Table 1",)) for _ in range(2)
        ]
        assert reports[0].renders == reports[1].renders
        assert reports[0].comparisons == reports[1].comparisons
        # ShapeCheck carries a predicate closure (never equal across runs):
        # compare the claims and their evaluated verdicts instead.
        for first, second in zip(reports[0].shape_checks, reports[1].shape_checks):
            assert first.claim == second.claim
        assert reports[0].all_shapes_hold == reports[1].all_shapes_hold
