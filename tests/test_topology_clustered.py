"""Tests for the Section 4 clustered model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.latency.synthetic import synthetic_core_matrix
from repro.topology.clustered import ClusteredConfig, ClusteredTopology
from repro.util.errors import ConfigurationError, DataError


def make_topology(n_clusters=4, en=10, peers=2, delta=0.2, seed=0):
    config = ClusteredConfig(
        n_clusters=n_clusters,
        end_networks_per_cluster=en,
        peers_per_end_network=peers,
        delta=delta,
    )
    core = synthetic_core_matrix(n_clusters, seed=seed)
    return ClusteredTopology.generate(config, core, seed=seed)


class TestConfig:
    def test_counts(self):
        config = ClusteredConfig(
            n_clusters=3, end_networks_per_cluster=5, peers_per_end_network=2
        )
        assert config.n_end_networks == 15
        assert config.n_peers == 30

    def test_delta_range(self):
        with pytest.raises(ConfigurationError):
            ClusteredConfig(n_clusters=1, end_networks_per_cluster=1, delta=1.5)

    def test_hub_range_order(self):
        with pytest.raises(ConfigurationError):
            ClusteredConfig(
                n_clusters=1,
                end_networks_per_cluster=1,
                mean_hub_latency_low_ms=6,
                mean_hub_latency_high_ms=4,
            )


class TestLatencyStructure:
    def test_paper_gradation(self):
        """intra-EN << intra-cluster < inter-cluster (Section 4)."""
        topo = make_topology()
        a, b = 0, 1  # same end-network (2 peers per EN)
        c = 2  # same cluster, next end-network
        far = topo.n_nodes - 1  # different cluster
        assert topo.latency_ms(a, b) == pytest.approx(0.1)
        intra_cluster = topo.latency_ms(a, c)
        inter_cluster = topo.latency_ms(a, far)
        assert intra_cluster > 10 * topo.latency_ms(a, b)
        assert inter_cluster > intra_cluster

    def test_intra_cluster_is_hub_plus_hub(self):
        topo = make_topology()
        a, c = 0, 2
        expected = topo.host_hub_latency_ms[a] + topo.host_hub_latency_ms[c]
        assert topo.latency_ms(a, c) == pytest.approx(expected)

    def test_self_latency_zero(self):
        topo = make_topology()
        assert topo.latency_ms(5, 5) == 0.0

    def test_hub_latencies_within_delta_band(self):
        delta = 0.3
        topo = make_topology(delta=delta)
        for cluster in range(topo.config.n_clusters):
            ens = np.flatnonzero(topo.en_cluster == cluster)
            hub = topo.en_hub_latency_ms[ens]
            center = hub.mean()
            # All end-network hub latencies lie within the (1 +/- delta)
            # band of the cluster mean (approximately, via the sample mean).
            assert hub.max() <= center * (1 + delta) / (1 - delta) + 1e-9

    def test_full_matrix_matches_pointwise(self):
        topo = make_topology(n_clusters=3, en=4)
        matrix = topo.full_matrix()
        rng = np.random.default_rng(1)
        for _ in range(100):
            a, b = rng.integers(0, topo.n_nodes, size=2)
            assert matrix[a, b] == pytest.approx(topo.latency_ms(int(a), int(b)))

    def test_full_matrix_symmetric_zero_diagonal(self):
        matrix = make_topology().full_matrix()
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)


class TestGroundTruthHelpers:
    def test_same_end_network(self):
        topo = make_topology()
        assert topo.same_end_network(0, 1)
        assert not topo.same_end_network(0, 2)

    def test_same_cluster(self):
        topo = make_topology(n_clusters=2, en=3, peers=2)
        assert topo.same_cluster(0, 4)
        assert not topo.same_cluster(0, topo.n_nodes - 1)

    def test_end_network_mates(self):
        topo = make_topology(peers=3)
        mates = topo.end_network_mates(0)
        assert set(mates) == {1, 2}

    def test_hosts_in_cluster_partition(self):
        topo = make_topology(n_clusters=3, en=4, peers=2)
        all_hosts = np.concatenate(
            [topo.hosts_in_cluster(c) for c in range(3)]
        )
        assert sorted(all_hosts.tolist()) == list(range(topo.n_nodes))


class TestValidation:
    def test_core_shape_mismatch(self):
        config = ClusteredConfig(n_clusters=3, end_networks_per_cluster=2)
        with pytest.raises(DataError):
            ClusteredTopology.generate(config, np.zeros((2, 2)), seed=0)

    def test_core_nonzero_diagonal_rejected(self):
        config = ClusteredConfig(n_clusters=2, end_networks_per_cluster=2)
        core = np.array([[1.0, 5.0], [5.0, 0.0]])
        with pytest.raises(DataError):
            ClusteredTopology.generate(config, core, seed=0)


@settings(max_examples=20, deadline=None)
@given(
    n_clusters=st.integers(min_value=1, max_value=6),
    en=st.integers(min_value=1, max_value=8),
    peers=st.integers(min_value=1, max_value=4),
    delta=st.floats(min_value=0.0, max_value=1.0),
)
def test_generation_invariants(n_clusters, en, peers, delta):
    """Any valid configuration yields a structurally consistent topology."""
    topo = make_topology(n_clusters=n_clusters, en=en, peers=peers, delta=delta)
    assert topo.n_nodes == n_clusters * en * peers
    assert topo.host_en.size == topo.n_nodes
    # Hub latencies positive; matrix symmetric with zero diagonal.
    assert np.all(topo.en_hub_latency_ms > 0)
    matrix = topo.full_matrix()
    assert np.allclose(matrix, matrix.T)
    assert np.all(matrix >= 0)
