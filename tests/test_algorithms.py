"""Tests for the nearest-peer algorithm zoo behind the common interface."""

import numpy as np
import pytest

from repro.algorithms import (
    BeaconSearch,
    KargerRuhlSearch,
    MeridianSearch,
    PicSearch,
    RandomProbeSearch,
    TapestrySearch,
    TiersSearch,
    VivaldiGreedySearch,
)
from repro.algorithms.base import NearestPeerAlgorithm
from repro.topology.oracle import MatrixOracle, NoisyOracle
from repro.util.errors import ConfigurationError

ALL_ALGORITHMS = [
    MeridianSearch,
    KargerRuhlSearch,
    TapestrySearch,
    PicSearch,
    VivaldiGreedySearch,
    TiersSearch,
    BeaconSearch,
    RandomProbeSearch,
]


@pytest.fixture(scope="module")
def benign_setup(uniform_matrix):
    oracle = MatrixOracle(uniform_matrix)
    n = uniform_matrix.shape[0]
    members = np.arange(n - 20)
    targets = np.arange(n - 20, n)
    return oracle, members, targets, uniform_matrix


class TestInterfaceContract:
    @pytest.mark.parametrize("algorithm_class", ALL_ALGORITHMS)
    def test_query_before_build_rejected(self, algorithm_class):
        with pytest.raises(ConfigurationError):
            algorithm_class().query(0)

    @pytest.mark.parametrize("algorithm_class", ALL_ALGORITHMS)
    def test_query_returns_member_and_counts_probes(
        self, algorithm_class, benign_setup
    ):
        oracle, members, targets, matrix = benign_setup
        algorithm = algorithm_class()
        algorithm.build(oracle, members, seed=7)
        result = algorithm.query(int(targets[0]), seed=11)
        assert result.found in set(int(m) for m in members)
        assert result.probes >= 1
        assert result.found_latency_ms >= 0

    @pytest.mark.parametrize("algorithm_class", ALL_ALGORITHMS)
    def test_deterministic_given_seeds(self, algorithm_class, benign_setup):
        oracle, members, targets, matrix = benign_setup
        a = algorithm_class()
        a.build(oracle, members, seed=7)
        b = algorithm_class()
        b.build(oracle, members, seed=7)
        ra = a.query(int(targets[1]), seed=13)
        rb = b.query(int(targets[1]), seed=13)
        assert ra.found == rb.found
        assert ra.probes == rb.probes


class _BeaconChattySearch(NearestPeerAlgorithm):
    """Toy scheme exercising the aux-probe accounting: measures two
    beacon-to-beacon latencies per query before probing the target."""

    name = "beacon-chatty"

    def _build(self, rng):
        self._anchors = self.members[:3]

    def _query(self, target, rng):
        self.aux_probe(int(self._anchors[0]), int(self._anchors[1]))
        self.aux_probe(int(self._anchors[1]), int(self._anchors[2]))
        measured = {
            int(m): self.probe(int(m), target) for m in self._anchors
        }
        return self.result(target, measured)


class TestAuxProbeAccounting:
    def test_result_propagates_aux_probes(self, benign_setup):
        """Regression: result() used to drop aux_probes, so schemes that
        track beacon-to-beacon traffic silently reported 0."""
        oracle, members, targets, matrix = benign_setup
        algorithm = _BeaconChattySearch()
        algorithm.build(oracle, members, seed=7)
        result = algorithm.query(int(targets[0]), seed=1)
        assert result.aux_probes == 2
        assert result.probes == 3  # target probes counted separately

    def test_aux_probes_reset_between_queries(self, benign_setup):
        oracle, members, targets, matrix = benign_setup
        algorithm = _BeaconChattySearch()
        algorithm.build(oracle, members, seed=7)
        algorithm.query(int(targets[0]), seed=1)
        result = algorithm.query(int(targets[1]), seed=2)
        assert result.aux_probes == 2


class TestSearchQuality:
    @pytest.mark.parametrize("algorithm_class", ALL_ALGORITHMS)
    def test_beats_worst_case_in_benign_space(self, algorithm_class, benign_setup):
        """Every scheme should land well below the median latency (i.e. it
        is doing better than returning a random member)."""
        oracle, members, targets, matrix = benign_setup
        algorithm = algorithm_class()
        algorithm.build(oracle, members, seed=3)
        ratios = []
        for target in targets:
            result = algorithm.query(int(target), seed=int(target))
            true_best = matrix[target, members].min()
            median = np.median(matrix[target, members])
            ratios.append(matrix[target, result.found] <= median)
        assert np.mean(ratios) >= 0.9

    def test_random_probe_budget_respected(self, benign_setup):
        oracle, members, targets, matrix = benign_setup
        algorithm = RandomProbeSearch(budget=5)
        algorithm.build(oracle, members, seed=0)
        result = algorithm.query(int(targets[0]), seed=1)
        assert result.probes == 5


class TestClusteringDegradation:
    """The paper's comparison: every latency-only scheme misses same-EN
    mates under the clustering condition at realistic probe noise."""

    @staticmethod
    def _split(world, n_targets=40, seed=0):
        """Scattered target/member split (tail slicing would excise whole
        clusters, since host ids are laid out cluster by cluster)."""
        n = world.topology.n_nodes
        rng = np.random.default_rng(seed)
        targets = rng.choice(n, size=n_targets, replace=False)
        target_set = set(int(t) for t in targets)
        members = np.array([i for i in range(n) if i not in target_set])
        return members, targets

    @pytest.mark.parametrize(
        "algorithm_class",
        [MeridianSearch, KargerRuhlSearch, TapestrySearch, TiersSearch, BeaconSearch],
    )
    def test_exact_rate_below_ceiling(self, algorithm_class, clustered_world):
        world = clustered_world
        members, targets = self._split(world, seed=1)
        noisy = NoisyOracle(world.oracle, sigma=0.05, additive_ms=0.3, seed=5)
        algorithm = algorithm_class()
        algorithm.build(world.oracle, members, seed=5, probe_oracle=noisy)
        exact = 0
        for target in targets:
            result = algorithm.query(int(target), seed=int(target))
            member_row = {int(m): world.matrix.values[target, m] for m in members}
            best = min(member_row.values())
            exact += member_row[result.found] <= best + 1e-12
        # 20 end-networks per cluster, 40 targets: a perfect scheme would
        # hit 40; latency-only schemes must miss a good share.
        assert exact <= 32

    def test_meridian_finds_cluster_but_not_en(self, clustered_world):
        world = clustered_world
        members, targets = self._split(world, seed=2)
        algorithm = MeridianSearch()
        algorithm.build(world.oracle, members, seed=6)
        cluster_hits, exact_hits = 0, 0
        for target in targets:
            result = algorithm.query(int(target), seed=int(target))
            cluster_hits += world.topology.same_cluster(result.found, int(target))
            member_row = {int(m): world.matrix.values[target, m] for m in members}
            best = min(member_row.values())
            exact_hits += member_row[result.found] <= best + 1e-12
        assert cluster_hits > exact_hits  # the paper's signature gap
