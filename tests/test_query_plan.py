"""Tests for the stepwise (sans-io) query-plan protocol.

The contract under test: driving :meth:`query_plan` to exhaustion with
instantaneous delivery and eager maintenance is **bit-identical** to the
blocking :meth:`query` — same rng draws, same probes, same result — for
every scheme, native plans and the record-and-replay adapter alike.
"""

import numpy as np
import pytest

from repro.algorithms import (
    BeaconSearch,
    KargerRuhlSearch,
    MeridianSearch,
    NearestPeerAlgorithm,
    PicSearch,
    ProbeOp,
    RandomProbeSearch,
    TapestrySearch,
    TiersSearch,
)
from repro.harness import NoiseSpec
from repro.util.errors import ConfigurationError

#: Every scheme in the library: (factory, expects a native plan).
SCHEMES = [
    (lambda: RandomProbeSearch(budget=8), True),
    (lambda: KargerRuhlSearch(samples_per_scale=4, max_rounds=12), True),
    (lambda: TapestrySearch(id_digits=4, probe_budget_per_level=8), True),
    (lambda: TiersSearch(branching=8), True),
    (MeridianSearch, True),
    (lambda: BeaconSearch(n_beacons=6, probe_budget=8), True),
    (PicSearch, True),
]

IDS = [
    "random-probe", "karger-ruhl", "tapestry", "tiers",
    "meridian", "beaconing", "pic",
]


def drain_plan(plan):
    """Drive a plan to completion with zero delay; return (result, rounds)."""
    rounds = []
    try:
        while True:
            rounds.append(plan.send(None))
    except StopIteration as stop:
        return stop.value, rounds


def build_pair(factory, world, seed=31, n_members=90, noise=None):
    """Two identically-built twins of one scheme on the same world."""
    members = np.arange(n_members)
    pair = []
    for _ in range(2):
        algorithm = factory()
        probe_oracle = (
            noise.wrap(world.oracle, seed) if noise is not None else None
        )
        algorithm.build(
            world.oracle, members, seed=seed, probe_oracle=probe_oracle
        )
        pair.append(algorithm)
    return pair


def assert_results_identical(blocking, planned):
    assert planned.target == blocking.target
    assert planned.found == blocking.found
    assert planned.found_latency_ms == blocking.found_latency_ms
    assert planned.probes == blocking.probes
    assert planned.aux_probes == blocking.aux_probes
    assert planned.maintenance_probes == blocking.maintenance_probes
    assert planned.hops == blocking.hops
    assert planned.path == blocking.path


class TestZeroDelayEquivalence:
    @pytest.mark.parametrize("factory,native", SCHEMES, ids=IDS)
    def test_plan_reproduces_query_bit_identically(
        self, clustered_world, factory, native
    ):
        direct, stepped = build_pair(factory, clustered_world)
        assert direct.plan_native is native
        target = clustered_world.topology.n_nodes - 1
        for query_seed in (7, 8):
            blocking = direct.query(target, seed=query_seed)
            planned, rounds = drain_plan(
                stepped.query_plan(target, seed=query_seed)
            )
            assert_results_identical(blocking, planned)
            assert sum(len(r) for r in rounds) == planned.probes + planned.aux_probes

    @pytest.mark.parametrize(
        "factory,native",
        [s for s in SCHEMES if s[1]],
        ids=[i for i, s in zip(IDS, SCHEMES) if s[1]],
    )
    def test_native_plans_match_under_noise(self, clustered_world, factory, native):
        """A stateful noisy oracle is consumed identically by both paths."""
        noise = NoiseSpec(sigma=0.08, additive_ms=0.2, seed=5)
        direct, stepped = build_pair(factory, clustered_world, noise=noise)
        target = clustered_world.topology.n_nodes - 2
        blocking = direct.query(target, seed=3)
        planned, _ = drain_plan(stepped.query_plan(target, seed=3))
        assert_results_identical(blocking, planned)

    def test_shared_rng_stream_equivalence(self, clustered_world):
        """Threading one generator through many queries matches both paths."""
        direct, stepped = build_pair(MeridianSearch, clustered_world)
        rng_a = np.random.default_rng(44)
        rng_b = np.random.default_rng(44)
        target = clustered_world.topology.n_nodes - 3
        for _ in range(4):
            blocking = direct.query(target, seed=rng_a)
            planned, _ = drain_plan(stepped.query_plan(target, seed=rng_b))
            assert_results_identical(blocking, planned)


class TestPlanStructure:
    def test_rounds_are_probe_op_batches(self, clustered_world):
        algorithm = MeridianSearch()
        # Members spread over every cluster, so ring bands are populated.
        target = clustered_world.topology.n_nodes - 1
        algorithm.build(clustered_world.oracle, np.arange(target), seed=1)
        multi_round = 0
        for seed in range(6):
            result, rounds = drain_plan(algorithm.query_plan(target, seed=seed))
            multi_round += len(rounds) >= 2
            for batch in rounds:
                assert batch, "plans must not yield empty rounds"
                for op in batch:
                    assert isinstance(op, ProbeOp)
                    assert op.dst == target
                    assert op.kind == "probe"
                    assert op.rtt_ms > 0
            # The first round is the start node's own probe.
            assert len(rounds[0]) == 1
            assert rounds[0][0].src == result.path[0]
        # The descent yields a ring sweep beyond the start probe for at
        # least some start nodes.
        assert multi_round >= 1

    def test_beaconing_round_boundaries(self, clustered_world):
        """Beaconing (native plan): beacon sweep then shortlist fan-out."""
        algorithm = BeaconSearch(n_beacons=6, probe_budget=8)
        algorithm.build(clustered_world.oracle, np.arange(80), seed=1)
        target = clustered_world.topology.n_nodes - 1
        result, rounds = drain_plan(algorithm.query_plan(target, seed=2))
        assert len(rounds) >= 2
        assert len(rounds[0]) == 6  # one probe per beacon
        assert result.found in np.arange(80)

    def test_adapter_preserves_round_boundaries(self, clustered_world):
        """The record-and-replay adapter still serves unconverted schemes."""

        class AdapterDemo(RandomProbeSearch):
            """A scheme without a native plan: blocking query only."""

            name = "adapter-demo"
            plan_native = False

            def _plan(self, target, rng):
                return NearestPeerAlgorithm._plan(self, target, rng)

            def _query(self, target, rng):
                picks = self.members[:3]
                values = self.probe_many(picks, target)
                extra = int(self.members[3])
                single = self.probe(extra, target)
                measured = {
                    int(m): float(v) for m, v in zip(picks, values)
                }
                measured[extra] = single
                return self.result(target, measured)

        direct, stepped = build_pair(AdapterDemo, clustered_world)
        assert not stepped.plan_native
        target = clustered_world.topology.n_nodes - 1
        blocking = direct.query(target, seed=2)
        planned, rounds = drain_plan(stepped.query_plan(target, seed=2))
        assert_results_identical(blocking, planned)
        # One round per probe-channel call: the batched fan-out, then the
        # scalar probe.
        assert [len(r) for r in rounds] == [3, 1]
        assert all(isinstance(op, ProbeOp) for batch in rounds for op in batch)

    def test_query_plan_before_build_raises(self):
        with pytest.raises(ConfigurationError):
            RandomProbeSearch().query_plan(0)

    def test_concurrent_plans_keep_private_probe_bills(self, clustered_world):
        """Interleaving two plans on one algorithm cannot mix their bills."""
        algorithm = KargerRuhlSearch(samples_per_scale=4, max_rounds=12)
        algorithm.build(clustered_world.oracle, np.arange(90), seed=31)
        twin = KargerRuhlSearch(samples_per_scale=4, max_rounds=12)
        twin.build(clustered_world.oracle, np.arange(90), seed=31)
        n = clustered_world.topology.n_nodes
        # Serial references from an identically-seeded twin.
        ref_a = twin.query(n - 1, seed=11)
        ref_b = twin.query(n - 2, seed=11)
        plan_a = algorithm.query_plan(n - 1, seed=11)
        plan_b = algorithm.query_plan(n - 2, seed=11)
        done_a = done_b = False
        result_a = result_b = None
        while not (done_a and done_b):  # strict alternation
            if not done_a:
                try:
                    plan_a.send(None)
                except StopIteration as stop:
                    result_a, done_a = stop.value, True
            if not done_b:
                try:
                    plan_b.send(None)
                except StopIteration as stop:
                    result_b, done_b = stop.value, True
        assert result_a.probes == ref_a.probes
        assert result_b.probes == ref_b.probes
        assert result_a.found == ref_a.found
        assert result_b.found == ref_b.found


class TestLazyMaintenanceThroughPlans:
    def test_lazy_flush_bills_the_plan(self, clustered_world):
        """A stale lazy index flushes when the plan starts, as query() does."""
        pair = []
        for _ in range(2):
            algorithm = KargerRuhlSearch(
                samples_per_scale=4, max_rounds=12, maintenance="lazy"
            )
            algorithm.build(clustered_world.oracle, np.arange(80), seed=9)
            algorithm.join(np.arange(80, 90), seed=10)
            pair.append(algorithm)
        direct, stepped = pair
        assert stepped.has_pending_maintenance
        target = clustered_world.topology.n_nodes - 1
        blocking = direct.query(target, seed=12)
        plan = stepped.query_plan(target, seed=12)
        assert stepped.has_pending_maintenance  # flush waits for plan start
        planned, _ = drain_plan(plan)
        assert not stepped.has_pending_maintenance
        assert planned.maintenance_probes == blocking.maintenance_probes > 0
        assert_results_identical(blocking, planned)

    def test_coalesce_plan_answers_from_stale_view(self, clustered_world):
        """Under coalesce the plan sees the indexed (stale) member view."""
        pair = []
        for _ in range(2):
            algorithm = RandomProbeSearch(budget=60, maintenance="coalesce:64")
            algorithm.build(clustered_world.oracle, np.arange(60), seed=9)
            algorithm.join(np.arange(60, 100), seed=10)
            pair.append(algorithm)
        direct, stepped = pair
        target = clustered_world.topology.n_nodes - 1
        blocking = direct.query(target, seed=12)
        planned, rounds = drain_plan(stepped.query_plan(target, seed=12))
        assert_results_identical(blocking, planned)
        probed = {op.src for batch in rounds for op in batch}
        assert probed <= set(range(60))  # arrivals not yet indexed
