"""Tests for the membership lifecycle API (join/leave/churn).

Covers the redesign's three guarantees:

* the lifecycle equivalence invariant — for rebuild-policy schemes the
  evolved index is history-free (a pure function of the build stream,
  the event count and the member set; event seeds contribute nothing,
  since regions rebuild from rng streams keyed on ``(build, generation,
  node)``); index-free incremental schemes answer identically to a
  fresh ``build((M ∪ J) \\ L)``, and the stateful incremental schemes
  stay within quality tolerance;
* honest maintenance accounting — join/leave return their probe bill,
  ``SearchResult.maintenance_probes`` carries it to the next query, and
  rebuild-policy schemes bill the full reconstruction;
* bit-identity — fixed-seed results of the static ``sampled`` /
  ``per-target`` protocols are unchanged by the redesign (golden arrays
  captured from the pre-redesign code).
"""

import numpy as np
import pytest

from repro.algorithms import (
    BeaconSearch,
    KargerRuhlSearch,
    MeridianSearch,
    PicSearch,
    RandomProbeSearch,
    TapestrySearch,
    TiersSearch,
    VivaldiGreedySearch,
)
from repro.algorithms.base import MAINTENANCE_POLICIES
from repro.harness import (
    ChurnSpec,
    NoiseSpec,
    QueryEngine,
    SamplingSpec,
    Scenario,
    get_scenario,
    list_scenarios,
    register_scenario,
    temporary_scenario,
    unregister_scenario,
)
from repro.latency.builder import build_clustered_oracle
from repro.topology.clustered import ClusteredConfig
from repro.topology.oracle import MatrixOracle
from repro.util.errors import ConfigurationError

ALL_ALGORITHMS = [
    MeridianSearch,
    KargerRuhlSearch,
    TapestrySearch,
    PicSearch,
    VivaldiGreedySearch,
    TiersSearch,
    BeaconSearch,
    RandomProbeSearch,
]
REBUILD_ALGORITHMS = [KargerRuhlSearch, TapestrySearch]

SMALL = ClusteredConfig(n_clusters=4, end_networks_per_cluster=8, delta=0.2)


@pytest.fixture(scope="module")
def lifecycle_setup(uniform_matrix):
    """Benign world split into initial members / joiners / targets."""
    oracle = MatrixOracle(uniform_matrix)
    n = uniform_matrix.shape[0]
    initial = np.arange(90)
    joiners = np.arange(90, 120)
    leavers = np.concatenate([np.arange(0, 20), np.arange(95, 100)])
    targets = np.arange(140, n)
    return oracle, initial, joiners, leavers, targets


def _churned(algorithm_class, oracle, initial, joiners, leavers):
    algorithm = algorithm_class()
    algorithm.build(oracle, initial, seed=7)
    algorithm.join(joiners, seed=11)
    algorithm.leave(leavers, seed=13)
    return algorithm


class TestLifecycleContract:
    @pytest.mark.parametrize("algorithm_class", ALL_ALGORITHMS)
    def test_join_leave_before_build_rejected(self, algorithm_class):
        with pytest.raises(ConfigurationError):
            algorithm_class().join([1, 2])
        with pytest.raises(ConfigurationError):
            algorithm_class().leave([1, 2])

    def test_declared_policies_are_valid(self):
        for algorithm_class in ALL_ALGORITHMS:
            assert algorithm_class.maintenance_policy in MAINTENANCE_POLICIES

    def test_join_existing_member_rejected(self, lifecycle_setup):
        oracle, initial, *_ = lifecycle_setup
        algorithm = RandomProbeSearch()
        algorithm.build(oracle, initial, seed=1)
        with pytest.raises(ConfigurationError, match="already members"):
            algorithm.join([int(initial[0])])

    def test_join_out_of_range_rejected(self, lifecycle_setup):
        oracle, initial, *_ = lifecycle_setup
        algorithm = RandomProbeSearch()
        algorithm.build(oracle, initial, seed=1)
        with pytest.raises(ConfigurationError, match="oracle range"):
            algorithm.join([oracle.n_nodes + 5])

    def test_leave_non_member_rejected(self, lifecycle_setup):
        oracle, initial, joiners, *_ = lifecycle_setup
        algorithm = RandomProbeSearch()
        algorithm.build(oracle, initial, seed=1)
        with pytest.raises(ConfigurationError, match="not members"):
            algorithm.leave([int(joiners[0])])

    def test_leave_below_two_members_rejected(self, lifecycle_setup):
        oracle, initial, *_ = lifecycle_setup
        algorithm = RandomProbeSearch()
        algorithm.build(oracle, initial[:3], seed=1)
        with pytest.raises(ConfigurationError, match="below 2"):
            algorithm.leave(initial[:2])

    def test_empty_events_are_noops(self, lifecycle_setup):
        oracle, initial, *_ = lifecycle_setup
        algorithm = RandomProbeSearch()
        algorithm.build(oracle, initial, seed=1)
        assert algorithm.join([]) == 0
        assert algorithm.leave([]) == 0
        assert (algorithm.members == initial).all()

    def test_membership_evolution_order(self, lifecycle_setup):
        """Joins append (sorted); leaves preserve survivor order."""
        oracle, initial, joiners, leavers, _ = lifecycle_setup
        algorithm = RandomProbeSearch()
        algorithm.build(oracle, initial, seed=1)
        algorithm.join(joiners, seed=2)
        expected = np.concatenate([initial, np.sort(joiners)])
        assert (algorithm.members == expected).all()
        algorithm.leave(leavers, seed=3)
        expected = expected[~np.isin(expected, leavers)]
        assert (algorithm.members == expected).all()


class TestRebuildEquivalence:
    """For rebuild-policy schemes, the evolved index is history-free."""

    @pytest.mark.parametrize("algorithm_class", REBUILD_ALGORITHMS)
    def test_rebuild_is_seed_free_and_forgets_departures(
        self, algorithm_class, lifecycle_setup
    ):
        """A rebuild is a pure function of (build stream, event count,
        member set): regions are reconstructed from rng streams keyed on
        ``(build, generation, node)``, so the seeds passed to the events
        themselves contribute nothing — which is exactly what lets
        ``lazy-partial`` refresh a single region bit-identically to a
        full flush (see TestPartialFreshness in test_scheduler.py)."""
        oracle, initial, joiners, leavers, targets = lifecycle_setup
        churned = _churned(algorithm_class, oracle, initial, joiners, leavers)
        replayed = algorithm_class()
        replayed.build(oracle, initial, seed=7)
        replayed.join(joiners, seed=101)  # different event seeds
        replayed.leave(leavers, seed=103)
        live = set(int(m) for m in churned.members)
        departed = set(int(node) for node in leavers)
        for target in targets[:10]:
            a = churned.query(int(target), seed=int(target))
            b = replayed.query(int(target), seed=int(target))
            assert a.found == b.found
            assert a.probes == b.probes
            assert a.found_latency_ms == b.found_latency_ms
            # The rebuilt index holds no trace of departed members.
            assert a.found in live
            assert not set(a.path) & departed

    @pytest.mark.parametrize("algorithm_class", REBUILD_ALGORITHMS)
    def test_rebuild_bills_full_reconstruction(
        self, algorithm_class, lifecycle_setup
    ):
        oracle, initial, joiners, leavers, _ = lifecycle_setup
        algorithm = algorithm_class()
        algorithm.build(oracle, initial, seed=7)
        grown = initial.size + joiners.size
        assert algorithm.join(joiners, seed=11) == grown * grown
        shrunk = grown - leavers.size
        assert algorithm.leave(leavers, seed=13) == shrunk * shrunk
        assert algorithm.rebuild_count == 2

    def test_index_free_incremental_equals_fresh_build(self, lifecycle_setup):
        """random-probe has no index: churned and fresh must agree exactly."""
        oracle, initial, joiners, leavers, targets = lifecycle_setup
        churned = _churned(RandomProbeSearch, oracle, initial, joiners, leavers)
        fresh = RandomProbeSearch()
        fresh.build(oracle, churned.members.copy(), seed=13)
        for target in targets[:10]:
            a = churned.query(int(target), seed=int(target))
            b = fresh.query(int(target), seed=int(target))
            assert a.found == b.found
            assert a.probes == b.probes


class TestIncrementalTolerance:
    """Stateful incremental schemes drift from a fresh build, but must
    keep answering from the live membership with comparable quality."""

    @pytest.mark.parametrize(
        "algorithm_class",
        [MeridianSearch, PicSearch, VivaldiGreedySearch, TiersSearch, BeaconSearch],
    )
    def test_churned_index_stays_accurate(
        self, algorithm_class, lifecycle_setup, uniform_matrix
    ):
        oracle, initial, joiners, leavers, targets = lifecycle_setup
        churned = _churned(algorithm_class, oracle, initial, joiners, leavers)
        members = churned.members
        hits = []
        for target in targets:
            result = churned.query(int(target), seed=int(target))
            assert result.found in set(int(m) for m in members)
            row = uniform_matrix[target, members]
            hits.append(
                uniform_matrix[target, result.found] <= np.median(row)
            )
        # The fresh-build contract is >= 0.9 (test_algorithms); a churned
        # index may drift but must stay well above random guessing (0.5).
        assert np.mean(hits) >= 0.75

    def test_pic_survives_landmark_depletion(self, lifecycle_setup):
        """Regression: a leave() that guts the landmark set below the
        embedding's dimensionality used to crash the counted rebuild when
        the surviving membership was smaller than the configured landmark
        count; it must degrade the embedding instead."""
        oracle, *_ = lifecycle_setup
        algorithm = PicSearch()
        algorithm.build(oracle, np.arange(14), seed=3)
        landmarks = algorithm._embedding.landmark_ids.copy()
        spent = algorithm.leave(landmarks[:9], seed=4)
        assert spent > 0  # the re-embedding was billed
        assert algorithm.rebuild_count == 1
        result = algorithm.query(150, seed=5)
        assert result.found in set(int(m) for m in algorithm.members)

    @pytest.mark.parametrize(
        "algorithm_class",
        [MeridianSearch, PicSearch, VivaldiGreedySearch, TiersSearch, BeaconSearch],
    )
    def test_departed_members_never_returned(
        self, algorithm_class, lifecycle_setup
    ):
        oracle, initial, joiners, leavers, targets = lifecycle_setup
        churned = _churned(algorithm_class, oracle, initial, joiners, leavers)
        current = set(int(m) for m in churned.members)
        for target in targets[:8]:
            assert churned.query(int(target), seed=int(target)).found in current


class TestMaintenanceAccounting:
    def test_result_reports_maintenance_since_previous_query(
        self, lifecycle_setup
    ):
        oracle, initial, joiners, leavers, targets = lifecycle_setup
        algorithm = BeaconSearch()
        algorithm.build(oracle, initial, seed=7)
        spent = algorithm.join(joiners, seed=11)
        spent += algorithm.leave(leavers, seed=13)
        result = algorithm.query(int(targets[0]), seed=1)
        assert spent > 0
        assert result.maintenance_probes == spent
        assert algorithm.maintenance_probes_total == spent
        # Accounted once: the next quiet query reports zero.
        assert algorithm.query(int(targets[1]), seed=2).maintenance_probes == 0

    def test_random_probe_maintenance_is_free(self, lifecycle_setup):
        oracle, initial, joiners, leavers, _ = lifecycle_setup
        algorithm = RandomProbeSearch()
        algorithm.build(oracle, initial, seed=7)
        assert algorithm.join(joiners, seed=1) == 0
        assert algorithm.leave(leavers, seed=2) == 0

    def test_beacon_join_cost_is_beacons_times_arrivals(self, lifecycle_setup):
        oracle, initial, joiners, *_ = lifecycle_setup
        algorithm = BeaconSearch(n_beacons=6)
        algorithm.build(oracle, initial, seed=7)
        assert algorithm.join(joiners, seed=1) == 6 * joiners.size

    def test_query_probes_exclude_maintenance(self, lifecycle_setup):
        """Maintenance is a separate ledger from target probes."""
        oracle, initial, joiners, _, targets = lifecycle_setup
        algorithm = RandomProbeSearch(budget=9)
        algorithm.build(oracle, initial, seed=7)
        algorithm.join(joiners, seed=1)
        result = algorithm.query(int(targets[0]), seed=3)
        assert result.probes == 9
        assert result.maintenance_probes == 0


class TestBitIdentityRegression:
    """Fixed-seed static-protocol results, pinned pre-redesign.

    The golden arrays below were produced by the harness *before* the
    lifecycle API landed; the redesign must not move a single draw."""

    @pytest.fixture(scope="class")
    def small_world(self):
        return build_clustered_oracle(SMALL, seed=5)

    def test_sampled_protocol_unchanged(self, small_world):
        record = QueryEngine().run_world_trial(
            small_world,
            RandomProbeSearch(budget=6),
            sampling=SamplingSpec(n_targets=8),
            protocol="sampled",
            n_queries=25,
            seed=42,
        )
        assert record.targets.tolist() == [
            5, 5, 26, 63, 44, 38, 53, 63, 5, 38, 53, 63, 5, 62, 26, 62, 44,
            44, 5, 26, 63, 53, 62, 53, 44,
        ]
        assert record.found.tolist() == [
            7, 6, 20, 9, 28, 39, 50, 57, 8, 47, 59, 49, 49, 59, 27, 56, 43,
            42, 0, 23, 61, 58, 57, 52, 29,
        ]

    def test_per_target_protocol_unchanged(self, small_world):
        record = QueryEngine().run_world_trial(
            small_world,
            BeaconSearch(n_beacons=5, probe_budget=6),
            sampling=SamplingSpec(n_targets=10),
            protocol="per-target",
            seed=17,
            noise=NoiseSpec(sigma=0.05, additive_ms=0.3),
        )
        assert record.targets.tolist() == [47, 13, 46, 40, 33, 2, 6, 22, 9, 27]
        assert record.found.tolist() == [42, 3, 41, 41, 32, 3, 7, 23, 8, 24]
        assert record.probes.tolist() == [11] * 10

    def test_meridian_sampled_unchanged(self, small_world):
        record = QueryEngine().run_world_trial(
            small_world,
            MeridianSearch(),
            sampling=SamplingSpec(n_targets=8),
            protocol="sampled",
            n_queries=15,
            seed=9,
        )
        assert record.found.tolist() == [
            43, 51, 43, 7, 51, 51, 43, 51, 36, 43, 51, 9, 36, 9, 36,
        ]
        assert record.probes.tolist() == [
            16, 10, 5, 8, 3, 12, 7, 7, 9, 7, 13, 13, 2, 4, 3,
        ]
        # Static protocols carry no maintenance columns.
        assert record.maintenance_probes is None
        assert record.membership_size is None
        assert record.warmup_maintenance_probes == 0


class TestChurnProtocol:
    @pytest.fixture(scope="class")
    def churn_scenario(self):
        return Scenario(
            name="test-churn-proto",
            topology=SMALL,
            sampling=SamplingSpec(n_targets=10),
            protocol="churn",
            churn=ChurnSpec(
                initial_fraction=0.6,
                arrival_rate=0.8,
                departure_rate=0.8,
                session_length=30.0,
                warmup_steps=10,
                min_members=16,
            ),
            n_queries=60,
            seed=23,
        )

    def test_churn_requires_spec(self):
        with pytest.raises(ConfigurationError, match="ChurnSpec"):
            Scenario(name="bad-churn", topology=SMALL, protocol="churn")

    def test_churn_spec_exclusive_to_churn_protocol(self):
        with pytest.raises(ConfigurationError, match="protocol"):
            Scenario(
                name="bad-static",
                topology=SMALL,
                protocol="sampled",
                churn=ChurnSpec(),
            )

    def test_churn_spec_validation(self):
        with pytest.raises(ConfigurationError):
            ChurnSpec(arrival_rate=-1.0)
        with pytest.raises(ConfigurationError):
            ChurnSpec(min_members=1)
        with pytest.raises(ConfigurationError):
            ChurnSpec(initial_fraction=1.5)

    def test_churn_trial_end_to_end(self, churn_scenario):
        record = QueryEngine().run_trial(
            churn_scenario, lambda: RandomProbeSearch(budget=8), 123
        )
        assert record.n_queries == 60
        assert record.maintenance_probes is not None
        assert record.membership_size is not None
        assert record.membership_size.min() >= churn_scenario.churn.min_members
        # The membership actually churned.
        assert np.unique(record.membership_size).size > 1
        assert 0.0 <= record.exact_rate <= 1.0
        assert 0.0 <= record.cluster_rate <= 1.0
        # Targets are never members, under any epoch.
        assert not np.isin(record.found, record.targets).any()

    def test_churn_trial_is_deterministic(self, churn_scenario):
        run = lambda: QueryEngine().run_trial(  # noqa: E731
            churn_scenario, lambda: RandomProbeSearch(budget=8), 31
        )
        a, b = run(), run()
        assert (a.targets == b.targets).all()
        assert (a.found == b.found).all()
        assert (a.maintenance_probes == b.maintenance_probes).all()
        assert (a.membership_size == b.membership_size).all()
        assert a.warmup_maintenance_probes == b.warmup_maintenance_probes

    def test_churn_bills_maintenance(self, churn_scenario):
        """An index-carrying scheme must pay per event under churn."""
        record = QueryEngine().run_trial(
            churn_scenario, lambda: BeaconSearch(n_beacons=5), 123
        )
        assert record.total_maintenance_probes > 0
        assert record.mean_maintenance_probes_per_query > 0
        assert record.warmup_maintenance_probes > 0

    def test_registered_churn_scenarios_run(self):
        """The canonical churn workloads drive the engine end-to-end."""
        for name in ("steady-churn", "flash-crowd", "mass-departure"):
            scenario = get_scenario(name)
            assert scenario.protocol == "churn"
            small = scenario.with_(
                topology=SMALL,
                n_queries=25,
                sampling=SamplingSpec(n_targets=10),
                churn=ChurnSpec(
                    initial_fraction=scenario.churn.initial_fraction,
                    arrival_rate=scenario.churn.arrival_rate,
                    departure_rate=scenario.churn.departure_rate,
                    session_length=scenario.churn.session_length,
                    warmup_steps=min(scenario.churn.warmup_steps, 5),
                    min_members=16,
                ),
                trials=1,
            )
            record = QueryEngine().run_trial(
                small, lambda: RandomProbeSearch(budget=8), 7
            )
            assert record.n_queries == 25

    def test_flash_crowd_grows_and_mass_departure_shrinks(self):
        flash = get_scenario("flash-crowd").with_(
            topology=SMALL, n_queries=40, sampling=SamplingSpec(n_targets=10)
        )
        record = QueryEngine().run_trial(
            flash, lambda: RandomProbeSearch(budget=8), 3
        )
        assert record.membership_size[-1] > record.membership_size[0]
        drain = get_scenario("mass-departure").with_(
            topology=SMALL, n_queries=40, sampling=SamplingSpec(n_targets=10)
        )
        record = QueryEngine().run_trial(
            drain, lambda: RandomProbeSearch(budget=8), 3
        )
        assert record.membership_size[-1] < record.membership_size[0]

    def test_churn_scoring_uses_membership_at_query_time(self):
        """score_epochs judges each query against its own epoch."""
        from repro.harness import score_epochs

        matrix = np.array(
            [
                [0.0, 1.0, 2.0, 9.0],
                [1.0, 0.0, 3.0, 9.0],
                [2.0, 3.0, 0.0, 9.0],
                [9.0, 9.0, 9.0, 0.0],
            ]
        )
        memberships = [np.array([1, 2]), np.array([2])]
        targets = np.array([0, 0])
        found = np.array([2, 2])
        exact, _ = score_epochs(
            matrix, memberships, np.array([0, 1]), targets, found
        )
        # Node 2 is wrong while node 1 is alive, right after it left.
        assert exact.tolist() == [False, True]


class TestRegistryHygiene:
    def test_unregister_scenario_roundtrip(self):
        scenario = Scenario(name="test-unregister", topology=SMALL)
        register_scenario(scenario)
        assert "test-unregister" in list_scenarios()
        assert unregister_scenario("test-unregister") is scenario
        assert "test-unregister" not in list_scenarios()
        with pytest.raises(ConfigurationError):
            unregister_scenario("test-unregister")

    def test_temporary_scenario_cleans_up(self):
        scenario = Scenario(name="test-temporary", topology=SMALL)
        with temporary_scenario(scenario) as registered:
            assert registered is scenario
            assert get_scenario("test-temporary") is scenario
        assert "test-temporary" not in list_scenarios()

    def test_temporary_scenario_restores_overwritten_entry(self):
        original = Scenario(name="test-temp-overwrite", topology=SMALL)
        register_scenario(original)
        replacement = original.with_(n_queries=5)
        with temporary_scenario(replacement, overwrite=True):
            assert get_scenario("test-temp-overwrite") is replacement
        assert get_scenario("test-temp-overwrite") is original
        unregister_scenario("test-temp-overwrite")

    def test_temporary_scenario_cleans_up_on_error(self):
        scenario = Scenario(name="test-temp-error", topology=SMALL)
        with pytest.raises(RuntimeError):
            with temporary_scenario(scenario):
                raise RuntimeError("boom")
        assert "test-temp-error" not in list_scenarios()
