"""Tests for consistent hashing, the Chord ring and the KV store."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dht.chord import ChordRing
from repro.dht.hashing import (
    RING_SIZE,
    hash_key,
    hash_node,
    in_interval,
    ring_distance,
)
from repro.dht.kvstore import DhtKeyValueStore
from repro.util.errors import DataError

ring_points = st.integers(min_value=0, max_value=RING_SIZE - 1)


class TestHashing:
    def test_hash_key_types(self):
        assert hash_key("router-5") == hash_key("router-5")
        assert hash_key(12345) == hash_key(12345)
        assert hash_key(b"abc") == hash_key(b"abc")
        with pytest.raises(DataError):
            hash_key(3.14)

    def test_node_and_key_domains_separated(self):
        assert hash_node(5) != hash_key(5)

    @given(ring_points, ring_points)
    def test_ring_distance_antisymmetric(self, a, b):
        if a != b:
            assert ring_distance(a, b) + ring_distance(b, a) == RING_SIZE
        else:
            assert ring_distance(a, b) == 0

    @given(ring_points, ring_points, ring_points)
    def test_in_interval_wraps(self, x, left, right):
        # Membership plus complement covers the ring (excluding endpoints).
        if x not in (left, right) and left != right:
            inside = in_interval(x, left, right, inclusive_right=False)
            outside = in_interval(x, right, left, inclusive_right=False)
            assert inside != outside


def brute_force_owner(ring: ChordRing, position: int) -> int:
    """The node whose ring id is the first at/after ``position``."""
    best, best_distance = None, None
    for node_id in ring.node_ids:
        node = ring.node(node_id)
        distance = ring_distance(position, node.ring_id)
        if best_distance is None or distance < best_distance:
            best, best_distance = node_id, distance
    return best


class TestChord:
    def test_lookup_matches_brute_force(self):
        ring = ChordRing.build(list(range(40)))
        rng = np.random.default_rng(0)
        for _ in range(60):
            position = int(rng.integers(0, RING_SIZE, dtype=np.uint64))
            start = int(rng.choice(ring.node_ids))
            owner, hops = ring.lookup(start, position)
            assert owner == brute_force_owner(ring, position)

    def test_lookup_hops_logarithmic(self):
        ring = ChordRing.build(list(range(128)))
        rng = np.random.default_rng(1)
        hops = []
        for _ in range(50):
            position = int(rng.integers(0, RING_SIZE, dtype=np.uint64))
            start = int(rng.choice(ring.node_ids))
            hops.append(ring.lookup(start, position)[1])
        assert np.mean(hops) <= 2 * np.log2(128)

    def test_join_then_stabilize_restores_correctness(self):
        ring = ChordRing.build(list(range(20)))
        ring.join(500)
        ring.join(501)
        ring.stabilize()
        rng = np.random.default_rng(2)
        for _ in range(30):
            position = int(rng.integers(0, RING_SIZE, dtype=np.uint64))
            owner, _ = ring.lookup(500, position)
            assert owner == brute_force_owner(ring, position)

    def test_leave_then_stabilize(self):
        ring = ChordRing.build(list(range(20)))
        ring.leave(3)
        ring.stabilize()
        assert 3 not in ring.node_ids
        rng = np.random.default_rng(3)
        for _ in range(20):
            position = int(rng.integers(0, RING_SIZE, dtype=np.uint64))
            owner, _ = ring.lookup(0, position)
            assert owner == brute_force_owner(ring, position)

    def test_duplicate_join_rejected(self):
        ring = ChordRing.build([1, 2])
        with pytest.raises(DataError):
            ring.join(1)

    def test_unknown_leave_rejected(self):
        ring = ChordRing.build([1, 2])
        with pytest.raises(DataError):
            ring.leave(99)

    def test_single_node_ring(self):
        ring = ChordRing.build([7])
        owner, hops = ring.lookup(7, 12345)
        assert owner == 7

    @settings(max_examples=15, deadline=None)
    @given(st.sets(st.integers(min_value=0, max_value=10**6), min_size=2, max_size=40))
    def test_lookup_correct_for_arbitrary_memberships(self, node_ids):
        ring = ChordRing.build(sorted(node_ids))
        position = hash_key("probe")
        start = sorted(node_ids)[0]
        owner, _ = ring.lookup(start, position)
        assert owner == brute_force_owner(ring, position)


class TestKvStore:
    def test_put_get_multivalue(self):
        ring = ChordRing.build(list(range(16)))
        store = DhtKeyValueStore(ring, seed=0)
        store.put("router-1", ("peer-a", 1.5))
        store.put("router-1", ("peer-b", 2.0))
        assert store.get("router-1") == {("peer-a", 1.5), ("peer-b", 2.0)}

    def test_get_missing_key_empty(self):
        store = DhtKeyValueStore(ChordRing.build([1, 2, 3]), seed=0)
        assert store.get("nothing") == set()

    def test_remove(self):
        store = DhtKeyValueStore(ChordRing.build(list(range(8))), seed=0)
        store.put("k", 1)
        store.put("k", 2)
        store.remove("k", 1)
        assert store.get("k") == {2}

    def test_replication_survives_owner_loss(self):
        ring = ChordRing.build(list(range(24)))
        store = DhtKeyValueStore(ring, replicas=3, seed=0)
        store.put("k", "value")
        owner, _ = ring.lookup(0, hash_key("k"))
        store.handle_node_loss(owner)
        assert "value" in store.get("k")

    def test_lookup_stats_accumulate(self):
        store = DhtKeyValueStore(ChordRing.build(list(range(32))), seed=0)
        for i in range(10):
            store.put(f"key-{i}", i)
        assert store.stats.lookups == 10
        assert store.stats.mean_hops >= 0

    def test_empty_ring_rejected(self):
        with pytest.raises(DataError):
            DhtKeyValueStore(ChordRing(), seed=0)
