"""Tests for deterministic RNG plumbing."""

import numpy as np
import pytest

from repro.util.errors import ConfigurationError
from repro.util.rng import RngStream, child_rng, make_rng, spawn_seeds


class TestMakeRng:
    def test_same_seed_same_draws(self):
        a = make_rng(7).integers(0, 1000, size=10)
        b = make_rng(7).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(3)
        assert make_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSpawnSeeds:
    def test_deterministic(self):
        assert spawn_seeds(42, 5) == spawn_seeds(42, 5)

    def test_distinct(self):
        seeds = spawn_seeds(42, 20)
        assert len(set(seeds)) == 20

    def test_different_master_different_children(self):
        assert spawn_seeds(1, 3) != spawn_seeds(2, 3)

    def test_count_zero(self):
        assert spawn_seeds(1, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            spawn_seeds(1, -1)


class TestChildRng:
    def test_same_labels_same_child(self):
        parent1 = make_rng(11)
        parent2 = make_rng(11)
        a = child_rng(parent1, 1).integers(0, 10**6, 5)
        b = child_rng(parent2, 1).integers(0, 10**6, 5)
        assert np.array_equal(a, b)

    def test_different_labels_independent(self):
        parent = make_rng(11)
        state = parent.bit_generator.state
        a = child_rng(parent, 1).integers(0, 10**6, 5)
        parent.bit_generator.state = state
        b = child_rng(parent, 2).integers(0, 10**6, 5)
        assert not np.array_equal(a, b)


class TestRngStream:
    def test_same_name_cached(self):
        stream = RngStream(seed=5)
        assert stream.stream("x") is stream.stream("x")

    def test_fresh_replays(self):
        stream = RngStream(seed=5)
        a = stream.fresh("topology").integers(0, 10**6, 4)
        b = stream.fresh("topology").integers(0, 10**6, 4)
        assert np.array_equal(a, b)

    def test_names_independent(self):
        stream = RngStream(seed=5)
        a = stream.fresh("a").integers(0, 10**6, 8)
        b = stream.fresh("b").integers(0, 10**6, 8)
        assert not np.array_equal(a, b)

    def test_seed_changes_streams(self):
        a = RngStream(seed=1).fresh("x").integers(0, 10**6, 4)
        b = RngStream(seed=2).fresh("x").integers(0, 10**6, 4)
        assert not np.array_equal(a, b)
