"""Tests for the Section 5 mechanisms: UCL, prefix, multicast, registry."""

import numpy as np
import pytest

from repro.dht.chord import ChordRing
from repro.dht.kvstore import DhtKeyValueStore
from repro.mechanisms.composite import CompositeFinder
from repro.mechanisms.ipprefix import (
    PrefixMap,
    close_pairs_from_internet,
    prefix_error_rates,
)
from repro.mechanisms.multicast import MulticastSearch
from repro.mechanisms.registry import EndNetworkRegistry
from repro.mechanisms.ucl import DictBackend, UclMap, compute_ucl
from repro.util.errors import DataError


def multi_peer_en_pairs(internet, count=5):
    """(peer, en-mate) pairs from multi-peer end-networks."""
    by_en = {}
    for peer in internet.peer_ids:
        by_en.setdefault(internet.host(peer).en_id, []).append(peer)
    pairs = [tuple(v[:2]) for v in by_en.values() if len(v) >= 2]
    return pairs[:count]


class TestComputeUcl:
    def test_ucl_contains_upstream_routers(self, small_internet):
        peer = small_internet.peer_ids[0]
        ucl = compute_ucl(small_internet, peer, seed=1)
        assert ucl, "UCL should not be empty"
        chain_routers = {r for r, _ in small_internet.upward_chain(peer)}
        ucl_routers = {entry.router_id for entry in ucl}
        assert ucl_routers & chain_routers

    def test_ucl_latencies_positive(self, small_internet):
        peer = small_internet.peer_ids[1]
        for entry in compute_ucl(small_internet, peer, seed=2):
            assert entry.latency_ms > 0

    def test_max_routers_cap(self, small_internet):
        peer = small_internet.peer_ids[2]
        ucl = compute_ucl(small_internet, peer, max_routers=2, seed=3)
        # Each traceroute contributes at most 2 hops, across 3 targets.
        assert len(ucl) <= 6


class TestUclMap:
    def test_same_en_peers_discover_each_other(self, small_internet):
        pairs = multi_peer_en_pairs(small_internet)
        assert pairs
        ucl_map = UclMap(small_internet)
        hits = 0
        for a, b in pairs:
            ucl_map.insert_peer(a, compute_ucl(small_internet, a, seed=a))
            found, latency, stats = ucl_map.find_nearest(
                b, compute_ucl(small_internet, b, seed=b), seed=b
            )
            if found == a:
                hits += 1
            ucl_map.remove_peer(a)
        assert hits >= len(pairs) - 1  # allow one trace-noise miss

    def test_estimate_filter_discards_far_candidates(self, small_internet):
        peers = small_internet.peer_ids
        far_pairs = [
            (a, b)
            for a in peers[:3]
            for b in peers[-3:]
            if small_internet.host(a).pop_id != small_internet.host(b).pop_id
        ]
        a, b = far_pairs[0]
        ucl_map = UclMap(small_internet)
        ucl_map.insert_peer(a, compute_ucl(small_internet, a, seed=a))
        found, latency, stats = ucl_map.find_nearest(
            b,
            compute_ucl(small_internet, b, seed=b),
            max_estimate_ms=10.0,
            seed=b,
        )
        # A cross-PoP pair shares no upstream router, or is estimate-filtered.
        assert found is None

    def test_dht_backend_equivalent_to_dict(self, small_internet):
        pairs = multi_peer_en_pairs(small_internet, count=2)
        a, b = pairs[0]
        ring = ChordRing.build(list(range(16)))
        dht_map = UclMap(small_internet, backend=DhtKeyValueStore(ring, seed=0))
        dict_map = UclMap(small_internet, backend=DictBackend())
        ucl_a = compute_ucl(small_internet, a, seed=a)
        ucl_b = compute_ucl(small_internet, b, seed=b)
        for m in (dht_map, dict_map):
            m.insert_peer(a, ucl_a)
        found_dht, _, _ = dht_map.find_nearest(b, ucl_b, seed=1)
        found_dict, _, _ = dict_map.find_nearest(b, ucl_b, seed=1)
        assert found_dht == found_dict


class TestPrefixMap:
    def test_same_en_peers_share_24(self, small_internet):
        pairs = multi_peer_en_pairs(small_internet)
        prefix_map = PrefixMap(small_internet, prefix_length=24)
        a, b = pairs[0]
        prefix_map.insert_peer(a)
        assert a in prefix_map.candidates(b)

    def test_find_nearest_probes_candidates(self, small_internet):
        pairs = multi_peer_en_pairs(small_internet)
        a, b = pairs[0]
        prefix_map = PrefixMap(small_internet, prefix_length=24)
        prefix_map.insert_peer(a)
        found, latency, probes = prefix_map.find_nearest(b, seed=0)
        assert found == a
        assert probes >= 1

    def test_bad_prefix_length(self, small_internet):
        with pytest.raises(DataError):
            PrefixMap(small_internet, prefix_length=0)


class TestPrefixErrorRates:
    def test_hand_built_case(self):
        # Peers 0,1 share a /24 and are close; peer 2 shares the /24 but is
        # far; peer 3 is close to 0 but in a different /8.
        ips = np.array(
            [
                (10 << 24) | (1 << 8) | 1,
                (10 << 24) | (1 << 8) | 2,
                (10 << 24) | (1 << 8) | 3,
                (99 << 24) | 1,
            ],
            dtype=np.uint64,
        )
        close = {(0, 1), (0, 3)}
        rates = prefix_error_rates(ips, close, [24])[0]
        # Peer 0: far = {2}; far sharing /24 = {2} -> FP 1.0.
        # Peer 0: close = {1, 3}; not sharing = {3} -> FN 0.5.
        assert rates.median_false_positive_rate > 0
        assert 0 < rates.median_false_negative_rate < 1

    def test_bad_pairs_rejected(self):
        ips = np.array([1, 2], dtype=np.uint64)
        with pytest.raises(DataError):
            prefix_error_rates(ips, {(0, 5)}, [16])

    def test_close_pairs_from_internet_symmetric_indices(self, small_internet):
        peers = small_internet.peer_ids[:60]
        close = close_pairs_from_internet(small_internet, peers, seed=0)
        for i, j in close:
            assert i < j
            assert 0 <= i < len(peers) and 0 <= j < len(peers)


class TestMulticast:
    def test_reaches_only_same_en(self, small_internet):
        pairs = multi_peer_en_pairs(small_internet)
        search = MulticastSearch(
            small_internet, multicast_enabled_fraction=1.0, seed=0
        )
        peer_set = set(small_internet.peer_ids)
        a, b = pairs[0]
        reachable = search.reachable_peers(a, peer_set)
        for peer in reachable:
            assert small_internet.host(peer).en_id == small_internet.host(a).en_id

    def test_disabled_multicast_finds_nothing(self, small_internet):
        search = MulticastSearch(
            small_internet, multicast_enabled_fraction=0.0, seed=0
        )
        peer = small_internet.peer_ids[0]
        found, latency = search.find_nearest(peer, set(small_internet.peer_ids))
        assert found is None

    def test_vlan_fragmentation_partitions(self, small_internet):
        full = MulticastSearch(
            small_internet,
            multicast_enabled_fraction=1.0,
            vlan_fragmentation_threshold=10**9,
            seed=0,
        )
        fragmented = MulticastSearch(
            small_internet,
            multicast_enabled_fraction=1.0,
            vlan_fragmentation_threshold=1,
            vlans_in_large_en=4,
            seed=0,
        )
        peer_set = set(small_internet.peer_ids)
        total_full = sum(
            len(full.reachable_peers(p, peer_set))
            for p in small_internet.peer_ids[:100]
        )
        total_fragmented = sum(
            len(fragmented.reachable_peers(p, peer_set))
            for p in small_internet.peer_ids[:100]
        )
        assert total_fragmented <= total_full


class TestRegistry:
    def test_join_lookup_roundtrip(self, small_internet):
        pairs = multi_peer_en_pairs(small_internet)
        registry = EndNetworkRegistry(small_internet, deployment_threshold=2)
        a, b = pairs[0]
        assert registry.join(a)
        assert a in registry.lookup(b)
        found, latency = registry.find_nearest(b)
        assert found == a
        assert latency < 1.0

    def test_threshold_limits_deployment(self, small_internet):
        sparse = EndNetworkRegistry(small_internet, deployment_threshold=100)
        assert sparse.stats().end_networks_with_registry == 0

    def test_leave_requires_membership(self, small_internet):
        registry = EndNetworkRegistry(small_internet, deployment_threshold=1)
        with pytest.raises(DataError):
            registry.leave(small_internet.peer_ids[0])

    def test_coverage_stats(self, small_internet):
        registry = EndNetworkRegistry(small_internet, deployment_threshold=2)
        stats = registry.stats()
        assert 0 <= stats.peer_coverage <= 1


class TestComposite:
    def test_stage_attribution_and_quality(self, small_internet):
        pairs = multi_peer_en_pairs(small_internet)
        finder = CompositeFinder(
            small_internet,
            multicast=MulticastSearch(
                small_internet, multicast_enabled_fraction=1.0, seed=0
            ),
            registry=EndNetworkRegistry(small_internet),
            ucl_map=UclMap(small_internet),
            seed=0,
        )
        a, b = pairs[0]
        finder.register_peer(a)
        result = finder.find_nearest(b)
        assert result.stage in ("multicast", "registry", "ucl")
        assert result.found == a

    def test_no_mechanism_no_fallback_returns_none(self, small_internet):
        finder = CompositeFinder(small_internet, seed=0)
        result = finder.find_nearest(small_internet.peer_ids[0])
        assert result.stage == "none"
        assert result.found is None
