"""Tests for the discrete-event engine and latency-faithful network."""

import numpy as np
import pytest

from repro.netsim.engine import EventLoop
from repro.netsim.network import Message, Network, SimNode
from repro.topology.oracle import MatrixOracle
from repro.util.errors import SimulationError


class TestEventLoop:
    def test_events_fire_in_time_order(self):
        loop = EventLoop()
        fired = []
        loop.schedule(5.0, fired.append, "b")
        loop.schedule(1.0, fired.append, "a")
        loop.schedule(9.0, fired.append, "c")
        loop.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_schedule_order(self):
        loop = EventLoop()
        fired = []
        for tag in range(5):
            loop.schedule(1.0, fired.append, tag)
        loop.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_clock_advances(self):
        loop = EventLoop()
        times = []
        loop.schedule(2.5, lambda: times.append(loop.now))
        loop.run()
        assert times == [2.5]
        assert loop.now == 2.5

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventLoop().schedule(-1.0, lambda: None)

    def test_cancellation(self):
        loop = EventLoop()
        fired = []
        handle = loop.schedule(1.0, fired.append, "x")
        handle.cancel()
        loop.run()
        assert fired == []

    def test_run_until_stops_at_boundary(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, fired.append, "early")
        loop.schedule(10.0, fired.append, "late")
        loop.run_until(5.0)
        assert fired == ["early"]
        assert loop.now == 5.0
        loop.run()
        assert fired == ["early", "late"]

    def test_run_until_backwards_rejected(self):
        loop = EventLoop()
        loop.run_until(5.0)
        with pytest.raises(SimulationError):
            loop.run_until(1.0)

    def test_events_scheduled_during_run(self):
        loop = EventLoop()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                loop.schedule(1.0, chain, n + 1)

        loop.schedule(0.0, chain, 0)
        loop.run()
        assert fired == [0, 1, 2, 3]
        assert loop.processed == 4

    def test_max_events_bound(self):
        loop = EventLoop()

        def rescheduling():
            loop.schedule(1.0, rescheduling)

        loop.schedule(0.0, rescheduling)
        loop.run(max_events=10)
        assert loop.processed == 10

    def test_cancelled_events_do_not_consume_max_events_budget(self):
        """Regression: a drained cancellation storm must not starve real
        events — only events that actually fire count toward the budget."""
        loop = EventLoop()
        fired = []
        handles = [loop.schedule(1.0, fired.append, i) for i in range(50)]
        for handle in handles:
            handle.cancel()
        for i in range(5):
            loop.schedule(2.0, fired.append, 100 + i)
        loop.run(max_events=5)
        assert fired == [100, 101, 102, 103, 104]
        assert loop.processed == 5

    def test_cancelled_events_still_drain_from_queue(self):
        loop = EventLoop()
        handle = loop.schedule(1.0, lambda: None)
        handle.cancel()
        loop.schedule(2.0, lambda: None)
        loop.run(max_events=1)
        assert loop.pending == 0

    def test_pending_excludes_cancelled_events(self):
        """Regression: ``pending`` used to count cancelled entries."""
        loop = EventLoop()
        handles = [loop.schedule(1.0, lambda: None) for _ in range(10)]
        assert loop.pending == 10
        for handle in handles[:7]:
            handle.cancel()
        assert loop.pending == 3
        # Double-cancel and cancel-after-fire must not corrupt the count.
        handles[0].cancel()
        assert loop.pending == 3
        loop.run()
        assert loop.pending == 0
        assert loop.processed == 3
        for handle in handles:
            handle.cancel()  # all fired or cancelled: no-ops
        assert loop.pending == 0

    def test_compaction_shrinks_the_heap(self):
        loop = EventLoop()
        fired = []
        keepers = [loop.schedule(float(i), fired.append, i) for i in range(5)]
        storm = [loop.schedule(10.0, fired.append, -1) for _ in range(500)]
        assert loop.queue_size == 505
        for handle in storm:
            handle.cancel()
        # The cancellation storm crossed the compaction threshold: dead
        # entries were swept, so the heap carries at most one threshold's
        # worth of them (the post-compaction stragglers) — not all 500.
        assert loop.pending == 5
        assert loop.queue_size - loop.pending < 64
        loop.run()
        assert fired == [0, 1, 2, 3, 4]
        assert all(not h.active for h in keepers)

    def test_compaction_preserves_firing_order(self):
        loop = EventLoop()
        fired = []
        # Interleave keepers and victims at identical times, so only the
        # (time, sequence) keys can order the survivors.
        victims = []
        for i in range(200):
            if i % 2:
                victims.append(loop.schedule(5.0, fired.append, i))
            else:
                loop.schedule(5.0, fired.append, i)
        for handle in victims:
            handle.cancel()
        loop.run()
        assert fired == [i for i in range(200) if i % 2 == 0]

    def test_handle_active_property(self):
        loop = EventLoop()
        handle = loop.schedule(1.0, lambda: None)
        assert handle.active
        loop.run()
        assert not handle.active
        other = loop.schedule(1.0, lambda: None)
        other.cancel()
        assert not other.active


class _Echo(SimNode):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.received = []

    def on_message(self, message: Message):
        self.received.append((message.kind, self.network.loop.now))
        if message.kind == "ping":
            self.send(message.src, "pong")


def two_node_net(latency_ms=10.0, loss=0.0):
    loop = EventLoop()
    oracle = MatrixOracle(np.array([[0.0, latency_ms], [latency_ms, 0.0]]))
    net = Network(loop, oracle, loss_rate=loss, seed=0)
    nodes = [_Echo(0), _Echo(1)]
    for node in nodes:
        net.attach(node)
    return loop, net, nodes


class TestNetwork:
    def test_one_way_delay_is_half_rtt(self):
        loop, net, nodes = two_node_net(latency_ms=10.0)
        nodes[0].send(1, "ping")
        loop.run()
        assert nodes[1].received[0] == ("ping", 5.0)
        # Reply arrives after a full RTT at the originator.
        assert nodes[0].received[0] == ("pong", 10.0)

    def test_duplicate_node_rejected(self):
        loop, net, nodes = two_node_net()
        with pytest.raises(SimulationError):
            net.attach(_Echo(0))

    def test_unknown_destination(self):
        loop, net, nodes = two_node_net()
        with pytest.raises(SimulationError):
            nodes[0].send(99, "ping")

    def test_loss_drops_messages(self):
        loop, net, nodes = two_node_net(loss=0.999)
        for _ in range(50):
            nodes[0].send(1, "ping")
        loop.run()
        assert net.messages_lost > 40

    def test_timers_bypass_loss(self):
        loop, net, nodes = two_node_net(loss=0.999)
        nodes[0].set_timer(3.0, "tick")
        loop.run()
        assert nodes[0].received == [("tick", 3.0)]

    def test_detached_node_cannot_send(self):
        node = _Echo(7)
        with pytest.raises(SimulationError):
            node.send(0, "ping")

    def test_counters(self):
        loop, net, nodes = two_node_net()
        nodes[0].send(1, "ping")
        loop.run()
        assert net.messages_sent == 2  # ping + pong
        assert net.messages_delivered == 2


def fan_out_net(n=8, loss=0.0, seed=0):
    rng = np.random.default_rng(42)
    matrix = rng.uniform(5.0, 50.0, size=(n, n))
    matrix = (matrix + matrix.T) / 2.0
    np.fill_diagonal(matrix, 0.0)
    loop = EventLoop()
    net = Network(loop, MatrixOracle(matrix), loss_rate=loss, seed=seed)
    nodes = [_Echo(i) for i in range(n)]
    for node in nodes:
        net.attach(node)
    return loop, net, nodes


class TestSendMany:
    def test_matches_scalar_sends_bit_for_bit(self):
        """Same seed: identical delivery times and loss pattern as a loop."""
        for loss in (0.0, 0.4):
            loop_a, net_a, nodes_a = fan_out_net(loss=loss, seed=7)
            loop_b, net_b, nodes_b = fan_out_net(loss=loss, seed=7)
            dsts = list(range(1, 8))
            for dst in dsts:
                nodes_a[0].send(dst, "probe")
            net_b.send_many(0, dsts, "probe")
            loop_a.run()
            loop_b.run()
            assert net_a.messages_sent == net_b.messages_sent
            assert net_a.messages_lost == net_b.messages_lost
            for a, b in zip(nodes_a[1:], nodes_b[1:]):
                assert a.received == b.received

    def test_payloads_follow_their_destinations_through_loss(self):
        class _Recorder(SimNode):
            def __init__(self, node_id):
                super().__init__(node_id)
                self.payloads = []

            def on_message(self, message):
                self.payloads.append(message.payload)

        rng = np.random.default_rng(42)
        matrix = rng.uniform(5.0, 50.0, size=(8, 8))
        matrix = (matrix + matrix.T) / 2.0
        np.fill_diagonal(matrix, 0.0)
        loop = EventLoop()
        net = Network(loop, MatrixOracle(matrix), loss_rate=0.5, seed=3)
        nodes = [_Recorder(i) for i in range(8)]
        for node in nodes:
            net.attach(node)
        dsts = list(range(1, 8))
        net.send_many(0, dsts, "tag", payloads=[f"p{d}" for d in dsts])
        loop.run()
        assert net.messages_lost > 0  # loss actually exercised the filter
        for dst in dsts:
            # Either lost, or delivered with *its own* payload.
            assert nodes[dst].payloads in ([], [f"p{dst}"])
        assert sum(len(n.payloads) for n in nodes) + net.messages_lost == 7

    def test_rejects_unknown_destination_and_bad_payloads(self):
        loop, net, nodes = fan_out_net()
        with pytest.raises(SimulationError):
            net.send_many(0, [1, 99], "x")
        with pytest.raises(SimulationError):
            net.send_many(0, [1, 2], "x", payloads=["only-one"])

    def test_empty_fan_out_is_a_no_op(self):
        loop, net, nodes = fan_out_net()
        net.send_many(0, [], "x")
        assert net.messages_sent == 0
        assert loop.pending == 0


class TestDeliverMany:
    def test_delivers_at_explicit_delays(self):
        loop, net, nodes = fan_out_net()
        messages = [
            Message(src=0, dst=d, kind="reply", payload=None) for d in (1, 2, 3)
        ]
        handles = net.deliver_many(messages, [3.0, 1.0, 2.0])
        assert len(handles) == 3
        loop.run()
        assert nodes[1].received == [("reply", 3.0)]
        assert nodes[2].received == [("reply", 1.0)]
        assert nodes[3].received == [("reply", 2.0)]

    def test_handles_cancel_individual_deliveries(self):
        loop, net, nodes = fan_out_net()
        messages = [Message(src=0, dst=d, kind="reply") for d in (1, 2)]
        handles = net.deliver_many(messages, [1.0, 1.0])
        handles[0].cancel()
        loop.run()
        assert nodes[1].received == []
        assert nodes[2].received == [("reply", 1.0)]

    def test_mismatched_or_negative_delays_rejected(self):
        loop, net, nodes = fan_out_net()
        message = Message(src=0, dst=1, kind="x")
        with pytest.raises(SimulationError):
            net.deliver_many([message], [1.0, 2.0])
        with pytest.raises(SimulationError):
            net.deliver_many([message], [-1.0])
