"""Tests for the discrete-event engine and latency-faithful network."""

import numpy as np
import pytest

from repro.netsim.engine import EventLoop
from repro.netsim.network import Message, Network, SimNode
from repro.topology.oracle import MatrixOracle
from repro.util.errors import SimulationError


class TestEventLoop:
    def test_events_fire_in_time_order(self):
        loop = EventLoop()
        fired = []
        loop.schedule(5.0, fired.append, "b")
        loop.schedule(1.0, fired.append, "a")
        loop.schedule(9.0, fired.append, "c")
        loop.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_schedule_order(self):
        loop = EventLoop()
        fired = []
        for tag in range(5):
            loop.schedule(1.0, fired.append, tag)
        loop.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_clock_advances(self):
        loop = EventLoop()
        times = []
        loop.schedule(2.5, lambda: times.append(loop.now))
        loop.run()
        assert times == [2.5]
        assert loop.now == 2.5

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventLoop().schedule(-1.0, lambda: None)

    def test_cancellation(self):
        loop = EventLoop()
        fired = []
        handle = loop.schedule(1.0, fired.append, "x")
        handle.cancel()
        loop.run()
        assert fired == []

    def test_run_until_stops_at_boundary(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, fired.append, "early")
        loop.schedule(10.0, fired.append, "late")
        loop.run_until(5.0)
        assert fired == ["early"]
        assert loop.now == 5.0
        loop.run()
        assert fired == ["early", "late"]

    def test_run_until_backwards_rejected(self):
        loop = EventLoop()
        loop.run_until(5.0)
        with pytest.raises(SimulationError):
            loop.run_until(1.0)

    def test_events_scheduled_during_run(self):
        loop = EventLoop()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                loop.schedule(1.0, chain, n + 1)

        loop.schedule(0.0, chain, 0)
        loop.run()
        assert fired == [0, 1, 2, 3]
        assert loop.processed == 4

    def test_max_events_bound(self):
        loop = EventLoop()

        def rescheduling():
            loop.schedule(1.0, rescheduling)

        loop.schedule(0.0, rescheduling)
        loop.run(max_events=10)
        assert loop.processed == 10

    def test_cancelled_events_do_not_consume_max_events_budget(self):
        """Regression: a drained cancellation storm must not starve real
        events — only events that actually fire count toward the budget."""
        loop = EventLoop()
        fired = []
        handles = [loop.schedule(1.0, fired.append, i) for i in range(50)]
        for handle in handles:
            handle.cancel()
        for i in range(5):
            loop.schedule(2.0, fired.append, 100 + i)
        loop.run(max_events=5)
        assert fired == [100, 101, 102, 103, 104]
        assert loop.processed == 5

    def test_cancelled_events_still_drain_from_queue(self):
        loop = EventLoop()
        handle = loop.schedule(1.0, lambda: None)
        handle.cancel()
        loop.schedule(2.0, lambda: None)
        loop.run(max_events=1)
        assert loop.pending == 0


class _Echo(SimNode):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.received = []

    def on_message(self, message: Message):
        self.received.append((message.kind, self.network.loop.now))
        if message.kind == "ping":
            self.send(message.src, "pong")


def two_node_net(latency_ms=10.0, loss=0.0):
    loop = EventLoop()
    oracle = MatrixOracle(np.array([[0.0, latency_ms], [latency_ms, 0.0]]))
    net = Network(loop, oracle, loss_rate=loss, seed=0)
    nodes = [_Echo(0), _Echo(1)]
    for node in nodes:
        net.attach(node)
    return loop, net, nodes


class TestNetwork:
    def test_one_way_delay_is_half_rtt(self):
        loop, net, nodes = two_node_net(latency_ms=10.0)
        nodes[0].send(1, "ping")
        loop.run()
        assert nodes[1].received[0] == ("ping", 5.0)
        # Reply arrives after a full RTT at the originator.
        assert nodes[0].received[0] == ("pong", 10.0)

    def test_duplicate_node_rejected(self):
        loop, net, nodes = two_node_net()
        with pytest.raises(SimulationError):
            net.attach(_Echo(0))

    def test_unknown_destination(self):
        loop, net, nodes = two_node_net()
        with pytest.raises(SimulationError):
            nodes[0].send(99, "ping")

    def test_loss_drops_messages(self):
        loop, net, nodes = two_node_net(loss=0.999)
        for _ in range(50):
            nodes[0].send(1, "ping")
        loop.run()
        assert net.messages_lost > 40

    def test_timers_bypass_loss(self):
        loop, net, nodes = two_node_net(loss=0.999)
        nodes[0].set_timer(3.0, "tick")
        loop.run()
        assert nodes[0].received == [("tick", 3.0)]

    def test_detached_node_cannot_send(self):
        node = _Echo(7)
        with pytest.raises(SimulationError):
            node.send(0, "ping")

    def test_counters(self):
        loop, net, nodes = two_node_net()
        nodes[0].send(1, "ping")
        loop.run()
        assert net.messages_sent == 2  # ping + pong
        assert net.messages_delivered == 2
