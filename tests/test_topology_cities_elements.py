"""Tests for the city map and record types."""

import pytest

from repro.measurement.vantage import TABLE1_VANTAGE_POINTS
from repro.topology.cities import (
    WORLD_CITIES,
    city_by_name,
    city_code,
    major_cities,
)
from repro.topology.elements import RouterKind, RouterRecord
from repro.util.errors import DataError


class TestCities:
    def test_all_table1_cities_exist(self):
        for vantage in TABLE1_VANTAGE_POINTS:
            assert city_by_name(vantage.city).name == vantage.city

    def test_unknown_city_rejected(self):
        with pytest.raises(DataError):
            city_by_name("Atlantis")

    def test_distances_are_plausible(self):
        seattle = city_by_name("Seattle")
        new_york = city_by_name("New York")
        tokyo = city_by_name("Tokyo")
        # One-way coast-to-coast ~ 35 ms; transpacific ~ 55 ms.
        assert 25 <= seattle.distance_ms(new_york) <= 45
        assert 45 <= seattle.distance_ms(tokyo) <= 70

    def test_distance_symmetric_and_zero_to_self(self):
        a, b = WORLD_CITIES[0], WORLD_CITIES[5]
        assert a.distance_ms(b) == pytest.approx(b.distance_ms(a))
        assert a.distance_ms(a) == 0.0

    def test_major_cities_span_continents(self):
        continents = {c.continent for c in major_cities()}
        assert {"NA", "EU", "AS"} <= continents

    def test_city_codes_compact(self):
        assert city_code("Cambridge UK") == "cam"
        assert len(city_code("San Francisco")) == 3


class TestRouterRecord:
    def test_annotation_pair(self):
        record = RouterRecord(
            router_id=1,
            kind=RouterKind.POP,
            isp_id=0,
            pop_id=3,
            as_name="isp0",
            city="Seattle",
            dns_name="cr1.sea.isp0.net",
        )
        assert record.annotation() == ("isp0", "Seattle")
