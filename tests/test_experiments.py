"""Integration tests: every experiment driver runs and its shape checks hold.

Figures 3-7, 10, 11 and Table 1 run at default scale (shared caches make
this cheap); the Meridian sweeps (Figs 8, 9) run at a reduced scale with
only their most robust claims asserted.
"""

import pytest

from repro.experiments import (
    fig3_prediction_cdf,
    fig4_prediction_bins,
    fig5_intra_inter,
    fig6_cluster_sizes,
    fig7_intra_cluster,
    fig10_ucl_hops,
    fig11_prefix_rates,
    table1_vantage,
)
from repro.experiments.config import ExperimentScale

SCALE = ExperimentScale()  # default seed => shared across this module


class TestMeasurementFigures:
    @pytest.mark.parametrize(
        "module",
        [
            table1_vantage,
            fig3_prediction_cdf,
            fig4_prediction_bins,
            fig5_intra_inter,
            fig6_cluster_sizes,
            fig7_intra_cluster,
            fig10_ucl_hops,
            fig11_prefix_rates,
        ],
        ids=lambda m: m.__name__.rsplit(".", 1)[-1],
    )
    def test_runs_and_shapes_hold(self, module):
        result = module.run(SCALE)
        assert result.render()
        assert result.comparisons()
        for check in result.shape_checks():
            assert check.evaluate(), f"{check.experiment}: {check.claim}"


class TestMeridianFigures:
    def test_fig8_collapse_reduced_scale(self):
        """The robust Fig 8 claim at small scale: accuracy at 25 EN/cluster
        clearly beats accuracy at 250."""
        from repro.experiments.config import FIG8_CLUSTER_COUNTS
        from repro.latency.builder import build_clustered_oracle
        from repro.meridian.simulator import run_meridian_trial
        from repro.topology.clustered import ClusteredConfig

        rates = {}
        for en in (25, 250):
            world = build_clustered_oracle(
                ClusteredConfig(
                    n_clusters=FIG8_CLUSTER_COUNTS[en],
                    end_networks_per_cluster=en,
                    delta=0.2,
                ),
                seed=17,
            )
            trial = run_meridian_trial(world, n_targets=60, n_queries=250, seed=17)
            rates[en] = trial.correct_closest_rate
        assert rates[25] > 2 * rates[250]

    def test_fig9_delta_improvement_reduced_scale(self):
        from repro.latency.builder import build_clustered_oracle
        from repro.meridian.simulator import run_meridian_trial
        from repro.topology.clustered import ClusteredConfig

        rates = {}
        for delta in (0.0, 1.0):
            world = build_clustered_oracle(
                ClusteredConfig(
                    n_clusters=8, end_networks_per_cluster=60, delta=delta
                ),
                seed=23,
            )
            trial = run_meridian_trial(world, n_targets=60, n_queries=250, seed=23)
            rates[delta] = trial.correct_closest_rate
        assert rates[1.0] > rates[0.0]


class TestScaleConfig:
    def test_paper_scale_factory(self):
        paper = ExperimentScale.paper()
        assert paper.paper_scale
        assert paper.meridian_queries == 5000
        assert paper.meridian_seeds == 3
