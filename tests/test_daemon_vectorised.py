"""Tests for the vectorised daemon core: batch stepper, SoA state, shards.

Three equivalence obligations anchor the PR 6 refactor:

* the batch stepper (one event per probe round) must reproduce the
  scalar stepper's (one event per probe) run record exactly, for every
  scheme — the timeline argument is that a scalar round's replies occupy
  a contiguous heap block and the plan advances on the last of them;
* the sharded driver must produce answers and timelines invariant to the
  shard count at a fixed seed;
* the struct-of-arrays admission counters must mirror what the
  historical dict bookkeeping would have held, reconstructed here from
  the job timelines.
"""

import dataclasses

import numpy as np
import pytest

from repro.algorithms import (
    BeaconSearch,
    KargerRuhlSearch,
    MeridianSearch,
    PicSearch,
    RandomProbeSearch,
    TapestrySearch,
    TiersSearch,
    VivaldiGreedySearch,
)
from repro.harness import DaemonSpec, QueryEngine, SamplingSpec
from repro.latency.builder import build_clustered_oracle, build_sparse_clustered_world
from repro.topology.clustered import ClusteredConfig
from repro.util.errors import ConfigurationError

SMALL = ClusteredConfig(n_clusters=6, end_networks_per_cluster=20, delta=0.2)

SCHEMES = [
    ("random-probe", lambda: RandomProbeSearch(budget=8)),
    ("karger-ruhl", lambda: KargerRuhlSearch(samples_per_scale=4, max_rounds=12)),
    ("tapestry", lambda: TapestrySearch(id_digits=4, probe_budget_per_level=8)),
    ("tiers", lambda: TiersSearch(branching=8)),
    ("meridian", MeridianSearch),
    ("beaconing", lambda: BeaconSearch(n_beacons=6, probe_budget=8)),
    ("pic", PicSearch),
]

CHURN_SPEC = DaemonSpec(
    mean_interarrival_ms=30.0,
    per_node_concurrency=2,
    initial_fraction=0.7,
    min_members=32,
    mean_event_interval_ms=120.0,
    departure_rate=0.6,
    arrival_rate=0.6,
)


@pytest.fixture(scope="module")
def small_world():
    return build_clustered_oracle(SMALL, seed=99)


def run_daemon(world, factory, spec, n_queries=25, seed=5):
    return QueryEngine().run_daemon_trial(
        world,
        factory(),
        spec,
        sampling=SamplingSpec(n_targets=30),
        n_queries=n_queries,
        seed=seed,
    )


class TestBatchScalarEquivalence:
    """The vectorised stepper is bit-identical to the per-probe reference."""

    @pytest.mark.parametrize("name,factory", SCHEMES, ids=[s[0] for s in SCHEMES])
    def test_full_record_matches(self, small_world, name, factory):
        batch = run_daemon(small_world, factory, CHURN_SPEC)
        scalar = run_daemon(
            small_world, factory, dataclasses.replace(CHURN_SPEC, stepper="scalar")
        )
        assert np.array_equal(batch.targets, scalar.targets)
        assert np.array_equal(batch.found, scalar.found)
        assert np.array_equal(batch.probes, scalar.probes)
        assert np.array_equal(batch.arrival_ms, scalar.arrival_ms)
        assert np.array_equal(batch.start_ms, scalar.start_ms)
        assert np.array_equal(batch.finish_ms, scalar.finish_ms)
        assert np.array_equal(batch.probe_rounds, scalar.probe_rounds)
        assert batch.makespan_ms == scalar.makespan_ms
        assert batch.queue_depth_max == scalar.queue_depth_max
        assert batch.queue_depth_time_avg == scalar.queue_depth_time_avg
        assert batch.n_churn_events == scalar.n_churn_events
        assert batch.ring_repair_probes == scalar.ring_repair_probes
        # The in-flight integral is the same sum in a different float
        # order (per-round sum(delays) vs per-transition accrual).
        assert batch.in_flight_probes_max == scalar.in_flight_probes_max
        assert np.isclose(
            batch.in_flight_probes_time_avg, scalar.in_flight_probes_time_avg
        )
        # The batch path does it in O(rounds) events, not O(probes).
        assert batch.makespan_ms > 0

    def test_zero_delay_equivalence_under_batch(self, small_world):
        """zero_delay collapses both steppers onto the blocking timeline."""
        spec = dataclasses.replace(CHURN_SPEC, zero_delay=True)
        batch = run_daemon(small_world, lambda: RandomProbeSearch(budget=8), spec)
        scalar = run_daemon(
            small_world,
            lambda: RandomProbeSearch(budget=8),
            dataclasses.replace(spec, stepper="scalar"),
        )
        assert np.array_equal(batch.found, scalar.found)
        assert np.array_equal(batch.finish_ms, scalar.finish_ms)
        assert batch.in_flight_probes_max == scalar.in_flight_probes_max


class TestShardInvariance:
    """Sharded runs are deterministic and invariant to the shard count."""

    @pytest.fixture(scope="class")
    def records(self, small_world):
        return {
            shards: run_daemon(
                small_world,
                lambda: RandomProbeSearch(budget=8),
                dataclasses.replace(CHURN_SPEC, shards=shards),
                n_queries=40,
                seed=11,
            )
            for shards in (2, 3, 5)
        }

    def test_answers_and_timelines_invariant(self, records):
        base = records[2]
        for shards in (3, 5):
            other = records[shards]
            assert np.array_equal(base.targets, other.targets)
            assert np.array_equal(base.found, other.found)
            assert np.array_equal(base.probes, other.probes)
            assert np.array_equal(base.arrival_ms, other.arrival_ms)
            assert np.array_equal(base.start_ms, other.start_ms)
            assert np.array_equal(base.finish_ms, other.finish_ms)
            assert np.array_equal(base.exact_hit, other.exact_hit)

    def test_tta_percentiles_invariant(self, records):
        ttas = {
            shards: np.percentile(record.time_to_answer_ms, [50, 95, 99])
            for shards, record in records.items()
        }
        assert np.array_equal(ttas[2], ttas[3])
        assert np.array_equal(ttas[2], ttas[5])

    def test_load_metrics_merge_consistently(self, records):
        base = records[2]
        for shards in (3, 5):
            other = records[shards]
            assert base.queue_depth_max == other.queue_depth_max
            assert base.in_flight_probes_max == other.in_flight_probes_max
            assert np.isclose(
                base.queue_depth_time_avg, other.queue_depth_time_avg
            )
            assert np.isclose(
                base.in_flight_probes_time_avg, other.in_flight_probes_time_avg
            )

    def test_fresh_seed_shard_stepper_cross_product(self, small_world):
        """Regression for the ordered-iteration (R5) audit of service/netsim.

        The audit found no set-ordered loops in either package; this pins
        the invariant the rule protects at a seed and scheme the fixtures
        above don't use: within each driver the run record must be
        identical whether the loop is batch- or scalar-stepped, and the
        sharded driver's record must be invariant to the shard count.
        (The unsharded loop and the sharded script pre-draw the workload
        differently, so streams are only comparable within a driver.)
        """
        records = {
            (shards, stepper): run_daemon(
                small_world,
                lambda: TiersSearch(branching=8),
                dataclasses.replace(CHURN_SPEC, shards=shards, stepper=stepper),
                n_queries=30,
                seed=23,
            )
            for shards in (1, 2, 4)
            for stepper in ("batch", "scalar")
        }
        pairs = [
            ((1, "batch"), (1, "scalar")),  # stepper, unsharded driver
            ((4, "batch"), (4, "scalar")),  # stepper, sharded driver
            ((2, "batch"), (4, "batch")),  # shard count
        ]
        for left, right in pairs:
            base, other = records[left], records[right]
            assert np.array_equal(base.targets, other.targets), (left, right)
            assert np.array_equal(base.found, other.found), (left, right)
            assert np.array_equal(base.probes, other.probes), (left, right)
            assert np.array_equal(base.finish_ms, other.finish_ms), (left, right)
            assert base.n_churn_events == other.n_churn_events, (left, right)

    def test_sharded_rejects_probe_noise(self, small_world):
        from repro.harness import NoiseSpec

        with pytest.raises(ConfigurationError, match="noise"):
            QueryEngine().run_daemon_trial(
                small_world,
                RandomProbeSearch(budget=8),
                dataclasses.replace(CHURN_SPEC, shards=2),
                sampling=SamplingSpec(n_targets=30),
                n_queries=10,
                seed=11,
                noise=NoiseSpec(sigma=0.1),
            )

    def test_sharded_rejects_deferred_maintenance(self, small_world):
        with pytest.raises(ConfigurationError, match="eager"):
            QueryEngine().run_daemon_trial(
                small_world,
                RandomProbeSearch(budget=8, maintenance="lazy"),
                dataclasses.replace(CHURN_SPEC, shards=2),
                sampling=SamplingSpec(n_targets=30),
                n_queries=10,
                seed=11,
            )


class TestMaintenanceByEvent:
    """The per-event ledger replaces the racy first-finisher claim: bills
    are exact (they sum to the run's total maintenance) and invariant to
    stepper choice and shard count, which the per-query
    ``maintenance_probes`` claims never were."""

    @pytest.fixture(scope="class")
    def records(self, small_world):
        return {
            (shards, stepper): run_daemon(
                small_world,
                lambda: TiersSearch(branching=8),
                dataclasses.replace(CHURN_SPEC, shards=shards, stepper=stepper),
                n_queries=30,
                seed=23,
            )
            for shards in (1, 2, 5)
            for stepper in ("batch", "scalar")
        }

    def test_bills_are_exact_in_every_configuration(self, records):
        for key, record in records.items():
            bills = record.maintenance_by_event
            assert bills is not None, key
            assert bills.shape == (record.n_churn_events,), key
            assert (
                int(bills.sum()) + record.maintenance_background_probes
                == record.total_maintenance_probes
            ), key

    def test_bills_invariant_to_stepper_and_shard_count(self, records):
        # The unsharded loop and the sharded script pre-draw the workload
        # differently, so ledgers are comparable within a driver: the
        # stepper must never change a bill, nor must the shard count.
        pairs = [
            ((1, "batch"), (1, "scalar")),
            ((2, "batch"), (2, "scalar")),
            ((2, "batch"), (5, "batch")),
            ((2, "scalar"), (5, "scalar")),
        ]
        for left, right in pairs:
            assert np.array_equal(
                records[left].maintenance_by_event,
                records[right].maintenance_by_event,
            ), (left, right)

    def test_per_event_metric_prefers_the_ledger(self, records):
        record = records[(1, "batch")]
        if record.n_churn_events == 0:
            pytest.skip("workload produced no events at this seed")
        assert record.maintenance_probes_per_event == pytest.approx(
            float(record.maintenance_by_event.mean())
        )

    def test_meridian_periodic_repair_lands_on_background(self, small_world):
        # Per-event repair off and a draining churn mix: the periodic
        # timer does all the repairing, exactly the daemon deployment the
        # background bucket exists for.
        record = run_daemon(
            small_world,
            lambda: MeridianSearch(ring_repair=False),
            dataclasses.replace(
                CHURN_SPEC,
                mean_event_interval_ms=40.0,
                departure_rate=5.0,
                arrival_rate=0.5,
                ring_repair_period_ms=100.0,
            ),
            n_queries=30,
            seed=23,
        )
        assert record.ring_repair_probes > 0
        assert record.maintenance_background_probes == record.ring_repair_probes
        assert (
            int(record.maintenance_by_event.sum())
            + record.maintenance_background_probes
            == record.total_maintenance_probes
        )


class TestSoAState:
    """The struct-of-arrays counters mirror the historical dict bookkeeping."""

    def test_counters_drain_and_peaks_match_job_timelines(self, small_world):
        from repro.algorithms.random_probe import RandomProbeSearch as RPS
        from repro.service import QueryDaemon

        spec = CHURN_SPEC
        rng = np.random.default_rng(5)
        sampling = SamplingSpec(n_targets=30)
        targets = sampling.sample(small_world, rng)
        members = np.setdiff1d(
            np.arange(small_world.topology.n_nodes), targets
        )
        workload_rng = np.random.default_rng(int(rng.integers(2**63)))
        n_initial = max(spec.min_members, int(round(0.7 * members.size)))
        shuffled = workload_rng.permutation(members)
        live = np.sort(shuffled[:n_initial])
        algorithm = RPS(budget=8)
        algorithm.build(small_world.oracle, live, seed=rng)
        daemon = QueryDaemon(
            algorithm,
            spec,
            targets=targets,
            workload_rng=workload_rng,
            algo_rng=rng,
            standby=shuffled[n_initial:].tolist(),
        )
        run = daemon.run(60)
        state = daemon.state
        # All admissions released, all queues drained.
        assert not state.active.any()
        assert not state.queued.any()
        # Liveness mirrors the algorithm's final member set exactly.
        assert state.n_live == algorithm.members.size
        assert np.array_equal(np.flatnonzero(state.alive), np.sort(algorithm.members))
        # Epoch mirrors the membership log.
        assert state.epoch == run.memberships.n_epochs - 1
        # Reconstruct each entry node's concurrency peak from the job
        # timelines — exactly what the historical dict would have peaked
        # at.  A finish and a start at the same instant is the FIFO
        # handoff; the release happens first, so sort finishes first.
        events = []
        for job in run.jobs:
            events.append((job.start_ms, 1, job.entry))
            events.append((job.finish_ms, 0, job.entry))  # 0 sorts first
        counts: dict[int, int] = {}
        peaks: dict[int, int] = {}
        for _t, kind, entry in sorted(events):
            delta = 1 if kind == 1 else -1
            counts[entry] = counts.get(entry, 0) + delta
            peaks[entry] = max(peaks.get(entry, 0), counts[entry])
        for entry, peak in peaks.items():
            assert state.active_peak[entry] == peak
        assert int(state.active_peak.max()) <= spec.per_node_concurrency
        # Queued peaks: at least one node queued iff the run ever queued.
        assert (state.queued_peak.max() > 0) == (run.queue_depth_max > 0)

    def test_member_mask_fast_path_matches_membership(self, small_world):
        algorithm = RandomProbeSearch(budget=8)
        rng = np.random.default_rng(3)
        members = np.arange(0, 200, 2)
        algorithm.build(small_world.oracle, members, seed=rng)
        assert algorithm.view_contains(4) is True
        assert algorithm.view_contains(5) is False
        assert algorithm.view_contains(10**9) is False
        algorithm.leave(np.array([4]), seed=rng)
        algorithm.join(np.array([5]), seed=rng)
        assert algorithm.view_contains(4) is False
        assert algorithm.view_contains(5) is True


class TestDispatchCharging:
    """charge_dispatch bills the entry->prober coordination hop."""

    def test_charged_runs_are_slower_never_faster(self, small_world):
        base = run_daemon(
            small_world, lambda: RandomProbeSearch(budget=8), CHURN_SPEC
        )
        charged = run_daemon(
            small_world,
            lambda: RandomProbeSearch(budget=8),
            dataclasses.replace(CHURN_SPEC, charge_dispatch=True),
        )
        # Same answers and probe bills: charging changes timing only.
        assert np.array_equal(base.targets, charged.targets)
        assert np.array_equal(base.found, charged.found)
        assert np.array_equal(base.probes, charged.probes)
        # Every service time is at least the uncharged one, and the
        # dispatch hop costs real time somewhere.
        assert (
            charged.finish_ms - charged.start_ms
            >= base.finish_ms - base.start_ms - 1e-9
        ).all()
        assert charged.time_to_answer_ms.sum() > base.time_to_answer_ms.sum()

    def test_charged_batch_matches_charged_scalar(self, small_world):
        spec = dataclasses.replace(CHURN_SPEC, charge_dispatch=True)
        batch = run_daemon(small_world, lambda: RandomProbeSearch(budget=8), spec)
        scalar = run_daemon(
            small_world,
            lambda: RandomProbeSearch(budget=8),
            dataclasses.replace(spec, stepper="scalar"),
        )
        assert np.array_equal(batch.finish_ms, scalar.finish_ms)
        assert np.array_equal(batch.found, scalar.found)


class TestSparseWorld:
    """Matrix-free worlds are the same world, served from the path model."""

    def test_sparse_replays_dense_draws(self):
        dense = build_clustered_oracle(SMALL, seed=99)
        sparse = build_sparse_clustered_world(SMALL, seed=99)
        assert sparse.matrix is None
        assert np.array_equal(
            dense.topology.host_hub_latency_ms,
            sparse.topology.host_hub_latency_ms,
        )
        assert np.array_equal(dense.topology.core_ms, sparse.topology.core_ms)

    def test_batch_methods_match_dense_slices(self):
        dense = build_clustered_oracle(SMALL, seed=99)
        topology = build_sparse_clustered_world(SMALL, seed=99).topology
        matrix = dense.matrix.values
        rows = np.array([0, 7, 63, 101])
        cols = np.arange(topology.n_nodes)
        assert np.array_equal(
            topology.latency_block(rows, cols), matrix[np.ix_(rows, cols)]
        )
        assert np.array_equal(topology.latencies_from(7), matrix[7])
        sub = np.array([5, 9, 140])
        assert np.array_equal(topology.latencies_from(7, sub), matrix[7, sub])
        a = np.array([1, 5, 9, 9, 0])
        b = np.array([2, 5, 100, 9, 1])
        assert np.array_equal(topology.latency_pairs(a, b), matrix[a, b])

    def test_daemon_trial_on_sparse_world_matches_dense(self):
        dense = build_clustered_oracle(SMALL, seed=99)
        sparse = build_sparse_clustered_world(SMALL, seed=99)
        kwargs = dict(
            spec=CHURN_SPEC,
            sampling=SamplingSpec(n_targets=30),
            n_queries=25,
            seed=5,
        )
        engine = QueryEngine()
        on_dense = engine.run_daemon_trial(
            dense, RandomProbeSearch(budget=8), kwargs["spec"],
            sampling=kwargs["sampling"], n_queries=kwargs["n_queries"],
            seed=kwargs["seed"],
        )
        on_sparse = engine.run_daemon_trial(
            sparse, RandomProbeSearch(budget=8), kwargs["spec"],
            sampling=kwargs["sampling"], n_queries=kwargs["n_queries"],
            seed=kwargs["seed"],
        )
        assert np.array_equal(on_dense.found, on_sparse.found)
        assert np.array_equal(on_dense.finish_ms, on_sparse.finish_ms)
        assert np.array_equal(on_dense.exact_hit, on_sparse.exact_hit)
        assert np.array_equal(on_dense.cluster_hit, on_sparse.cluster_hit)


class TestMidFlightChurn:
    def test_beaconing_plan_survives_churn_between_rounds(self, small_world):
        """Churn applied between a plan's rounds rebinds the beacon table.

        The plan must rank with its capture-time snapshot: a join that
        grows the live table past the snapshot used to drive the Hotz
        ranking off the end of the member view (IndexError at daemon
        scale); a leave mis-aligned every column after the gap.
        """
        rng = np.random.default_rng(7)
        hosts = np.arange(small_world.topology.n_nodes)
        live = np.sort(rng.choice(hosts, size=hosts.size - 40, replace=False))
        standby = np.setdiff1d(hosts, live)
        target = int(standby[0])
        algorithm = BeaconSearch(n_beacons=6, probe_budget=8)
        algorithm.build(small_world.oracle, live, seed=rng)
        snapshot = algorithm.members.copy()
        plan = algorithm.query_plan(target, seed=3)
        plan.send(None)  # round 1: beacon measurements issued
        algorithm.join(standby[1:13], seed=rng)  # table gains columns
        algorithm.leave(snapshot[:5], seed=rng)  # ... and loses others
        result = None
        try:
            while True:
                plan.send(None)
        except StopIteration as stop:
            result = stop.value
        assert result is not None
        # The answer comes from the plan's own membership snapshot.
        assert result.found in snapshot
        assert result.found != target


class TestDaemonSpecValidation:
    def test_rejects_unknown_stepper(self):
        with pytest.raises(ConfigurationError):
            DaemonSpec(stepper="quantum")

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ConfigurationError):
            DaemonSpec(shards=0)

    def test_vivaldi_greedy_batch_scalar_equivalence(self, small_world):
        batch = run_daemon(small_world, VivaldiGreedySearch, CHURN_SPEC)
        scalar = run_daemon(
            small_world,
            VivaldiGreedySearch,
            dataclasses.replace(CHURN_SPEC, stepper="scalar"),
        )
        assert np.array_equal(batch.found, scalar.found)
        assert np.array_equal(batch.finish_ms, scalar.finish_ms)
