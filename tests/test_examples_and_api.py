"""Smoke tests: the public API surface and the example scripts."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


class TestPublicApi:
    def test_top_level_exports_importable(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_documented_quickstart_works(self):
        """The README/quickstart snippet must stay runnable."""
        from repro import NearestPeerFinder, SyntheticInternet
        from repro.topology.internet import InternetConfig

        internet = SyntheticInternet.generate(
            InternetConfig(
                n_isps=2,
                pops_per_isp_low=2,
                pops_per_isp_high=2,
                en_per_pop_low=6,
                en_per_pop_high=12,
            ),
            seed=7,
        )
        finder = NearestPeerFinder(internet, mechanisms=("registry", "ucl"), seed=7)
        finder.join_all(internet.peer_ids[:30])
        result = finder.find(internet.peer_ids[30])
        assert result.stage in ("registry", "ucl", "fallback")


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "assumption_audit.py",
        "churn_lifecycle.py",
        "trace_a_query.py",
    ],
)
def test_example_scripts_run(script, capsys):
    """The light examples execute end to end (heavier ones are exercised
    through the benchmark suite's equivalent code paths)."""
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 200
