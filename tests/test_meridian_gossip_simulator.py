"""Tests for the gossip overlay builder and the batch simulator."""

import numpy as np
import pytest

from repro.latency.builder import build_clustered_oracle
from repro.meridian.gossip import GossipConfig, run_gossip_overlay
from repro.meridian.overlay import MeridianConfig
from repro.meridian.query import closest_node_query
from repro.meridian.simulator import (
    run_meridian_trial,
    summarize_trials,
)
from repro.topology.clustered import ClusteredConfig
from repro.topology.oracle import MatrixOracle
from repro.util.errors import DataError


class TestGossip:
    def test_gossip_populates_rings(self, uniform_matrix):
        oracle = MatrixOracle(uniform_matrix)
        overlay = run_gossip_overlay(
            oracle,
            np.arange(60),
            gossip_config=GossipConfig(initial_contacts=4),
            rounds=10,
            seed=0,
        )
        counts = [node.member_count() for node in overlay.nodes.values()]
        assert np.mean(counts) > 8  # grew beyond the initial contacts

    def test_gossip_ring_caps(self, uniform_matrix):
        config = MeridianConfig(ring_size=4, candidate_pool=16)
        overlay = run_gossip_overlay(
            MatrixOracle(uniform_matrix),
            np.arange(60),
            meridian_config=config,
            rounds=8,
            seed=0,
        )
        for node in overlay.nodes.values():
            for ring in node.rings:
                assert len(ring) <= 4

    def test_gossip_overlay_answers_queries(self, uniform_matrix):
        oracle = MatrixOracle(uniform_matrix)
        overlay = run_gossip_overlay(oracle, np.arange(60), rounds=10, seed=1)
        result = closest_node_query(overlay, oracle, 80, seed=2)
        assert result.found in set(range(60))

    def test_too_few_members(self, uniform_matrix):
        with pytest.raises(DataError):
            run_gossip_overlay(MatrixOracle(uniform_matrix), [3], seed=0)

    @pytest.mark.parametrize(
        "ring_size,payload",
        [
            (2, [5, 9, 5, 9, 17, 0, 23, 42, 42, 17, 8]),
            # ring_size=1 with >2*ring_size same-ring ids (1, 5, 6, 8, 13
            # all land in node 0's ring 5) plus repeats forces
            # evict-then-reappear: an id capped out of a ring earlier in
            # the payload must be re-inserted exactly as the scalar loop
            # re-inserts it.
            (1, [1, 5, 6, 8, 13, 1, 5, 6, 8, 13, 1, 5, 6, 8, 13]),
        ],
    )
    def test_batched_learn_matches_scalar_loop(
        self, uniform_matrix, ring_size, payload
    ):
        """Regression for the batched gossip exchange: ``_learn_many``
        must produce the same rings as the historical per-member
        ``_learn`` loop (noise-free oracle, identical rng stream)."""
        from repro.meridian.gossip import GossipMeridianNode

        oracle = MatrixOracle(uniform_matrix)

        def build_node(seed):
            return GossipMeridianNode(
                0, MeridianConfig(ring_size=ring_size), GossipConfig(), oracle,
                np.random.default_rng(seed),
            )

        batched = build_node(3)
        batched._learn_many(payload)
        scalar = build_node(3)
        for member in payload:
            scalar._learn(int(member))
        assert batched.state.all_members() == scalar.state.all_members()
        for ring_b, ring_s in zip(batched.state.rings, scalar.state.rings):
            assert ring_b == ring_s


class TestSimulator:
    def test_trial_metrics_consistent(self):
        world = build_clustered_oracle(
            ClusteredConfig(n_clusters=4, end_networks_per_cluster=8), seed=3
        )
        trial = run_meridian_trial(world, n_targets=10, n_queries=60, seed=3)
        assert trial.n_queries == 60
        assert 0.0 <= trial.correct_closest_rate <= 1.0
        assert trial.correct_closest_rate <= trial.correct_cluster_rate + 1e-9
        assert trial.mean_probes_per_query > 0

    def test_targets_must_fit_population(self):
        world = build_clustered_oracle(
            ClusteredConfig(n_clusters=2, end_networks_per_cluster=3), seed=3
        )
        with pytest.raises(DataError):
            run_meridian_trial(world, n_targets=1000, n_queries=5, seed=0)

    def test_cluster_size_degradation_trend(self):
        """Fig 8's collapse, in miniature: accuracy at 8 EN/cluster beats
        accuracy at 64 EN/cluster."""
        small = build_clustered_oracle(
            ClusteredConfig(n_clusters=8, end_networks_per_cluster=8), seed=5
        )
        large = build_clustered_oracle(
            ClusteredConfig(n_clusters=1, end_networks_per_cluster=64), seed=5
        )
        trial_small = run_meridian_trial(small, n_targets=30, n_queries=150, seed=5)
        trial_large = run_meridian_trial(large, n_targets=30, n_queries=150, seed=5)
        assert trial_small.correct_closest_rate > trial_large.correct_closest_rate

    def test_summarize_trials(self):
        summary = summarize_trials([0.3, 0.1, 0.2])
        assert summary.median == pytest.approx(0.2)
        assert summary.minimum == pytest.approx(0.1)
        assert summary.maximum == pytest.approx(0.3)

    def test_summarize_empty_rejected(self):
        with pytest.raises(DataError):
            summarize_trials([])
