"""Tests for the extension experiment and the run-all orchestration."""

import pytest

from repro.experiments import ext_condition_extent
from repro.experiments.config import ExperimentScale
from repro.experiments.runner import ALL_EXPERIMENTS, run_all


class TestConditionExtentExtension:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_condition_extent.run(ExperimentScale())

    def test_fractions_are_probabilities(self, result):
        assert 0.0 <= result.true_affected_fraction <= 1.0
        assert 0.0 <= result.estimated_affected_fraction <= 1.0
        assert 0.0 <= result.pipeline_recall <= 1.0

    def test_pipeline_underestimates(self, result):
        """The headline extension finding: responsiveness filtering and
        single-router clustering hide most of the condition's true extent."""
        assert result.estimated_affected_fraction < result.true_affected_fraction

    def test_shape_checks_hold(self, result):
        for check in result.shape_checks():
            assert check.evaluate(), check.claim

    def test_render_and_comparisons(self, result):
        assert "extent" in result.render().lower()
        assert result.comparisons()


class TestRunner:
    def test_experiment_registry_covers_the_paper(self):
        names = [name for name, _ in ALL_EXPERIMENTS]
        assert names[0] == "Table 1"
        for figure in range(3, 12):
            assert f"Fig {figure}" in names

    def test_run_subset(self):
        report = run_all(ExperimentScale(), only=("Table 1",))
        assert list(report.renders) == ["Table 1"]
        assert report.all_shapes_hold
        assert report.durations["Table 1"] >= 0

    def test_report_renders(self):
        report = run_all(ExperimentScale(), only=("Table 1",))
        text = report.render()
        assert "Paper vs measured" in text
        assert "Shape checks" in text
