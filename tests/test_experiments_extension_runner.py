"""Tests for the extension experiment and the run-all orchestration."""

from dataclasses import dataclass, field

import pytest

from repro.analysis.compare import Comparison, ShapeCheck
from repro.experiments import ext_condition_extent, runner
from repro.experiments.config import ExperimentScale
from repro.experiments.runner import ALL_EXPERIMENTS, RunReport, run_all


class TestConditionExtentExtension:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_condition_extent.run(ExperimentScale())

    def test_fractions_are_probabilities(self, result):
        assert 0.0 <= result.true_affected_fraction <= 1.0
        assert 0.0 <= result.estimated_affected_fraction <= 1.0
        assert 0.0 <= result.pipeline_recall <= 1.0

    def test_pipeline_underestimates(self, result):
        """The headline extension finding: responsiveness filtering and
        single-router clustering hide most of the condition's true extent."""
        assert result.estimated_affected_fraction < result.true_affected_fraction

    def test_shape_checks_hold(self, result):
        for check in result.shape_checks():
            assert check.evaluate(), check.claim

    def test_render_and_comparisons(self, result):
        assert "extent" in result.render().lower()
        assert result.comparisons()


class TestChurnResilienceExtension:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import ext_churn_resilience

        return ext_churn_resilience.run(ExperimentScale())

    def test_every_scheme_reports_a_record(self, result):
        assert [r.scheme for r in result.records] == [
            "random-probe", "beaconing", "meridian",
        ]
        for record in result.records:
            assert record.maintenance_probes is not None
            assert 0.0 <= record.exact_rate <= 1.0

    def test_common_random_numbers_across_schemes(self, result):
        """compare() must give every scheme the identical event and query
        streams: same targets, same membership sizes."""
        a, b = result.records[0], result.records[-1]
        assert (a.targets == b.targets).all()
        assert (a.membership_size == b.membership_size).all()

    def test_shape_checks_hold(self, result):
        for check in result.shape_checks():
            assert check.evaluate(), check.claim

    def test_render_and_comparisons(self, result):
        assert "churn" in result.render().lower()
        assert result.comparisons()


class TestRunner:
    def test_experiment_registry_covers_the_paper(self):
        names = [name for name, _ in ALL_EXPERIMENTS]
        assert names[0] == "Table 1"
        for figure in range(3, 12):
            assert f"Fig {figure}" in names
        assert "Ext (churn)" in names

    def test_run_subset(self):
        report = run_all(ExperimentScale(), only=("Table 1",))
        assert list(report.renders) == ["Table 1"]
        assert report.all_shapes_hold
        assert report.durations["Table 1"] >= 0

    def test_report_renders(self):
        report = run_all(ExperimentScale(), only=("Table 1",))
        text = report.render()
        assert "Paper vs measured" in text
        assert "Shape checks" in text


@dataclass(frozen=True)
class _StubResult:
    """A fake experiment result with one comparison and one shape check."""

    name: str
    holds: bool = True

    def render(self) -> str:
        return f"rendered {self.name}"

    def comparisons(self) -> list[Comparison]:
        return [Comparison(self.name, "quantity", "paper", "measured")]

    def shape_checks(self) -> list[ShapeCheck]:
        return [ShapeCheck(self.name, f"{self.name} claim", lambda: self.holds)]


@dataclass
class _StubModule:
    name: str
    holds: bool = True
    calls: list = field(default_factory=list)

    def run(self, scale):
        self.calls.append(scale)
        return _StubResult(self.name, self.holds)


class TestRunnerFiltering:
    """run_all(only=...) and RunReport, isolated from real experiments."""

    @pytest.fixture
    def stubs(self, monkeypatch):
        modules = (_StubModule("A"), _StubModule("B"), _StubModule("C"))
        monkeypatch.setattr(
            runner, "ALL_EXPERIMENTS", tuple((m.name, m) for m in modules)
        )
        return modules

    def test_only_filters_to_named_experiments(self, stubs):
        a, b, c = stubs
        report = run_all(ExperimentScale(), only=("A", "C"))
        assert list(report.renders) == ["A", "C"]
        assert len(a.calls) == 1 and len(c.calls) == 1
        assert b.calls == []

    def test_only_none_runs_everything(self, stubs):
        report = run_all(ExperimentScale())
        assert list(report.renders) == ["A", "B", "C"]
        assert len(report.comparisons) == 3
        assert len(report.shape_checks) == 3

    def test_scale_is_threaded_through(self, stubs):
        scale = ExperimentScale(seed=99)
        run_all(scale, only=("B",))
        assert stubs[1].calls == [scale]

    def test_render_includes_sections_and_durations(self, stubs):
        report = run_all(ExperimentScale(), only=("A",))
        text = report.render()
        assert "## A" in text
        assert "rendered A" in text
        assert "Paper vs measured" in text
        assert "Shape checks" in text
        assert report.durations["A"] >= 0

    def test_all_shapes_hold_true_and_false(self, stubs, monkeypatch):
        assert run_all(ExperimentScale()).all_shapes_hold
        failing = _StubModule("F", holds=False)
        monkeypatch.setattr(runner, "ALL_EXPERIMENTS", (("F", failing),))
        report = run_all(ExperimentScale())
        assert not report.all_shapes_hold
        assert "FAIL" in report.render()

    def test_empty_report(self):
        report = RunReport()
        assert report.all_shapes_hold  # vacuously true
        assert "Paper vs measured" in report.render()

    def test_unknown_experiment_name_rejected(self, stubs):
        """A typo'd name must fail loudly, not 'pass' with an empty report."""
        from repro.util.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="Nope"):
            run_all(ExperimentScale(), only=("A", "Nope"))

    def test_cli_main_only_filter(self, stubs, capsys):
        runner.main(["--only", "B"])
        out = capsys.readouterr().out
        assert "rendered B" in out
        assert "rendered A" not in out
        assert "all shape checks hold: True" in out

    def test_cli_main_rejects_bad_workers(self, stubs, capsys):
        with pytest.raises(SystemExit):
            runner.main(["--workers", "0"])
        assert "--workers must be >= 1" in capsys.readouterr().err
