"""Tests for IPv4 arithmetic and the prefix allocator."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.topology.ip import (
    PrefixAllocator,
    format_ipv4,
    ip_prefix,
    parse_ipv4,
    prefix_match_length,
    prefixes_array,
)
from repro.util.errors import DataError

ips = st.integers(min_value=0, max_value=2**32 - 1)


class TestParseFormat:
    def test_known(self):
        assert parse_ipv4("10.0.0.1") == (10 << 24) + 1
        assert format_ipv4((192 << 24) + (168 << 16) + 5) == "192.168.0.5"

    @given(ips)
    def test_roundtrip(self, ip):
        assert parse_ipv4(format_ipv4(ip)) == ip

    @pytest.mark.parametrize(
        "bad", ["1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", ""]
    )
    def test_bad_input(self, bad):
        with pytest.raises(DataError):
            parse_ipv4(bad)

    def test_format_out_of_range(self):
        with pytest.raises(DataError):
            format_ipv4(2**32)


class TestPrefix:
    def test_known_prefix(self):
        ip = parse_ipv4("192.168.17.5")
        assert ip_prefix(ip, 16) == (192 << 8) + 168
        assert ip_prefix(ip, 0) == 0
        assert ip_prefix(ip, 32) == ip

    def test_bad_length(self):
        with pytest.raises(DataError):
            ip_prefix(1, 33)
        with pytest.raises(DataError):
            ip_prefix(1, -1)

    @given(ips, ips)
    def test_match_length_symmetric(self, a, b):
        assert prefix_match_length(a, b) == prefix_match_length(b, a)

    @given(ips)
    def test_match_length_self_is_32(self, a):
        assert prefix_match_length(a, a) == 32

    @given(ips, ips, st.integers(min_value=0, max_value=32))
    def test_prefix_equality_iff_match_length(self, a, b, length):
        shares = ip_prefix(a, length) == ip_prefix(b, length)
        assert shares == (prefix_match_length(a, b) >= length)

    @given(st.lists(ips, min_size=1, max_size=30), st.integers(0, 32))
    def test_vectorised_matches_scalar(self, ip_list, length):
        arr = np.array(ip_list, dtype=np.uint64)
        vec = prefixes_array(arr, length)
        for ip, value in zip(ip_list, vec):
            assert int(value) == ip_prefix(ip, length)


class TestPrefixAllocator:
    def test_children_disjoint(self):
        parent = PrefixAllocator(10 << 24, 8)
        blocks = [parent.allocate(24) for _ in range(64)]
        starts = {b.base_ip for b in blocks}
        assert len(starts) == 64
        for block in blocks:
            assert ip_prefix(block.base_ip, 8) == 10

    def test_mixed_sizes_alignment(self):
        parent = PrefixAllocator(10 << 24, 8)
        small = parent.allocate(24)
        large = parent.allocate(16)
        assert large.base_ip % (1 << 16) == 0
        assert large.base_ip >= small.base_ip + 256

    def test_exhaustion(self):
        parent = PrefixAllocator(1 << 24, 24)
        parent.allocate(25)
        parent.allocate(25)
        with pytest.raises(DataError):
            parent.allocate(25)

    def test_child_larger_than_parent_rejected(self):
        with pytest.raises(DataError):
            PrefixAllocator(1 << 24, 24).allocate(20)

    def test_misaligned_base_rejected(self):
        with pytest.raises(DataError):
            PrefixAllocator((1 << 24) + 1, 24)

    def test_random_address_in_block(self):
        rng = np.random.default_rng(0)
        block = PrefixAllocator(parse_ipv4("10.1.2.0"), 24)
        for _ in range(50):
            ip = block.random_address(rng)
            assert ip_prefix(ip, 24) == ip_prefix(block.base_ip, 24)

    @given(st.integers(min_value=9, max_value=24))
    def test_capacity_accounting(self, length):
        parent = PrefixAllocator(10 << 24, 8)
        before = parent.remaining
        parent.allocate(length)
        assert parent.remaining <= before - (1 << (32 - length)) + 1
