"""Tests for the deferred-maintenance scheduler, ring repair, the
membership diff log and long-running service mode.

The scheduler's three guarantees:

* ``eager`` is the default and is bit-identical to the pre-scheduler code
  (every draw, probe and result unchanged);
* ``coalesce(k)`` / ``lazy`` defer honestly — events buffer at zero cost
  and the whole bill lands on the flush that applies them (coalesce: one
  counted application per window; lazy: on the next query), with
  incremental schemes paying the same probes within tolerance and
  rebuild schemes paying a window's worth less;
* queries stay well-defined while the index is stale (coalesce answers
  from the indexed membership; scoring counts a departed answer as a
  miss).
"""

import numpy as np
import pytest

from repro.algorithms import (
    BeaconSearch,
    KargerRuhlSearch,
    MaintenanceScheduler,
    MeridianSearch,
    RandomProbeSearch,
    TapestrySearch,
)
from repro.harness import (
    ChurnSpec,
    MembershipLog,
    QueryEngine,
    SamplingSpec,
    Scenario,
    ServicePhase,
    get_scenario,
    score_epochs,
)
from repro.latency.builder import build_clustered_oracle
from repro.topology.clustered import ClusteredConfig
from repro.topology.oracle import MatrixOracle
from repro.util.errors import ConfigurationError, DataError

SMALL = ClusteredConfig(n_clusters=4, end_networks_per_cluster=8, delta=0.2)


@pytest.fixture(scope="module")
def oracle(uniform_matrix):
    return MatrixOracle(uniform_matrix)


class TestSchedulerSpec:
    def test_from_spec_parsing(self):
        assert MaintenanceScheduler.from_spec(None).discipline == "eager"
        assert MaintenanceScheduler.from_spec("lazy").discipline == "lazy"
        coalesce = MaintenanceScheduler.from_spec("coalesce:5")
        assert coalesce.discipline == "coalesce"
        assert coalesce.window == 5
        # A ready-made scheduler contributes its configuration only: each
        # algorithm gets a private instance (runtime state must not be
        # shared between algorithms).
        ready = MaintenanceScheduler("coalesce", window=3)
        cloned = MaintenanceScheduler.from_spec(ready)
        assert cloned is not ready
        assert (cloned.discipline, cloned.window) == ("coalesce", 3)

    def test_bad_specs_rejected(self):
        with pytest.raises(ConfigurationError):
            MaintenanceScheduler.from_spec("sloppy")
        with pytest.raises(ConfigurationError):
            MaintenanceScheduler.from_spec("lazy:4")
        with pytest.raises(ConfigurationError):
            MaintenanceScheduler.from_spec("coalesce:zero")
        with pytest.raises(ConfigurationError):
            MaintenanceScheduler("coalesce", window=0)
        with pytest.raises(ConfigurationError):
            MaintenanceScheduler.from_spec(7)

    def test_describe(self):
        assert MaintenanceScheduler.from_spec("coalesce:4").describe() == "coalesce:4"
        assert MaintenanceScheduler.from_spec("eager").describe() == "eager"

    def test_every_algorithm_accepts_the_knob(self, oracle):
        for cls in (
            BeaconSearch,
            KargerRuhlSearch,
            MeridianSearch,
            RandomProbeSearch,
            TapestrySearch,
        ):
            algorithm = cls(maintenance="lazy")
            assert algorithm.maintenance_discipline == "lazy"


class TestEagerBitIdentity:
    """Explicit ``eager`` must match the default discipline exactly —
    which the PR 3 golden tests pin to the pre-scheduler behaviour."""

    def test_eager_churn_trial_matches_default(self):
        scenario = Scenario(
            name="test-eager-identity",
            topology=SMALL,
            sampling=SamplingSpec(n_targets=10),
            protocol="churn",
            churn=ChurnSpec(
                initial_fraction=0.6,
                arrival_rate=0.8,
                departure_rate=0.8,
                session_length=30.0,
                warmup_steps=8,
                min_members=16,
            ),
            n_queries=40,
            seed=23,
        )
        for factory in (
            lambda m: BeaconSearch(n_beacons=5, maintenance=m),
            lambda m: KargerRuhlSearch(maintenance=m),
        ):
            default = QueryEngine().run_trial(
                scenario, lambda: factory(None), 123
            )
            eager = QueryEngine().run_trial(
                scenario, lambda: factory("eager"), 123
            )
            assert (default.found == eager.found).all()
            assert (default.maintenance_probes == eager.maintenance_probes).all()
            assert (
                default.warmup_maintenance_probes
                == eager.warmup_maintenance_probes
            )


class TestDeferredSemantics:
    def test_lazy_defers_whole_bill_to_next_query(self, oracle):
        algorithm = BeaconSearch(n_beacons=6, maintenance="lazy")
        algorithm.build(oracle, np.arange(80), seed=7)
        assert algorithm.join(np.arange(80, 100), seed=1) == 0
        assert algorithm.leave(np.arange(0, 10), seed=2) == 0
        assert algorithm.has_pending_maintenance
        assert algorithm.pending_maintenance_events == 2
        result = algorithm.query(150, seed=3)
        assert result.maintenance_probes > 0
        assert not algorithm.has_pending_maintenance
        # Already applied: the next quiet query reports zero.
        assert algorithm.query(151, seed=4).maintenance_probes == 0

    def test_coalesce_flushes_on_window(self, oracle):
        algorithm = KargerRuhlSearch(maintenance="coalesce:3")
        algorithm.build(oracle, np.arange(60), seed=7)
        assert algorithm.join([60, 61], seed=1) == 0
        assert algorithm.join([62], seed=2) == 0
        # Third event fills the window: one counted rebuild over the
        # current 64 members covers all three buffered events.
        spent = algorithm.join([63], seed=3)
        assert spent == 64 * 64
        assert algorithm.rebuild_count == 1
        assert not algorithm.has_pending_maintenance

    def test_flush_maintenance_is_explicit_and_idempotent(self, oracle):
        algorithm = BeaconSearch(n_beacons=6, maintenance="lazy")
        algorithm.build(oracle, np.arange(80), seed=7)
        algorithm.join(np.arange(80, 90), seed=1)
        spent = algorithm.flush_maintenance(seed=2)
        assert spent == 6 * 10  # beacons x net arrivals
        assert algorithm.flush_maintenance(seed=3) == 0

    def test_net_effect_join_then_leave_is_free(self, oracle):
        """A node that joins and leaves inside the buffer window never
        touches the index: the flush nets it out."""
        algorithm = BeaconSearch(n_beacons=6, maintenance="lazy")
        algorithm.build(oracle, np.arange(80), seed=7)
        algorithm.join(np.arange(80, 90), seed=1)
        algorithm.leave(np.arange(80, 90), seed=2)
        assert algorithm.flush_maintenance(seed=3) == 0

    def test_net_effect_skips_rebuild_entirely(self, oracle):
        """A rebuild scheme whose buffered events net out pays nothing —
        the whole point of coalescing join-then-leave churn."""
        algorithm = KargerRuhlSearch(maintenance="lazy")
        algorithm.build(oracle, np.arange(60), seed=7)
        algorithm.join([60, 61], seed=1)
        algorithm.leave([60, 61], seed=2)
        assert algorithm.flush_maintenance(seed=3) == 0
        assert algorithm.rebuild_count == 0

    def test_net_effect_leave_then_rejoin_keeps_index_entries(self, oracle):
        algorithm = BeaconSearch(n_beacons=6, maintenance="lazy")
        algorithm.build(oracle, np.arange(80), seed=7)
        algorithm.leave(np.arange(10, 20), seed=1)
        algorithm.join(np.arange(10, 20), seed=2)
        assert algorithm.flush_maintenance(seed=3) == 0
        # The index still answers over the full membership.
        result = algorithm.query(150, seed=4)
        assert result.found in set(int(m) for m in algorithm.members)

    def test_members_update_eagerly_while_index_defers(self, oracle):
        algorithm = BeaconSearch(n_beacons=6, maintenance="lazy")
        algorithm.build(oracle, np.arange(80), seed=7)
        algorithm.join([80, 81], seed=1)
        assert {80, 81} <= set(int(m) for m in algorithm.members)
        algorithm.leave([0, 1], seed=2)
        assert not {0, 1} & set(int(m) for m in algorithm.members)

    def test_coalesce_query_answers_from_stale_view(self, oracle):
        """Between flushes a coalescing index serves the membership it
        indexed — arrivals invisible, recent departures still eligible."""
        algorithm = RandomProbeSearch(budget=60, maintenance="coalesce:50")
        algorithm.build(oracle, np.arange(60), seed=7)
        algorithm.join(np.arange(60, 120), seed=1)
        result = algorithm.query(150, seed=2)
        assert algorithm.has_pending_maintenance  # window not reached
        assert result.found < 60  # only indexed members answered

    def test_build_resets_pending_state(self, oracle):
        algorithm = BeaconSearch(n_beacons=6, maintenance="lazy")
        algorithm.build(oracle, np.arange(80), seed=7)
        algorithm.join([80, 81], seed=1)
        algorithm.build(oracle, np.arange(80), seed=7)
        assert not algorithm.has_pending_maintenance
        assert algorithm.pending_maintenance_events == 0


class TestDeferredAccounting:
    """Defer-then-bill must sum to the eager bill within tolerance for
    incremental schemes, and to a window's worth *less* for rebuild
    schemes (that saving is the scheduler's purpose)."""

    EVENTS = [
        ("join", np.arange(80, 90)),
        ("leave", np.arange(0, 8)),
        ("join", np.arange(90, 100)),
        ("leave", np.arange(8, 16)),
        ("join", np.arange(100, 110)),
        ("leave", np.arange(16, 24)),
    ]

    def _run(self, factory, discipline):
        algorithm = factory(discipline)
        algorithm.build(
            MatrixOracle(self._matrix), np.arange(80), seed=7
        )
        for i, (kind, ids) in enumerate(self.EVENTS):
            getattr(algorithm, kind)(ids, seed=100 + i)
        algorithm.query(150, seed=5)  # lazy pays here
        algorithm.flush_maintenance(seed=6)  # coalesce pays any remainder
        return algorithm.maintenance_probes_total

    @pytest.fixture(autouse=True)
    def _world(self, uniform_matrix):
        self._matrix = uniform_matrix

    @pytest.mark.parametrize(
        "factory",
        [
            lambda m: BeaconSearch(n_beacons=6, maintenance=m),
            lambda m: MeridianSearch(maintenance=m),
        ],
    )
    def test_incremental_totals_within_tolerance(self, factory):
        eager = self._run(factory, "eager")
        for discipline in ("coalesce:3", "lazy"):
            deferred = self._run(factory, discipline)
            # Deferred application sees slightly different membership
            # sizes (and nets out intra-window churn), but the per-node
            # work is the same: declared tolerance is 40%.
            assert deferred <= eager * 1.4
            assert deferred >= eager * 0.3

    @pytest.mark.parametrize(
        "algorithm_class", [KargerRuhlSearch, TapestrySearch]
    )
    def test_rebuild_coalescing_saves_a_window_factor(self, algorithm_class):
        eager = self._run(lambda m: algorithm_class(maintenance=m), "eager")
        coalesced = self._run(
            lambda m: algorithm_class(maintenance=m), "coalesce:3"
        )
        # 6 events -> 6 rebuilds eager, 2 coalesced: ~3x fewer probes.
        assert coalesced < eager / 2


class TestStaleScoring:
    def test_departed_found_scores_as_miss(self):
        matrix = np.array(
            [
                [0.0, 1.0, 2.0, 9.0],
                [1.0, 0.0, 3.0, 9.0],
                [2.0, 3.0, 0.0, 9.0],
                [9.0, 9.0, 9.0, 0.0],
            ]
        )
        host_cluster = np.zeros(4, dtype=int)
        # Epoch 1: node 1 has left; a stale index returned it anyway.
        memberships = [np.array([1, 2]), np.array([2])]
        exact, cluster = score_epochs(
            matrix,
            memberships,
            np.array([0, 1]),
            np.array([0, 0]),
            np.array([1, 1]),
            host_cluster=host_cluster,
        )
        assert exact.tolist() == [True, False]
        assert cluster.tolist() == [True, False]


class TestMeridianRingRepair:
    def _drained(self, uniform_matrix, ring_repair):
        oracle = MatrixOracle(uniform_matrix)
        algorithm = MeridianSearch(ring_repair=ring_repair)
        algorithm.build(oracle, np.arange(100), seed=7)
        # Mass departure: 70 of 100 members leave in waves.
        algorithm.leave(np.arange(0, 30), seed=1)
        algorithm.leave(np.arange(30, 55), seed=2)
        algorithm.leave(np.arange(55, 70), seed=3)
        return algorithm

    def test_repair_restores_ring_occupancy(self, uniform_matrix):
        repaired = self._drained(uniform_matrix, ring_repair=True)
        bare = self._drained(uniform_matrix, ring_repair=False)
        counts = lambda a: [  # noqa: E731
            a._overlay.nodes[int(m)].member_count() for m in a.members
        ]
        assert np.mean(counts(repaired)) > np.mean(counts(bare))

        # Repair pulls underfull nodes back to their per-node floor (half
        # their own peak occupancy, bounded by the live population).  A
        # single exchange round cannot *guarantee* it — replies overlap
        # and ring caps can evict — so near-universal recovery is the
        # contract.
        def at_floor(algorithm):
            n = algorithm.members.size
            ok = []
            for m in algorithm.members:
                node = algorithm._overlay.nodes[int(m)]
                floor = max(1, min(node.peak_occupancy, n - 1) // 2)
                ok.append(node.member_count() >= floor)
            return float(np.mean(ok))

        assert at_floor(repaired) >= 0.9
        # Without repair the drain leaves most nodes under their floor.
        assert at_floor(bare) < 0.5

    def test_repair_is_billed_as_maintenance(self, uniform_matrix):
        repaired = self._drained(uniform_matrix, ring_repair=True)
        bare = self._drained(uniform_matrix, ring_repair=False)
        assert bare.maintenance_probes_total == 0  # eviction is free
        assert repaired.maintenance_probes_total > 0

    def test_repaired_rings_hold_only_live_members(self, uniform_matrix):
        repaired = self._drained(uniform_matrix, ring_repair=True)
        live = set(int(m) for m in repaired.members)
        for node in repaired._overlay.nodes.values():
            assert set(node.all_members()) <= live

    def test_repair_helps_post_drain_accuracy(self, uniform_matrix):
        repaired = self._drained(uniform_matrix, ring_repair=True)
        members = repaired.members
        hits = 0
        for target in range(120, 150):
            result = repaired.query(target, seed=target)
            row = uniform_matrix[target, members]
            hits += uniform_matrix[target, result.found] <= np.median(row)
        assert hits >= 0.7 * 30


class TestMembershipLog:
    def test_reconstruction_matches_snapshots(self):
        rng = np.random.default_rng(3)
        members = np.arange(50)
        log = MembershipLog(members)
        snapshots = [members.copy()]
        for _ in range(40):
            leavers = rng.choice(members, size=rng.integers(0, 4), replace=False)
            members = members[~np.isin(members, leavers)]
            pool = np.setdiff1d(np.arange(120), members)
            joiners = np.sort(
                rng.choice(pool, size=rng.integers(0, 4), replace=False)
            )
            members = np.concatenate([members, joiners])
            log.append_event(joiners, leavers)
            snapshots.append(members.copy())
        assert log.n_epochs == len(snapshots)
        for epoch in (0, 7, 23, len(snapshots) - 1):
            assert (log.membership(epoch) == snapshots[epoch]).all()
        walked = list(log.walk(range(len(snapshots))))
        for got, want in zip(walked, snapshots):
            assert (got == want).all()

    def test_walk_requires_sorted_epochs(self):
        log = MembershipLog(np.arange(5))
        log.append_event([5], [])
        with pytest.raises(DataError):
            list(log.walk([1, 0]))
        with pytest.raises(DataError):
            list(log.walk([2]))
        with pytest.raises(DataError):
            log.membership(2)

    def test_snapshot_cost_is_events_plus_changes(self):
        """Regression for the churn-epoch memory hotspot: recording an
        event must cost O(changes), not O(|M|).  With 500 events of ~2
        changes each over 10k members, the old per-event array copies
        stored ~5M ids; the diff log must store exactly
        |initial| + total changes."""
        n_members, n_events = 10_000, 500
        log = MembershipLog(np.arange(n_members))
        total_changes = 0
        for event in range(n_events):
            joined = [n_members + event]
            left = [event]
            log.append_event(joined, left)
            total_changes += len(joined) + len(left)
        assert log.stored_entries == n_members + total_changes
        # The forbidden regime: anything proportional to events x |M|.
        assert log.stored_entries < n_events * n_members / 100

    def test_score_epochs_accepts_log_and_list_identically(self):
        rng = np.random.default_rng(9)
        matrix = rng.uniform(1.0, 10.0, size=(40, 40))
        np.fill_diagonal(matrix, 0.0)
        members = np.arange(20)
        log = MembershipLog(members)
        snapshots = [members.copy()]
        for e in range(6):
            members = members[members != e]
            members = np.concatenate([members, np.array([20 + e])])
            log.append_event([20 + e], [e])
            snapshots.append(members.copy())
        epoch_of_query = np.array([0, 1, 1, 3, 5, 6, 6])
        targets = np.array([30, 31, 32, 33, 34, 35, 36])
        found = np.array([5, 6, 0, 21, 22, 23, 2])
        from_list = score_epochs(matrix, snapshots, epoch_of_query, targets, found)
        from_log = score_epochs(matrix, log, epoch_of_query, targets, found)
        assert (from_list[0] == from_log[0]).all()
        assert (from_list[1] == from_log[1]).all()


class TestServiceMode:
    @pytest.fixture(scope="class")
    def service_scenario(self):
        return get_scenario("service-mode-restarts").with_(
            topology=SMALL,
            sampling=SamplingSpec(n_targets=10),
            phases=tuple(
                ServicePhase(p.name, p.churn, n_queries=20)
                for p in get_scenario("service-mode-restarts").phases
            ),
        )

    def test_one_record_per_phase(self, service_scenario):
        result = QueryEngine().run_scenario(
            service_scenario, lambda: BeaconSearch(n_beacons=5)
        )
        assert [r.phase for r in result.records] == ["steady", "surge", "drain"]
        for record in result.records:
            assert record.n_queries == 20
            assert record.scheme == "beaconing"

    def test_warm_restart_carries_membership_across_phases(
        self, service_scenario
    ):
        records = QueryEngine().run_scenario(
            service_scenario, lambda: BeaconSearch(n_beacons=5)
        ).records
        # The surge phase grows the population the steady phase left;
        # the drain phase shrinks what the surge built.
        assert records[1].membership_size[-1] > records[0].membership_size[-1]
        assert records[2].membership_size[-1] < records[1].membership_size[-1]
        # Phase epochs are global into one shared log: later phases score
        # against memberships the earlier phases produced.
        assert records[0].exact_rate >= 0.0

    def test_no_rebuild_between_phases(self, service_scenario):
        """Warm restarts: the index survives phase boundaries."""
        algorithm = BeaconSearch(n_beacons=5)
        world = build_clustered_oracle(service_scenario.topology, seed=3)
        QueryEngine().run_service_trial(
            world,
            algorithm,
            service_scenario.phases,
            sampling=service_scenario.sampling,
            seed=3,
        )
        assert algorithm.rebuild_count == 0

    def test_service_trial_is_deterministic(self, service_scenario):
        run = lambda: QueryEngine().run_scenario(  # noqa: E731
            service_scenario, lambda: RandomProbeSearch(budget=8)
        )
        a, b = run(), run()
        for ra, rb in zip(a.records, b.records):
            assert (ra.targets == rb.targets).all()
            assert (ra.found == rb.found).all()
            assert (ra.membership_size == rb.membership_size).all()

    def test_run_trial_rejects_service_protocol(self, service_scenario):
        with pytest.raises(ConfigurationError, match="per phase"):
            QueryEngine().run_trial(
                service_scenario, lambda: RandomProbeSearch(), 1
            )

    def test_compare_rejects_service_protocol(self, service_scenario):
        with pytest.raises(ConfigurationError, match="service"):
            QueryEngine().compare(service_scenario, [RandomProbeSearch])

    def test_service_scenario_validation(self):
        with pytest.raises(ConfigurationError, match="phase"):
            Scenario(name="bad-service", topology=SMALL, protocol="service")
        with pytest.raises(ConfigurationError, match="phases"):
            Scenario(
                name="bad-static-phases",
                topology=SMALL,
                protocol="sampled",
                phases=(ServicePhase("p", ChurnSpec()),),
            )
        with pytest.raises(ConfigurationError):
            ServicePhase("", ChurnSpec())
        with pytest.raises(ConfigurationError):
            ServicePhase("p", ChurnSpec(), n_queries=0)


class TestMaintenanceLedger:
    """Every maintenance probe has an exact cause: sum(bills) + background
    equals ``maintenance_probes_total`` at any flush boundary, under every
    discipline."""

    def test_eager_bills_each_event_on_its_own_id(self, oracle):
        algorithm = BeaconSearch(n_beacons=6, maintenance="eager")
        algorithm.build(oracle, np.arange(80), seed=7)
        spent_join = algorithm.join(np.arange(80, 90), seed=1)
        spent_leave = algorithm.leave(np.arange(0, 5), seed=2)
        bills = algorithm.maintenance_by_event
        assert bills.tolist() == [spent_join, spent_leave]
        assert algorithm.maintenance_background_probes == 0
        assert bills.sum() == algorithm.maintenance_probes_total

    def test_empty_events_allocate_no_ids(self, oracle):
        algorithm = BeaconSearch(n_beacons=6, maintenance="eager")
        algorithm.build(oracle, np.arange(80), seed=7)
        algorithm.join(np.array([], dtype=int), seed=1)
        algorithm.leave(np.array([], dtype=int), seed=2)
        assert algorithm.maintenance_by_event.size == 0

    def test_lazy_flush_spreads_bill_over_buffered_events(self, oracle):
        algorithm = KargerRuhlSearch(maintenance="lazy")
        algorithm.build(oracle, np.arange(60), seed=7)
        algorithm.join([60, 61], seed=1)
        algorithm.leave([0], seed=2)
        algorithm.join([62], seed=3)
        assert algorithm.maintenance_by_event.tolist() == [0, 0, 0]
        algorithm.query(150, seed=4)  # lazy pays here
        bills = algorithm.maintenance_by_event
        assert bills.size == 3
        assert (bills > 0).all()
        # The deterministic floor split: shares differ by at most one,
        # with the remainder on the earliest ids.
        assert bills.max() - bills.min() <= 1
        assert np.all(np.diff(bills) <= 0)
        assert bills.sum() == algorithm.maintenance_probes_total

    def test_ledger_invariant_across_disciplines(self, oracle):
        for discipline in ("eager", "coalesce:3", "lazy", "lazy-partial"):
            algorithm = TapestrySearch(maintenance=discipline)
            algorithm.build(oracle, np.arange(60), seed=7)
            for i, (kind, ids) in enumerate(
                [("join", [60, 61]), ("leave", [0, 1]), ("join", [62])]
            ):
                getattr(algorithm, kind)(ids, seed=10 + i)
            algorithm.query(150, seed=20)
            algorithm.flush_maintenance(seed=21)
            bills = algorithm.maintenance_by_event
            assert bills.size == 3, discipline
            assert (
                bills.sum() + algorithm.maintenance_background_probes
                == algorithm.maintenance_probes_total
            ), discipline

    def test_departure_triggered_repair_bills_the_event(self, uniform_matrix):
        """Repair run from a leave has a membership cause: its probes land
        on the departure event's own bill, not on background."""
        algorithm = MeridianSearch(ring_repair=True)
        algorithm.build(MatrixOracle(uniform_matrix), np.arange(100), seed=7)
        algorithm.leave(np.arange(0, 30), seed=1)
        assert algorithm.maintenance_probes_total > 0
        assert algorithm.maintenance_background_probes == 0
        assert (
            algorithm.maintenance_by_event.sum()
            == algorithm.maintenance_probes_total
        )

    def test_periodic_repair_bills_the_background_bucket(self, uniform_matrix):
        """A periodic pass (the daemon's repair timer) has no membership
        cause: its probes accrue on the ledger's background bucket."""
        algorithm = MeridianSearch(ring_repair=False)
        algorithm.build(MatrixOracle(uniform_matrix), np.arange(100), seed=7)
        algorithm.leave(np.arange(0, 30), seed=1)  # eviction only, free
        assert algorithm.maintenance_probes_total == 0
        _, spent = algorithm.repair_rings(seed=2)
        assert spent > 0
        assert algorithm.maintenance_background_probes == spent
        assert algorithm.maintenance_by_event.sum() == 0
        assert algorithm.maintenance_probes_total == spent

    def test_build_resets_ledger(self, oracle):
        algorithm = BeaconSearch(n_beacons=6, maintenance="eager")
        algorithm.build(oracle, np.arange(80), seed=7)
        algorithm.join(np.arange(80, 90), seed=1)
        algorithm.build(oracle, np.arange(80), seed=7)
        assert algorithm.maintenance_by_event.size == 0
        assert algorithm.maintenance_background_probes == 0

    def test_charge_spread_floor_split_unit(self):
        from repro.algorithms.base import MaintenanceLedger

        ledger = MaintenanceLedger()
        ids = [ledger.new_event() for _ in range(3)]
        ledger.charge_spread(ids, 10)
        assert ledger.bills().tolist() == [4, 3, 3]
        ledger.charge_spread([], 5)  # no cause on the books -> background
        assert ledger.background == 5
        assert ledger.total == 15


class TestPartialFreshness:
    """``lazy-partial`` answers must be bit-identical to ``lazy`` while
    paying a fraction of the maintenance probes on touch-sparse reads."""

    EVENTS = [
        ("join", np.arange(120, 125)),
        ("leave", np.arange(0, 5)),
        ("join", np.arange(125, 130)),
        ("leave", np.arange(5, 10)),
    ]

    def _run(self, oracle, factory, discipline):
        algorithm = factory(discipline)
        algorithm.build(oracle, np.arange(120), seed=7)
        answers = []
        seed = 100
        for kind, ids in self.EVENTS:
            getattr(algorithm, kind)(ids, seed=seed)
            seed += 1
            for q in range(2):
                result = algorithm.query(150 + q, seed=seed)
                seed += 1
                answers.append(
                    (result.found, result.found_latency_ms, result.probes)
                )
        # Drain what partial left pending, then one fully-flushed query:
        # the two disciplines must converge on the identical index.
        algorithm.flush_maintenance(seed=seed)
        result = algorithm.query(155, seed=seed + 1)
        answers.append((result.found, result.found_latency_ms, result.probes))
        return algorithm, answers

    @pytest.mark.parametrize(
        "factory",
        [
            lambda m: KargerRuhlSearch(maintenance=m),
            lambda m: TapestrySearch(maintenance=m),
        ],
        ids=["karger-ruhl", "tapestry"],
    )
    def test_partial_is_bit_identical_and_far_cheaper(self, oracle, factory):
        full, full_answers = self._run(oracle, factory, "lazy")
        partial, partial_answers = self._run(oracle, factory, "lazy-partial")
        assert full_answers == partial_answers
        assert full.rebuild_count > 0
        assert partial.rebuild_count == 0
        assert (
            partial.maintenance_probes_total
            < full.maintenance_probes_total / 3
        )
        # Both ledgers bill the same four events, exactly.
        assert partial.maintenance_by_event.size == len(self.EVENTS)
        assert (
            partial.maintenance_by_event.sum()
            == partial.maintenance_probes_total
        )

    def test_non_supporting_scheme_falls_back_to_full_flush(self, oracle):
        """A scheme without ``supports_partial_flush`` under
        ``lazy-partial`` behaves exactly like ``lazy``."""
        lazy, lazy_answers = self._run(
            oracle, lambda m: BeaconSearch(n_beacons=6, maintenance=m), "lazy"
        )
        fallback, fallback_answers = self._run(
            oracle,
            lambda m: BeaconSearch(n_beacons=6, maintenance=m),
            "lazy-partial",
        )
        assert lazy_answers == fallback_answers
        assert (
            lazy.maintenance_probes_total == fallback.maintenance_probes_total
        )
        assert not fallback.has_pending_maintenance

    def test_partial_flush_refreshes_only_touched_regions(self, oracle):
        algorithm = KargerRuhlSearch(maintenance="lazy-partial")
        algorithm.build(oracle, np.arange(60), seed=7)
        algorithm.join([60, 61], seed=1)
        touched = [3, 4, 5]
        spent = algorithm.partial_flush(touched)
        assert spent > 0
        # Touched regions are fresh; a second partial flush is free.
        assert algorithm.partial_flush(touched) == 0
        # Untouched regions still pend: the buffer has not drained.
        assert algorithm.has_pending_maintenance
        assert algorithm.maintenance_probes_total == spent
        assert algorithm.maintenance_by_event.sum() == spent

    def test_partial_flush_falls_back_to_full_flush_outside_partial_mode(
        self, oracle
    ):
        algorithm = KargerRuhlSearch(maintenance="lazy")
        algorithm.build(oracle, np.arange(60), seed=7)
        algorithm.join([60, 61], seed=1)
        spent = algorithm.partial_flush([3], seed=2)
        assert spent == 62 * 62  # one full counted rebuild
        assert not algorithm.has_pending_maintenance
        assert algorithm.partial_flush([3], seed=3) == 0

    def test_partial_mode_answers_see_live_membership(self, oracle):
        """Under partial freshness queries answer from the live members —
        unlike coalesce, which serves the stale indexed view."""
        algorithm = TapestrySearch(maintenance="lazy-partial")
        algorithm.build(oracle, np.arange(60), seed=7)
        algorithm.leave(np.arange(0, 30), seed=1)
        for q in range(5):
            result = algorithm.query(150, seed=2 + q)
            assert result.found >= 30


class TestEventsPerQuery:
    def test_events_per_query_validation(self):
        with pytest.raises(ConfigurationError):
            ChurnSpec(events_per_query=0)

    def test_registered_lazy_index_scenario_runs(self):
        scenario = get_scenario("churn-lazy-index").with_(
            topology=SMALL, n_queries=12, sampling=SamplingSpec(n_targets=10)
        )
        record = QueryEngine().run_trial(
            scenario, lambda: RandomProbeSearch(budget=8), 7
        )
        assert record.n_queries == 12
        # 8 event steps per query: far more events than queries.
        assert record.n_churn_events > record.n_queries

    def test_lazy_beats_eager_on_sparse_queries(self):
        """The scenario's reason to exist: under 8 events/query, lazy and
        coalesce-8 apply a fraction of eager's rebuilds."""
        scenario = get_scenario("churn-lazy-index").with_(
            topology=SMALL, n_queries=12, sampling=SamplingSpec(n_targets=10)
        )
        totals = {}
        for discipline in ("eager", "lazy"):
            record = QueryEngine().run_trial(
                scenario,
                lambda: KargerRuhlSearch(maintenance=discipline),
                7,
            )
            totals[discipline] = record.total_maintenance_probes
        assert totals["lazy"] < totals["eager"] / 3
