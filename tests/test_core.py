"""Tests for the core package: detection, assumptions, bounds, finder."""

import numpy as np
import pytest

from repro.core.assumptions import (
    doubling_constant,
    growth_ratios,
    intrinsic_dimension,
)
from repro.core.clustering import (
    ClusteringConditionConfig,
    condition_summary,
    detect_clusters,
)
from repro.core.finder import NearestPeerFinder
from repro.core.lowerbound import (
    descent_probes,
    expected_probes_with_replacement,
    expected_probes_without_replacement,
    phase_transition_probes,
    success_probability_with_budget,
)
from repro.core.opportunity import opportunity_cost
from repro.util.errors import ConfigurationError, DataError


class TestDetectClusters:
    def test_recovers_planted_structure(self, clustered_world):
        world = clustered_world
        reports = detect_clusters(world.matrix.values)
        satisfied = [r for r in reports if r.satisfies_condition]
        assert satisfied, "the planted clusters must be detected"
        # The planted world has 6 clusters of 20 end-networks.
        big = [r for r in reports if r.n_end_networks >= 15]
        assert len(big) >= 4

    def test_end_network_grouping(self, clustered_world):
        world = clustered_world
        reports = detect_clusters(world.matrix.values)
        for report in reports:
            for en in report.end_networks:
                for a in en:
                    for b in en:
                        if a != b:
                            assert world.topology.same_end_network(a, b)

    def test_uniform_space_unaffected(self, uniform_matrix):
        reports = detect_clusters(uniform_matrix)
        summary = condition_summary(reports)
        assert summary["peers_affected_fraction"] < 0.2

    def test_rejects_bad_matrix(self):
        with pytest.raises(DataError):
            detect_clusters(np.zeros((2, 3)))

    def test_band_factor_validation(self):
        with pytest.raises(DataError):
            ClusteringConditionConfig(band_factor=0.9)

    def test_expected_probes_scales_with_en_count(self, clustered_world):
        reports = detect_clusters(clustered_world.matrix.values)
        for report in reports:
            assert report.expected_search_probes == pytest.approx(
                (report.n_end_networks + 1) / 2
            )


class TestAssumptions:
    def test_growth_ratio_explodes_under_clustering(
        self, clustered_world, uniform_matrix
    ):
        clustered = growth_ratios(
            clustered_world.matrix.values, [5.0], sample_size=100, seed=0
        )[5.0]
        uniform = growth_ratios(uniform_matrix, [5.0], sample_size=100, seed=0)[5.0]
        assert np.median(clustered) > 3 * np.median(uniform)

    def test_doubling_constant_scales_with_end_networks(self, clustered_world):
        constant = doubling_constant(
            clustered_world.matrix.values, radius_ms=12.0, sample_size=10, seed=1
        )
        # The cluster has 20 end-networks; half-radius balls cover ~one each.
        assert constant >= 8

    def test_doubling_constant_small_in_uniform_space(self, uniform_matrix):
        constant = doubling_constant(uniform_matrix, radius_ms=12.0, sample_size=10, seed=1)
        assert constant <= 16

    def test_intrinsic_dimension_reasonable_in_2d(self, uniform_matrix):
        dim = intrinsic_dimension(uniform_matrix, 5.0, 20.0, seed=0)
        assert 1.0 < dim < 3.5

    def test_intrinsic_dimension_needs_valid_range(self, uniform_matrix):
        with pytest.raises(DataError):
            intrinsic_dimension(uniform_matrix, 10.0, 5.0)


class TestLowerBound:
    def test_formulas(self):
        assert expected_probes_without_replacement(9) == 5.0
        assert expected_probes_with_replacement(9) == 9.0

    def test_monte_carlo_without_replacement(self):
        rng = np.random.default_rng(0)
        n = 25
        trials = []
        for _ in range(4000):
            order = rng.permutation(n)
            trials.append(int(np.flatnonzero(order == 0)[0]) + 1)
        assert np.mean(trials) == pytest.approx(
            expected_probes_without_replacement(n), rel=0.05
        )

    def test_monte_carlo_with_replacement(self):
        rng = np.random.default_rng(1)
        n = 25
        trials = rng.geometric(1.0 / n, size=4000)
        assert np.mean(trials) == pytest.approx(
            expected_probes_with_replacement(n), rel=0.1
        )

    def test_phase_transition_dominated_by_cluster_term(self):
        small = phase_transition_probes(5, population=2500)
        large = phase_transition_probes(250, population=2500)
        assert large - small == pytest.approx((250 - 5) / 2.0, rel=0.01)

    def test_descent_probes_logarithmic(self):
        assert descent_probes(2500) < descent_probes(2500**2) <= 2 * descent_probes(2500) + 1e-9

    def test_budget_success_probability(self):
        assert success_probability_with_budget(10, 5) == pytest.approx(0.5)
        assert success_probability_with_budget(10, 20) == 1.0
        with_repl = success_probability_with_budget(10, 5, with_replacement=True)
        assert with_repl < 0.5

    def test_invalid_inputs(self):
        with pytest.raises(DataError):
            expected_probes_without_replacement(0)
        with pytest.raises(DataError):
            success_probability_with_budget(0, 5)


class TestOpportunityCost:
    def test_order_of_magnitude_cost(self):
        found = [10.0] * 10
        true = [0.1] * 10
        cost = opportunity_cost(found, true)
        assert cost.median_latency_ratio == pytest.approx(100.0)
        assert cost.exact_rate == 0.0
        assert cost.estimated_bandwidth_factor == pytest.approx(100.0)

    def test_exact_results(self):
        cost = opportunity_cost([1.0, 2.0], [1.0, 2.0])
        assert cost.exact_rate == 1.0
        assert cost.median_excess_latency_ms == 0.0

    def test_validation(self):
        with pytest.raises(DataError):
            opportunity_cost([1.0], [1.0, 2.0])
        with pytest.raises(DataError):
            opportunity_cost([1.0], [0.0])


class TestNearestPeerFinder:
    @pytest.fixture(scope="class")
    def finder_setup(self, small_internet):
        by_en = {}
        for peer in small_internet.peer_ids:
            by_en.setdefault(small_internet.host(peer).en_id, []).append(peer)
        pair = next(v[:2] for v in by_en.values() if len(v) >= 2)
        finder = NearestPeerFinder(
            small_internet, mechanisms=("registry", "ucl", "prefix"), seed=42
        )
        member, target = pair
        others = [p for p in small_internet.peer_ids[:80] if p != target]
        if member not in others:
            others.append(member)
        finder.join_all(others)
        return finder, member, target

    def test_finds_same_en_mate(self, finder_setup):
        finder, member, target = finder_setup
        result = finder.find(target)
        assert result.found == member
        assert result.latency_ms < 1.0
        assert result.stage in ("registry", "ucl", "prefix")

    def test_true_nearest_agrees(self, finder_setup):
        finder, member, target = finder_setup
        best, latency = finder.true_nearest(target)
        assert best == member

    def test_duplicate_join_rejected(self, finder_setup):
        finder, member, _target = finder_setup
        with pytest.raises(ConfigurationError):
            finder.join(member)

    def test_unknown_mechanism_rejected(self, small_internet):
        with pytest.raises(ConfigurationError):
            NearestPeerFinder(small_internet, mechanisms=("teleport",))

    def test_find_without_members_rejected(self, small_internet):
        finder = NearestPeerFinder(small_internet, mechanisms=("registry",), seed=0)
        with pytest.raises(ConfigurationError):
            finder.find(small_internet.peer_ids[0])
