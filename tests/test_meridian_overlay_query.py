"""Tests for Meridian overlay construction and the closest-node query."""

import numpy as np
import pytest

from repro.meridian.overlay import MeridianConfig, MeridianNode, MeridianOverlay
from repro.meridian.query import closest_node_query
from repro.topology.oracle import CountingOracle, MatrixOracle
from repro.util.errors import ConfigurationError, DataError


def uniform_oracle(uniform_matrix):
    return MatrixOracle(uniform_matrix)


class TestMeridianConfig:
    def test_defaults_match_paper(self):
        config = MeridianConfig()
        assert config.beta == 0.5
        assert config.ring_size == 16

    def test_pool_smaller_than_ring_rejected(self):
        with pytest.raises(ConfigurationError):
            MeridianConfig(ring_size=16, candidate_pool=8)

    def test_bad_selection_rejected(self):
        with pytest.raises(ConfigurationError):
            MeridianConfig(selection="best")

    def test_knowledge_size(self):
        config = MeridianConfig(knowledge_fraction=0.5)
        assert config.knowledge_size(101) == 50
        full = MeridianConfig(knowledge_fraction=None)
        assert full.knowledge_size(101) is None
        absolute = MeridianConfig(knowledge_sample=30)
        assert absolute.knowledge_size(101) == 30


class TestMeridianNode:
    def test_insert_respects_ring_geometry(self):
        node = MeridianNode(0, MeridianConfig())
        node.insert(1, 0.5)
        node.insert(2, 3.0)
        node.insert(3, 100.0)
        assert 1 in node.rings[0]
        assert 2 in node.rings[2]
        assert node.member_count() == 3

    def test_self_insert_rejected(self):
        node = MeridianNode(0, MeridianConfig())
        with pytest.raises(DataError):
            node.insert(0, 1.0)

    def test_members_within_band(self):
        node = MeridianNode(0, MeridianConfig())
        node.insert(1, 1.0)
        node.insert(2, 5.0)
        node.insert(3, 20.0)
        assert set(node.members_within(2.0, 10.0)) == {2}
        assert set(node.members_within(0.0, 100.0)) == {1, 2, 3}


class TestOverlayBuild:
    def test_ring_caps_respected(self, uniform_matrix):
        config = MeridianConfig(ring_size=4, candidate_pool=16)
        overlay = MeridianOverlay.build(
            MatrixOracle(uniform_matrix), np.arange(80), config=config, seed=0
        )
        for node in overlay.nodes.values():
            for ring in node.rings:
                assert len(ring) <= 4

    def test_ring_latencies_are_true(self, uniform_matrix):
        overlay = MeridianOverlay.build(
            MatrixOracle(uniform_matrix), np.arange(40), seed=0
        )
        for node_id, node in list(overlay.nodes.items())[:5]:
            for member, latency in node.all_members().items():
                assert latency == pytest.approx(uniform_matrix[node_id, member])

    def test_too_few_members_rejected(self, uniform_matrix):
        with pytest.raises(DataError):
            MeridianOverlay.build(MatrixOracle(uniform_matrix), [1], seed=0)

    def test_knowledge_fraction_limits_membership(self, uniform_matrix):
        full = MeridianOverlay.build(
            MatrixOracle(uniform_matrix),
            np.arange(100),
            config=MeridianConfig(knowledge_fraction=None, candidate_pool=128),
            seed=0,
        )
        partial = MeridianOverlay.build(
            MatrixOracle(uniform_matrix),
            np.arange(100),
            config=MeridianConfig(knowledge_fraction=0.1, candidate_pool=128),
            seed=0,
        )
        mean_full = np.mean([n.member_count() for n in full.nodes.values()])
        mean_partial = np.mean([n.member_count() for n in partial.nodes.values()])
        assert mean_partial < mean_full


class TestQuery:
    def test_finds_true_nearest_in_benign_space(self, uniform_matrix):
        """With full knowledge in a uniform 2-D world, Meridian should find
        the exact nearest member for most targets."""
        oracle = MatrixOracle(uniform_matrix)
        n = uniform_matrix.shape[0]
        members = np.arange(n - 20)
        overlay = MeridianOverlay.build(
            oracle,
            members,
            config=MeridianConfig(knowledge_fraction=None),
            seed=1,
        )
        hits = 0
        for target in range(n - 20, n):
            result = closest_node_query(overlay, oracle, target, seed=target)
            truth = members[np.argmin(uniform_matrix[target, members])]
            true_best = uniform_matrix[target, members].min()
            hits += uniform_matrix[target, result.found] <= 2.0 * true_best + 1e-9
        assert hits >= 16  # at least 80% within 2x of optimal

    def test_probe_counting(self, uniform_matrix):
        oracle = CountingOracle(MatrixOracle(uniform_matrix))
        members = np.arange(60)
        overlay = MeridianOverlay.build(
            MatrixOracle(uniform_matrix), members, seed=1
        )
        result = closest_node_query(overlay, oracle, 70, seed=3)
        assert result.probe_count == oracle.total_probes
        assert result.probe_count >= 1

    def test_invalid_start_rejected(self, uniform_matrix):
        oracle = MatrixOracle(uniform_matrix)
        overlay = MeridianOverlay.build(oracle, np.arange(30), seed=1)
        with pytest.raises(DataError):
            closest_node_query(overlay, oracle, 40, start=999)

    def test_path_starts_at_start(self, uniform_matrix):
        oracle = MatrixOracle(uniform_matrix)
        overlay = MeridianOverlay.build(oracle, np.arange(30), seed=1)
        result = closest_node_query(overlay, oracle, 40, start=5, seed=1)
        assert result.path[0] == 5
        assert result.hops == len(result.path) - 1

    def test_degrades_under_clustering(self, clustered_world):
        """The paper's core claim: same-EN mates are rarely found when the
        cluster has many end-networks."""
        world = clustered_world
        oracle = world.oracle
        n = world.topology.n_nodes
        members = np.arange(n - 30)
        overlay = MeridianOverlay.build(oracle, members, seed=2)
        exact = 0
        for target in range(n - 30, n):
            result = closest_node_query(overlay, oracle, target, seed=target)
            row = world.matrix.values[target, members]
            exact += row[result.found] <= row.min() + 1e-12
        # 20 end-networks per cluster: success well below certainty.
        assert exact < 25
