"""Tests for the latency-oracle wrappers (counting, noise, protocol)."""

import numpy as np
import pytest

from repro.topology.oracle import (
    CountingOracle,
    LatencyOracle,
    MatrixOracle,
    NoisyOracle,
)
from repro.util.errors import DataError


@pytest.fixture()
def matrix_oracle():
    matrix = np.array(
        [[0.0, 10.0, 20.0], [10.0, 0.0, 30.0], [20.0, 30.0, 0.0]]
    )
    return MatrixOracle(matrix)


class TestMatrixOracle:
    def test_protocol_conformance(self, matrix_oracle):
        assert isinstance(matrix_oracle, LatencyOracle)

    def test_lookup(self, matrix_oracle):
        assert matrix_oracle.latency_ms(0, 1) == 10.0
        assert matrix_oracle.n_nodes == 3

    def test_latencies_from_row(self, matrix_oracle):
        assert matrix_oracle.latencies_from(1).tolist() == [10.0, 0.0, 30.0]

    def test_latencies_from_subset(self, matrix_oracle):
        assert matrix_oracle.latencies_from(1, np.array([2, 0])).tolist() == [
            30.0,
            10.0,
        ]

    def test_latency_block(self, matrix_oracle):
        block = matrix_oracle.latency_block(np.array([0, 2]), np.array([1]))
        assert block.tolist() == [[10.0], [30.0]]

    def test_rejects_non_square(self):
        with pytest.raises(DataError):
            MatrixOracle(np.zeros((2, 3)))


class TestCountingOracle:
    def test_counts_total_and_unique(self, matrix_oracle):
        counting = CountingOracle(matrix_oracle)
        counting.latency_ms(0, 1)
        counting.latency_ms(1, 0)  # same unordered pair
        counting.latency_ms(0, 2)
        assert counting.total_probes == 3
        assert counting.unique_probes == 2

    def test_reset(self, matrix_oracle):
        counting = CountingOracle(matrix_oracle)
        counting.latency_ms(0, 1)
        counting.reset()
        assert counting.total_probes == 0
        assert counting.unique_probes == 0

    def test_passes_values_through(self, matrix_oracle):
        counting = CountingOracle(matrix_oracle)
        assert counting.latency_ms(0, 2) == 20.0

    def test_protocol_conformance(self, matrix_oracle):
        assert isinstance(CountingOracle(matrix_oracle), LatencyOracle)


class TestNoisyOracle:
    def test_noise_centered_on_truth(self, matrix_oracle):
        noisy = NoisyOracle(matrix_oracle, sigma=0.05, seed=0)
        samples = [noisy.latency_ms(0, 1) for _ in range(300)]
        assert np.median(samples) == pytest.approx(10.0, rel=0.05)

    def test_additive_component_one_sided(self, matrix_oracle):
        noisy = NoisyOracle(matrix_oracle, sigma=0.0, additive_ms=1.0, seed=1)
        samples = [noisy.latency_ms(0, 1) for _ in range(100)]
        assert all(s >= 10.0 for s in samples)

    def test_zero_noise_exact(self, matrix_oracle):
        noisy = NoisyOracle(matrix_oracle, sigma=0.0, additive_ms=0.0, seed=2)
        assert noisy.latency_ms(0, 1) == 10.0

    def test_negative_parameters_rejected(self, matrix_oracle):
        with pytest.raises(DataError):
            NoisyOracle(matrix_oracle, sigma=-0.1)
        with pytest.raises(DataError):
            NoisyOracle(matrix_oracle, additive_ms=-1.0)

    def test_deterministic_with_seed(self, matrix_oracle):
        a = NoisyOracle(matrix_oracle, sigma=0.1, seed=5)
        b = NoisyOracle(matrix_oracle, sigma=0.1, seed=5)
        assert a.latency_ms(0, 1) == b.latency_ms(0, 1)
