"""Tests for latency matrices, the synthetic core and the world builder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.latency.builder import build_clustered_oracle
from repro.latency.matrix import LatencyMatrix
from repro.latency.synthetic import (
    SyntheticCoreConfig,
    sample_hub_latencies,
    synthetic_core_matrix,
)
from repro.topology.clustered import ClusteredConfig
from repro.util.errors import DataError


class TestLatencyMatrix:
    def test_validation_rejects_asymmetric(self):
        arr = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(DataError):
            LatencyMatrix.from_array(arr)

    def test_validation_rejects_negative(self):
        arr = np.array([[0.0, -1.0], [-1.0, 0.0]])
        with pytest.raises(DataError):
            LatencyMatrix.from_array(arr)

    def test_validation_rejects_nonzero_diagonal(self):
        arr = np.array([[1.0, 2.0], [2.0, 0.0]])
        with pytest.raises(DataError):
            LatencyMatrix.from_array(arr)

    def test_validation_rejects_non_square(self):
        with pytest.raises(DataError):
            LatencyMatrix.from_array(np.zeros((2, 3)))

    def test_median_and_offdiag(self):
        arr = np.array([[0, 1, 3], [1, 0, 5], [3, 5, 0]], dtype=float)
        matrix = LatencyMatrix.from_array(arr)
        assert sorted(matrix.off_diagonal().tolist()) == [1, 3, 5]
        assert matrix.median_ms == 3

    def test_submatrix(self):
        arr = np.array([[0, 1, 3], [1, 0, 5], [3, 5, 0]], dtype=float)
        sub = LatencyMatrix.from_array(arr).submatrix(np.array([0, 2]))
        assert sub.values.tolist() == [[0, 3], [3, 0]]

    def test_save_load_roundtrip(self, tmp_path):
        arr = np.array([[0, 2.5], [2.5, 0]])
        path = tmp_path / "m.npz"
        LatencyMatrix.from_array(arr).save(path)
        loaded = LatencyMatrix.load(path)
        assert np.allclose(loaded.values, arr)

    def test_load_wrong_archive(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, other=np.zeros(3))
        with pytest.raises(DataError):
            LatencyMatrix.load(path)

    def test_triangle_violations_zero_for_euclidean(self, uniform_matrix):
        matrix = LatencyMatrix.from_array(uniform_matrix, check_symmetry=False)
        assert matrix.triangle_violation_fraction() == pytest.approx(0.0, abs=1e-9)


class TestSyntheticCore:
    def test_median_calibrated(self):
        core = synthetic_core_matrix(300, seed=3)
        matrix = LatencyMatrix.from_array(core, check_symmetry=False)
        assert matrix.median_ms == pytest.approx(65.0, rel=0.05)

    def test_symmetric_zero_diag(self):
        core = synthetic_core_matrix(100, seed=1)
        assert np.allclose(core, core.T)
        assert np.allclose(np.diag(core), 0.0)

    def test_metro_twins_exist(self):
        """Some node pairs must be near-co-located (twin-cluster source)."""
        core = synthetic_core_matrix(400, seed=2)
        iu = np.triu_indices(400, k=1)
        close_fraction = np.mean(core[iu] < 15.0)
        assert close_fraction > 0.01

    def test_triangle_violations_present_but_rare(self):
        core = synthetic_core_matrix(200, seed=4)
        matrix = LatencyMatrix.from_array(core, check_symmetry=False)
        violations = matrix.triangle_violation_fraction(samples=4000)
        assert 0.0 < violations < 0.25

    def test_custom_median(self):
        config = SyntheticCoreConfig(n_nodes=150, median_ms=30.0)
        core = synthetic_core_matrix(150, seed=5, config=config)
        matrix = LatencyMatrix.from_array(core, check_symmetry=False)
        assert matrix.median_ms == pytest.approx(30.0, rel=0.05)

    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(min_value=8, max_value=60))
    def test_all_offdiagonal_positive(self, n):
        core = synthetic_core_matrix(n, seed=6)
        iu = np.triu_indices(n, k=1)
        assert np.all(core[iu] > 0)

    def test_sample_hub_latencies_subsets(self):
        core = synthetic_core_matrix(50, seed=7)
        hubs = sample_hub_latencies(core, 10, seed=8)
        assert hubs.shape == (10, 10)
        assert np.allclose(np.diag(hubs), 0.0)


class TestBuilder:
    def test_world_consistency(self, clustered_world):
        world = clustered_world
        assert world.oracle.n_nodes == world.topology.n_nodes
        a, b = 0, world.topology.n_nodes - 1
        assert world.oracle.latency_ms(a, b) == pytest.approx(
            world.topology.latency_ms(a, b)
        )

    def test_deterministic_given_seed(self):
        config = ClusteredConfig(n_clusters=3, end_networks_per_cluster=5)
        w1 = build_clustered_oracle(config, seed=42)
        w2 = build_clustered_oracle(config, seed=42)
        assert np.allclose(w1.matrix.values, w2.matrix.values)

    def test_different_seeds_differ(self):
        config = ClusteredConfig(n_clusters=3, end_networks_per_cluster=5)
        w1 = build_clustered_oracle(config, seed=1)
        w2 = build_clustered_oracle(config, seed=2)
        assert not np.allclose(w1.matrix.values, w2.matrix.values)
