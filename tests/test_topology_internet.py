"""Tests for the router-level synthetic Internet."""

import networkx as nx
import numpy as np
import pytest

from repro.topology.elements import RouterKind
from repro.topology.graph import Route
from repro.topology.ip import ip_prefix


class TestGenerationInvariants:
    def test_core_graph_connected(self, small_internet):
        assert nx.is_connected(small_internet.core_graph)

    def test_every_host_chain_ends_at_pop_router(self, small_internet):
        for host in small_internet.hosts:
            chain = small_internet.upward_chain(host.host_id)
            last_router = small_internet.router(chain[-1][0])
            assert last_router.kind == RouterKind.POP
            assert last_router.pop_id == host.pop_id

    def test_chain_cumulative_monotone(self, small_internet):
        for host in small_internet.hosts[:200]:
            chain = small_internet.upward_chain(host.host_id)
            cums = [c for _, c in chain]
            assert all(b > a for a, b in zip(cums, cums[1:]))

    def test_hub_latency_matches_en_record(self, small_internet):
        for host in small_internet.hosts[:100]:
            en = small_internet.end_network(host.en_id)
            hub = small_internet.hub_latency_ms(host.host_id)
            # Host hub latency = EN hub latency plus any internal hops.
            assert hub >= en.hub_latency_ms - 1e-9
            assert hub <= en.hub_latency_ms + 0.5

    def test_en_prefixes_are_24s_and_hosts_inside(self, small_internet):
        for host in small_internet.hosts[:200]:
            en = small_internet.end_network(host.en_id)
            assert en.prefix_length == 24
            assert ip_prefix(host.ip, 24) == ip_prefix(en.prefix_base, 24)

    def test_populations_present(self, small_internet):
        assert len(small_internet.peer_ids) > 50
        assert len(small_internet.dns_server_ids) > 10
        assert len(small_internet.vantage_ids) == 7
        assert small_internet.measurement_host_id is not None

    def test_multi_site_orgs_exist(self, small_internet):
        domains = {}
        for en in small_internet.end_networks:
            if en.is_home_network:
                continue
            domains.setdefault(en.organization, set()).add(en.pop_id)
        multi = [org for org, pops in domains.items() if len(pops) > 1]
        assert multi, "expected some organizations with sites at multiple PoPs"


class TestRouting:
    def test_route_symmetric_latency(self, small_internet):
        peers = small_internet.peer_ids
        rng = np.random.default_rng(0)
        for _ in range(30):
            a, b = rng.choice(peers, size=2, replace=False)
            fwd = small_internet.route(int(a), int(b))
            rev = small_internet.route(int(b), int(a))
            assert fwd.latency_ms == pytest.approx(rev.latency_ms)
            assert fwd.routers == tuple(reversed(rev.routers))

    def test_route_to_self_empty(self, small_internet):
        peer = small_internet.peer_ids[0]
        route = small_internet.route(peer, peer)
        assert route.latency_ms == 0.0
        assert route.routers == ()

    def test_cumulative_parallel_to_routers(self, small_internet):
        peers = small_internet.peer_ids
        route = small_internet.route(peers[0], peers[-1])
        assert len(route.cumulative_ms) == len(route.routers)
        assert all(b > a for a, b in zip(route.cumulative_ms, route.cumulative_ms[1:]))
        assert route.cumulative_ms[-1] < route.latency_ms

    def test_same_en_pair_is_sub_millisecond(self, small_internet):
        by_en = {}
        for peer in small_internet.peer_ids:
            by_en.setdefault(small_internet.host(peer).en_id, []).append(peer)
        pairs = [v for v in by_en.values() if len(v) >= 2]
        assert pairs, "fixture should have multi-peer end-networks"
        a, b = pairs[0][:2]
        assert small_internet.route(a, b).latency_ms < 1.0

    def test_same_pop_pair_is_hub_scale(self, small_internet):
        by_pop = {}
        for peer in small_internet.peer_ids:
            by_pop.setdefault(small_internet.host(peer).pop_id, []).append(peer)
        candidates = [v for v in by_pop.values() if len(v) >= 2]
        found = False
        for group in candidates:
            for a in group:
                for b in group:
                    if a < b and not small_internet.same_end_network(a, b):
                        latency = small_internet.route(a, b).latency_ms
                        assert 1.0 < latency < 40.0
                        found = True
        assert found

    def test_cross_pop_latency_exceeds_intra(self, small_internet):
        peers = small_internet.peer_ids
        cross = [
            (a, b)
            for a in peers[:5]
            for b in peers[-5:]
            if small_internet.host(a).pop_id != small_internet.host(b).pop_id
        ]
        assert cross
        for a, b in cross[:5]:
            assert small_internet.route(a, b).latency_ms > 5.0

    def test_triangle_inequality_through_hub(self, small_internet):
        """Two same-PoP hosts are never farther apart than via their hubs."""
        by_pop = {}
        for peer in small_internet.peer_ids:
            by_pop.setdefault(small_internet.host(peer).pop_id, []).append(peer)
        group = max(by_pop.values(), key=len)
        for a in group[:4]:
            for b in group[:4]:
                if a >= b:
                    continue
                direct = small_internet.route(a, b).latency_ms
                via_hub = small_internet.hub_latency_ms(a) + small_internet.hub_latency_ms(b)
                assert direct <= via_hub + 0.3  # intra-PoP links allowance


class TestRouterAnchors:
    def test_pop_router_anchors_to_self(self, small_internet):
        pop = small_internet.pops[0]
        anchor = small_internet.router_anchor(pop.router_ids[0])
        assert anchor == (pop.router_ids[0], 0.0)

    def test_aggregation_router_anchor(self, small_internet):
        agg_ids = [
            r.router_id
            for r in small_internet.routers
            if r.kind == RouterKind.AGGREGATION
        ]
        anchor = small_internet.router_anchor(agg_ids[0])
        assert anchor is not None
        root, distance = anchor
        assert small_internet.router(root).kind == RouterKind.POP
        assert distance > 0

    def test_gateway_anchor(self, small_internet):
        campus = [en for en in small_internet.end_networks if not en.is_home_network]
        gw = campus[0].attachment_router_ids[0]
        anchor = small_internet.router_anchor(gw)
        assert anchor is not None


class TestHopLength:
    def test_hop_length_counts_links(self):
        route = Route(routers=(1, 2, 3), latency_ms=5.0)
        assert route.hop_length == 4
