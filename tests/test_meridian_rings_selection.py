"""Tests for Meridian ring geometry and diversity selection."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.meridian.rings import RingStructure
from repro.meridian.selection import select_hypervolume, select_maxmin
from repro.util.errors import DataError


class TestRingStructure:
    def test_inner_ring(self):
        rings = RingStructure(alpha_ms=1.0, base=2.0, n_rings=9)
        assert rings.ring_index(0.0) == 0
        assert rings.ring_index(1.0) == 0

    def test_known_boundaries(self):
        rings = RingStructure()
        assert rings.ring_index(1.5) == 1
        assert rings.ring_index(2.0) == 1
        assert rings.ring_index(2.01) == 2
        assert rings.ring_index(16.0) == 4

    def test_outermost_absorbs_everything(self):
        rings = RingStructure(n_rings=5)
        assert rings.ring_index(1e9) == 5

    def test_bounds_inverse_of_index(self):
        rings = RingStructure()
        for index in range(rings.ring_count):
            inner, outer = rings.ring_bounds(index)
            if math.isinf(outer):
                assert rings.ring_index(inner * 2) == index
            else:
                midpoint = (inner + outer) / 2
                assert rings.ring_index(midpoint) == index

    @given(st.floats(min_value=1e-6, max_value=1e5))
    def test_index_consistent_with_bounds(self, latency):
        rings = RingStructure()
        index = rings.ring_index(latency)
        inner, outer = rings.ring_bounds(index)
        assert inner <= latency or index == 0
        assert latency <= outer


def euclidean_pairwise(points):
    arr = np.asarray(points, dtype=float)
    diff = arr[:, None, :] - arr[None, :, :]
    return np.sqrt((diff**2).sum(axis=2))


class TestSelectMaxmin:
    def test_selects_k(self):
        rng = np.random.default_rng(0)
        pairwise = euclidean_pairwise(rng.uniform(0, 10, size=(20, 2)))
        chosen = select_maxmin(pairwise, 5)
        assert len(chosen) == 5
        assert len(set(chosen)) == 5

    def test_k_geq_n_returns_all(self):
        pairwise = euclidean_pairwise([[0, 0], [1, 1]])
        assert select_maxmin(pairwise, 10) == [0, 1]

    def test_prefers_spread_points(self):
        # Three tight points at the origin plus two far points; picking 3
        # must include both far points.
        points = [[0, 0], [0.1, 0], [0, 0.1], [100, 0], [0, 100]]
        chosen = select_maxmin(euclidean_pairwise(points), 3)
        assert 3 in chosen and 4 in chosen

    def test_invalid_inputs(self):
        with pytest.raises(DataError):
            select_maxmin(np.zeros((2, 3)), 1)
        with pytest.raises(DataError):
            select_maxmin(np.zeros((2, 2)), 0)


class TestSelectHypervolume:
    def test_selects_k_distinct(self):
        rng = np.random.default_rng(1)
        pairwise = euclidean_pairwise(rng.uniform(0, 10, size=(12, 2)))
        chosen = select_hypervolume(pairwise, 4)
        assert len(chosen) == 4
        assert len(set(chosen)) == 4

    def test_seeds_with_farthest_pair(self):
        points = [[0, 0], [1, 0], [50, 0], [0.5, 0.5]]
        chosen = select_hypervolume(euclidean_pairwise(points), 2)
        assert set(chosen) == {0, 2}

    def test_degenerate_colinear_points_no_crash(self):
        points = [[float(i), 0.0] for i in range(6)]
        chosen = select_hypervolume(euclidean_pairwise(points), 3)
        assert len(chosen) == 3

    def test_agrees_with_maxmin_on_clear_geometry(self):
        # Four corners of a square plus center clutter: both selectors
        # should choose the corners.
        points = [[0, 0], [10, 0], [0, 10], [10, 10], [5, 5], [5.1, 5.0]]
        pairwise = euclidean_pairwise(points)
        assert set(select_maxmin(pairwise, 4)) == {0, 1, 2, 3}
        assert set(select_hypervolume(pairwise, 4)) == {0, 1, 2, 3}


class TestClusteringBlindness:
    """The paper's point: under the clustering condition the selectors
    cannot do better than chance because all candidates look alike."""

    def test_flat_distances_make_selection_arbitrary(self):
        n = 20
        pairwise = np.full((n, n), 10.0)
        np.fill_diagonal(pairwise, 0.0)
        chosen = select_maxmin(pairwise, 8)
        assert len(chosen) == 8  # it works, but no choice is "better"
