"""Tests for the observability layer: spans, metrics, export, CLI.

The load-bearing property is **passivity**: turning ``DaemonSpec.trace``
on must be bit-identical — answers, per-query timelines, fault bills and
maintenance ledgers — for every scheme, both steppers and any shard
count, because the tracer reads only the event loop's clock and counters
the driver already keeps (zero rng draws; statically pinned by the
``obs-passivity`` lint rule, pinned at runtime here).

The second property is **exact tiling**: within one query the non-root
spans partition ``[arrival, finish]`` — every simulated millisecond of
time-to-answer is attributed to exactly one phase — which is what makes
the ``repro-trace`` critical-path view an accounting identity rather
than an approximation.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.algorithms import (
    BeaconSearch,
    KargerRuhlSearch,
    MeridianSearch,
    PicSearch,
    RandomProbeSearch,
    TapestrySearch,
    TiersSearch,
)
from repro.harness import DaemonSpec, FaultSpec, QueryEngine, SamplingSpec
from repro.harness.scenario import TraceSpec
from repro.latency.builder import build_clustered_oracle
from repro.obs.cli import main as trace_main
from repro.obs.cli import render_summary, render_timeline, slowest_query
from repro.obs.export import (
    TraceDump,
    check_nesting,
    dump_trace_jsonl,
    load_trace_jsonl,
    validate_trace,
)
from repro.obs.metrics import (
    PROBE_COUNT_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    populate_span_histograms,
    sample_times,
)
from repro.obs.trace import Span, Tracer, merge_span_streams, sort_spans, spans_by_query
from repro.topology.clustered import ClusteredConfig
from repro.util.errors import ConfigurationError, DataError, SimulationError

SMALL = ClusteredConfig(n_clusters=6, end_networks_per_cluster=20, delta=0.2)

SCHEMES = [
    ("random-probe", lambda: RandomProbeSearch(budget=8)),
    ("karger-ruhl", lambda: KargerRuhlSearch(samples_per_scale=4, max_rounds=12)),
    ("tapestry", lambda: TapestrySearch(id_digits=4, probe_budget_per_level=8)),
    ("tiers", lambda: TiersSearch(branching=8)),
    ("meridian", MeridianSearch),
    ("beaconing", lambda: BeaconSearch(n_beacons=6, probe_budget=8)),
    ("pic", PicSearch),
]

CHURN_SPEC = DaemonSpec(
    mean_interarrival_ms=30.0,
    per_node_concurrency=2,
    initial_fraction=0.7,
    min_members=32,
    mean_event_interval_ms=120.0,
    departure_rate=0.6,
    arrival_rate=0.6,
)

TRACED_SPEC = dataclasses.replace(CHURN_SPEC, trace=TraceSpec())

#: A genuinely broken network (same shape as ``examples/trace_a_query.py``):
#: enough loss, NAT and outage to exhaust retransmit ladders, force
#: whole-plan retries and relay detours — every fault tag appears.
FAULT_SPEC = DaemonSpec(
    mean_interarrival_ms=40.0,
    per_node_concurrency=2,
    initial_fraction=0.7,
    min_members=32,
    mean_event_interval_ms=400.0,
    arrival_rate=0.3,
    departure_rate=0.3,
    faults=FaultSpec(
        base_loss_rate=0.1,
        nat_fraction=0.3,
        outages=((0.0, 1500.0, (0,)),),
        probe_timeout_ms=100.0,
        max_retransmits=2,
        query_retry_ms=100.0,
        deadline_ms=800.0,
    ),
    trace=TraceSpec(),
)


@pytest.fixture(scope="module")
def small_world():
    return build_clustered_oracle(SMALL, seed=99)


def run_daemon(world, factory, spec, n_queries=25, seed=5, **kwargs):
    return QueryEngine().run_daemon_trial(
        world,
        factory(),
        spec,
        sampling=SamplingSpec(n_targets=30),
        n_queries=n_queries,
        seed=seed,
        **kwargs,
    )


def run_fault_daemon(world, trace):
    spec = FAULT_SPEC if trace else dataclasses.replace(FAULT_SPEC, trace=None)
    return run_daemon(
        world,
        lambda: KargerRuhlSearch(samples_per_scale=4, max_rounds=12),
        spec,
        n_queries=30,
        max_sim_ms=300_000.0,
    )


def assert_records_identical(base, other):
    """Bit-identity of everything the run *computes* (not what it reports)."""
    assert np.array_equal(base.targets, other.targets)
    assert np.array_equal(base.found, other.found)
    assert np.array_equal(base.probes, other.probes)
    assert np.array_equal(base.arrival_ms, other.arrival_ms)
    assert np.array_equal(base.start_ms, other.start_ms)
    assert np.array_equal(base.finish_ms, other.finish_ms)
    assert np.array_equal(base.probe_rounds, other.probe_rounds)
    assert base.makespan_ms == other.makespan_ms
    assert base.n_churn_events == other.n_churn_events
    assert base.total_maintenance_probes == other.total_maintenance_probes
    for name in ("maintenance_by_event", "probe_retransmits", "relayed_probes",
                 "probe_timeouts", "probe_drops", "query_retries"):
        left, right = getattr(base, name), getattr(other, name)
        if left is None or right is None:
            assert left is None and right is None, name
        else:
            assert np.array_equal(left, right), name


def assert_span_streams_equal(left, right):
    assert len(left) == len(right)
    for a, b in zip(left, right):
        assert (a.name, a.query, a.seq, a.parent) == (b.name, b.query, b.seq, b.parent)
        assert a.start_ms == b.start_ms and a.end_ms == b.end_ms
        assert a.attrs == b.attrs


def assert_exact_tiling(spans):
    """Non-root child spans tile each query's [arrival, finish] exactly."""
    grouped = spans_by_query(spans)
    assert grouped, "trace holds no query spans"
    for query, group in sorted(grouped.items()):
        root = next(s for s in group if s.seq == 0)
        children = [s for s in group if s.seq != 0 and s.name != "dispatch"]
        assert children[0].start_ms == root.start_ms, query
        assert children[-1].end_ms == root.end_ms, query
        covered = sum(s.duration_ms for s in children)
        assert abs(covered - root.duration_ms) < 1e-9, query


# -- tracer / span-stream unit behaviour -------------------------------------


class TestTracer:
    def test_open_twice_is_an_error(self):
        tracer = Tracer()
        tracer.open(0, "probe_round", 1.0)
        with pytest.raises(SimulationError, match="already has an open"):
            tracer.open(0, "plan_retry", 2.0)

    def test_close_without_open_is_a_noop(self):
        tracer = Tracer()
        tracer.close(0, 5.0)
        assert tracer.spans == []

    def test_root_with_open_span_is_an_error(self):
        tracer = Tracer()
        tracer.open(3, "probe_round", 1.0)
        with pytest.raises(SimulationError, match="finished with an open"):
            tracer.root(3, 0.0, 9.0)

    def test_sorted_spans_rejects_dangling_opens(self):
        tracer = Tracer()
        tracer.open(7, "probe_round", 1.0)
        with pytest.raises(SimulationError, match="still open"):
            tracer.sorted_spans()

    def test_seq_numbering_and_canonical_order(self):
        tracer = Tracer()
        tracer.emit("queue_wait", 1, 10.0, 12.0)
        tracer.emit("probe_round", 1, 12.0, 20.0)
        tracer.emit("queue_wait", 0, 10.0, 10.0)
        tracer.maintenance(10.0, 10.0, event_ids=[0], probes=4, kind="eager")
        tracer.root(1, 10.0, 20.0)
        tracer.root(0, 10.0, 10.0)
        stream = tracer.sorted_spans()
        # Equal start times: maintenance (query None) first, then query
        # order, then per-query seq (root 0 before children).
        assert [(s.name, s.query, s.seq) for s in stream] == [
            ("maintenance_flush", None, 0),
            ("query", 0, 0),
            ("queue_wait", 0, 1),
            ("query", 1, 0),
            ("queue_wait", 1, 1),
            ("probe_round", 1, 2),
        ]

    def test_merge_is_sort_of_the_union(self):
        a = [Span("query", 0.0, 5.0, query=0, seq=0)]
        b = [Span("query", 1.0, 2.0, query=1, seq=0)]
        maint = [Span("maintenance_flush", 0.5, 0.5, query=None, seq=0)]
        merged = merge_span_streams(a + b, maint)
        assert merged == sort_spans(a + b + maint)


# -- metrics registry unit behaviour -----------------------------------------


class TestMetrics:
    def test_counter_totals_and_series(self):
        counter = Counter()
        counter.inc(10.0)
        counter.inc(30.0, by=3)
        assert counter.total == 4
        assert counter.series_at(np.array([0.0, 10.0, 20.0, 30.0])).tolist() == [
            0, 1, 1, 4,
        ]

    def test_counter_rejects_negative_increments(self):
        with pytest.raises(ConfigurationError, match=">= 0"):
            Counter().inc(0.0, by=-1)

    def test_empty_series_samples_to_zero(self):
        assert Gauge().series_at(np.array([0.0, 5.0])).tolist() == [0, 0]

    def test_gauge_tracks_level_changes(self):
        gauge = Gauge()
        gauge.add(1.0, +2)
        gauge.add(2.0, -1)
        assert gauge.series_at(np.array([0.5, 1.0, 3.0])).tolist() == [0, 2, 1]

    def test_series_is_tie_order_independent(self):
        # Two breakpoint streams with tied timestamps in opposite orders
        # sample identically — the shard-merge exactness property.
        forward, backward = Gauge(), Gauge()
        forward.extend(np.array([5.0, 5.0]), np.array([+3, -1]))
        backward.extend(np.array([5.0, 5.0]), np.array([-1, +3]))
        grid = np.array([4.0, 5.0, 6.0])
        assert np.array_equal(forward.series_at(grid), backward.series_at(grid))

    def test_histogram_buckets_and_overflow(self):
        hist = Histogram([1.0, 2.0, 4.0])
        hist.observe_many([0.5, 1.0, 3.0, 100.0])
        assert hist.counts.tolist() == [1, 1, 1, 1]
        assert hist.total == 4

    def test_histogram_rejects_bad_edges(self):
        with pytest.raises(ConfigurationError, match="increasing"):
            Histogram([2.0, 1.0])

    def test_registry_merge_pools_everything(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("drops").inc(1.0)
        b.counter("drops").inc(2.0, by=2)
        b.gauge("queue").add(0.0, 5)
        a.histogram("sizes", [1.0, 2.0]).observe(0.5)
        b.histogram("sizes", [1.0, 2.0]).observe(3.0)
        merged = MetricsRegistry.merge([a, b])
        assert merged.counter("drops").total == 3
        assert merged.gauge("queue").series_at(np.array([1.0])).tolist() == [5]
        assert merged.histogram("sizes", [1.0, 2.0]).counts.tolist() == [1, 0, 1]

    def test_registry_merge_rejects_mismatched_edges(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("sizes", [1.0, 2.0])
        b.histogram("sizes", [1.0, 3.0])
        with pytest.raises(DataError, match="edges disagree"):
            MetricsRegistry.merge([a, b])

    def test_sample_times_grid(self):
        assert sample_times(250.0, 100.0).tolist() == [0.0, 100.0, 200.0]
        with pytest.raises(ConfigurationError, match="positive"):
            sample_times(100.0, 0.0)

    def test_sample_block_is_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("drops").inc(1.0)
        registry.histogram("sizes", PROBE_COUNT_EDGES).observe(3.0)
        block = registry.sample(np.array([0.0, 2.0]))
        payload = json.dumps(block.to_dict())
        assert json.loads(payload)["series"]["drops"] == [0, 1]


# -- passivity: tracing changes nothing --------------------------------------


class TestTracePassivity:
    @pytest.mark.parametrize("name,factory", SCHEMES, ids=[s[0] for s in SCHEMES])
    def test_trace_is_bit_identical_per_scheme(self, small_world, name, factory):
        plain = run_daemon(small_world, factory, CHURN_SPEC)
        traced = run_daemon(small_world, factory, TRACED_SPEC)
        assert_records_identical(plain, traced)
        assert plain.spans is None and plain.timeseries is None
        assert traced.spans is not None and traced.timeseries is not None

    def test_trace_off_allocates_no_tracer(self, small_world, monkeypatch):
        # Zero overhead by default means zero: with tracing off the hot
        # path must never even construct a Tracer.
        import repro.obs.trace as trace_mod

        def boom(self):
            raise AssertionError("Tracer allocated with tracing disabled")

        monkeypatch.setattr(trace_mod.Tracer, "__init__", boom)
        record = run_daemon(
            small_world, lambda: RandomProbeSearch(budget=8), CHURN_SPEC
        )
        assert record.spans is None

    def test_trace_is_bit_identical_under_faults(self, small_world):
        plain = run_fault_daemon(small_world, trace=False)
        traced = run_fault_daemon(small_world, trace=True)
        assert_records_identical(plain, traced)
        assert plain.availability == traced.availability

    def test_trace_is_bit_identical_scalar_stepper(self, small_world):
        factory = lambda: TiersSearch(branching=8)  # noqa: E731
        plain = run_daemon(
            small_world, factory, dataclasses.replace(CHURN_SPEC, stepper="scalar")
        )
        traced = run_daemon(
            small_world, factory, dataclasses.replace(TRACED_SPEC, stepper="scalar")
        )
        assert_records_identical(plain, traced)

    def test_trace_is_bit_identical_sharded(self, small_world):
        factory = lambda: RandomProbeSearch(budget=8)  # noqa: E731
        plain = run_daemon(
            small_world, factory, dataclasses.replace(CHURN_SPEC, shards=2),
            n_queries=40, seed=11,
        )
        traced = run_daemon(
            small_world, factory, dataclasses.replace(TRACED_SPEC, shards=2),
            n_queries=40, seed=11,
        )
        assert_records_identical(plain, traced)
        assert traced.spans is not None


# -- invariance: one canonical stream however the run executes ---------------


class TestStreamInvariance:
    def test_stepper_choice_does_not_change_the_stream(self, small_world):
        factory = lambda: KargerRuhlSearch(  # noqa: E731
            samples_per_scale=4, max_rounds=12
        )
        batch = run_daemon(small_world, factory, TRACED_SPEC)
        scalar = run_daemon(
            small_world, factory, dataclasses.replace(TRACED_SPEC, stepper="scalar")
        )
        assert_span_streams_equal(list(batch.spans), list(scalar.spans))
        assert np.array_equal(batch.timeseries.times_ms, scalar.timeseries.times_ms)
        for name in batch.timeseries.series:
            assert np.array_equal(
                batch.timeseries.series[name], scalar.timeseries.series[name]
            ), name

    def test_shard_count_does_not_change_the_stream(self, small_world):
        # The unsharded loop and the sharded script pre-draw the workload
        # differently, so streams are only comparable within a driver:
        # across shard counts and steppers *of the sharded driver* the
        # merged stream must be bit-identical.
        factory = lambda: TiersSearch(branching=8)  # noqa: E731
        runs = {
            (shards, stepper): run_daemon(
                small_world,
                factory,
                dataclasses.replace(TRACED_SPEC, shards=shards, stepper=stepper),
                n_queries=30,
                seed=23,
            )
            for shards, stepper in [(2, "batch"), (5, "batch"), (2, "scalar")]
        }
        base = runs[(2, "batch")]
        for key in [(5, "batch"), (2, "scalar")]:
            other = runs[key]
            assert_records_identical(base, other)
            assert_span_streams_equal(list(base.spans), list(other.spans))
            for name in base.timeseries.series:
                assert np.array_equal(
                    base.timeseries.series[name], other.timeseries.series[name]
                ), (key, name)
            for name, hist in base.timeseries.histograms.items():
                assert np.array_equal(
                    hist["counts"], other.timeseries.histograms[name]["counts"]
                ), (key, name)


# -- structure: nesting, tiling and the phase decomposition ------------------


class TestSpanStructure:
    @pytest.fixture(scope="class")
    def churn_record(self, small_world):
        return run_daemon(
            small_world,
            lambda: KargerRuhlSearch(samples_per_scale=4, max_rounds=12),
            TRACED_SPEC,
        )

    @pytest.fixture(scope="class")
    def fault_record(self, small_world):
        return run_fault_daemon(small_world, trace=True)

    def test_streams_nest_cleanly(self, churn_record, fault_record):
        assert check_nesting(list(churn_record.spans)) == []
        assert check_nesting(list(fault_record.spans)) == []

    def test_children_tile_every_query_exactly(self, churn_record, fault_record):
        assert_exact_tiling(list(churn_record.spans))
        assert_exact_tiling(list(fault_record.spans))

    def test_every_query_has_wait_and_dispatch(self, churn_record):
        for query, group in sorted(spans_by_query(list(churn_record.spans)).items()):
            names = [s.name for s in group]
            assert names[0] == "query", query
            assert names[1] == "queue_wait", query
            assert names[2] == "dispatch", query
            root = group[0]
            assert group[1].start_ms == root.start_ms
            assert group[2].duration_ms == 0.0
            assert "probe_round" in names[3:], query

    def test_root_attrs_match_record_arrays(self, churn_record):
        grouped = spans_by_query(list(churn_record.spans))
        assert set(grouped) == set(range(churn_record.n_queries))
        for query, group in sorted(grouped.items()):
            root = group[0]
            assert root.start_ms == churn_record.arrival_ms[query]
            assert root.end_ms == churn_record.finish_ms[query]
            assert root.attrs["probes"] == churn_record.probes[query]
            assert root.attrs["found"] == churn_record.found[query]
            rounds = [s for s in group if s.name == "probe_round"]
            assert len(rounds) == churn_record.probe_rounds[query]

    def test_probe_round_spans_sum_to_probe_bill(self, churn_record):
        by_query = {q: 0 for q in range(churn_record.n_queries)}
        for span in churn_record.spans:
            if span.name == "probe_round":
                by_query[span.query] += span.attrs["probes"]
        # Root probes include the algorithm's own accounting (aux reads
        # etc.); the per-round fan-outs are exactly the timed probes.
        totals = np.array([by_query[q] for q in range(churn_record.n_queries)])
        assert np.array_equal(totals, churn_record.probes)

    def test_maintenance_spans_carry_ledger_event_ids(self, churn_record):
        ledger = churn_record.maintenance_by_event
        flushes = [s for s in churn_record.spans if s.name == "maintenance_flush"]
        assert flushes, "churned traced run must repair its index"
        seen: list[int] = []
        for span in flushes:
            assert span.query is None
            assert span.attrs["kind"] == "eager"
            ids = list(span.attrs["event_ids"])
            assert ids, "flush span without ledger events"
            seen.extend(ids)
            assert span.attrs["probes"] == int(ledger[ids].sum())
        assert seen == sorted(seen)
        assert len(seen) == len(set(seen))
        assert max(seen) < ledger.size

    def test_deferred_flush_spans_tag_their_kind(self, small_world):
        record = run_daemon(
            small_world,
            lambda: KargerRuhlSearch(
                samples_per_scale=4, max_rounds=12, maintenance="lazy"
            ),
            TRACED_SPEC,
        )
        flushes = [s for s in record.spans if s.name == "maintenance_flush"]
        assert flushes, "lazy discipline must flush on query touches"
        assert {s.attrs["kind"] for s in flushes} <= {"flush", "partial"}
        assert all(s.attrs["event_ids"] for s in flushes)


# -- golden fault trace: every tag appears -----------------------------------


class TestGoldenFaultTrace:
    @pytest.fixture(scope="class")
    def record(self, small_world):
        return run_fault_daemon(small_world, trace=True)

    def test_retry_chain_is_traced(self, record):
        assert record.total_query_retries > 0
        retries = [s for s in record.spans if s.name == "plan_retry"]
        assert len(retries) == record.total_query_retries
        for span in retries:
            assert span.attrs["attempt"] >= 1
            assert span.duration_ms > 0

    def test_fault_tags_cover_the_bill(self, record):
        tags = {"retransmitted": 0, "relayed": 0, "timed_out": 0, "dropped": 0}
        for span in record.spans:
            if span.name == "probe_round":
                for key in tags:
                    tags[key] += span.attrs.get(key, 0)
        assert tags["retransmitted"] == record.total_probe_retransmits > 0
        assert tags["relayed"] == record.total_relayed_probes > 0
        assert tags["timed_out"] == record.total_probe_timeouts > 0
        assert tags["dropped"] == record.total_probe_drops > 0

    def test_fault_counters_feed_the_timeseries(self, record):
        series = record.timeseries.series
        for name, total in (
            ("probes_retransmitted", record.total_probe_retransmits),
            ("probes_relayed", record.total_relayed_probes),
            ("probes_timed_out", record.total_probe_timeouts),
            ("probes_dropped", record.total_probe_drops),
        ):
            assert name in series
            assert int(series[name][-1]) == total
            assert np.all(np.diff(series[name]) >= 0), name

    def test_round_histogram_counts_every_round(self, record):
        hist = record.timeseries.histograms["round_probes"]
        assert int(np.sum(hist["counts"])) == int(record.probe_rounds.sum())

    def test_gauges_are_sampled(self, record):
        series = record.timeseries.series
        # Probes stay in flight across many 100 ms sample instants under
        # the timeout ladder; both gauges are bounded by the exact peaks
        # the breakpoint integrals already report.
        assert int(series["in_flight_probes"].max()) >= 1
        assert int(series["in_flight_probes"].max()) <= record.in_flight_probes_max
        assert int(series["queue_depth"].max()) <= record.queue_depth_max
        assert int(series["queue_depth"][0]) == 0
        assert int(series["in_flight_probes"][0]) == 0


# -- export + CLI -------------------------------------------------------------


class TestExportAndCli:
    @pytest.fixture(scope="class")
    def record(self, small_world):
        return run_fault_daemon(small_world, trace=True)

    @pytest.fixture()
    def trace_file(self, record, tmp_path):
        path = tmp_path / "trace.jsonl"
        dump_trace_jsonl(
            path,
            list(record.spans),
            {"scheme": record.scheme, "n_queries": record.n_queries,
             "makespan_ms": record.makespan_ms},
        )
        return path

    def test_round_trip_preserves_the_stream(self, record, trace_file):
        (dump,) = load_trace_jsonl(trace_file)
        assert dump.meta["scheme"] == record.scheme
        assert_span_streams_equal(list(record.spans), dump.spans)

    def test_validate_accepts_the_dump(self, trace_file):
        assert validate_trace(trace_file) == []

    def test_validate_rejects_corruption(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text(
            json.dumps({"type": "meta", "version": 99}) + "\n"
            + json.dumps({
                "type": "span", "name": "teleport", "query": 0, "seq": 0,
                "parent": None, "start_ms": 5.0, "end_ms": 1.0, "attrs": {},
            }) + "\n"
        )
        problems = validate_trace(bad)
        assert any("version" in p for p in problems)
        assert any("unknown span name" in p for p in problems)
        assert any("bad interval" in p for p in problems)

    def test_validate_flags_span_before_meta(self, tmp_path):
        orphan = tmp_path / "orphan.jsonl"
        orphan.write_text(json.dumps({"type": "span", "name": "query"}) + "\n")
        assert validate_trace(orphan) == [
            f"unreadable trace: {orphan}:1: span before any meta header"
        ]

    def test_append_mode_builds_multi_block_artifacts(self, record, tmp_path):
        path = tmp_path / "multi.jsonl"
        for scheme in ("a", "b"):
            dump_trace_jsonl(
                path, list(record.spans),
                {"scheme": scheme, "n_queries": record.n_queries},
                mode="a",
            )
        dumps = load_trace_jsonl(path)
        assert [d.meta["scheme"] for d in dumps] == ["a", "b"]

    def test_timeline_is_an_accounting_identity(self, record, trace_file):
        (dump,) = load_trace_jsonl(trace_file)
        rendered = render_timeline(dump, query=slowest_query(dump))
        assert "exact tiling" in rendered
        assert "probe_round #1" in rendered
        assert "<-- slowest round" in rendered

    def test_timeline_annotates_retry_chains(self, record, trace_file):
        (dump,) = load_trace_jsonl(trace_file)
        retried = next(
            s.query for s in dump.spans if s.name == "plan_retry"
        )
        rendered = render_timeline(dump, query=retried)
        assert "plan_retry" in rendered
        assert "attempt=" in rendered
        assert "retx=" in rendered or "tmo=" in rendered

    def test_summary_decomposes_every_phase(self, trace_file):
        dumps = load_trace_jsonl(trace_file)
        table = render_summary(dumps)
        for phase in ("queue_wait", "probe_round", "plan_retry", "tta"):
            assert phase in table
        assert "100%" in table

    def test_cli_default_and_summary_views(self, trace_file, capsys):
        assert trace_main([str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "exact tiling" in out
        assert trace_main([str(trace_file), "--summary"]) == 0
        assert "p99 (ms)" in capsys.readouterr().out

    def test_cli_validate_gate(self, trace_file, tmp_path, capsys):
        assert trace_main([str(trace_file), "--validate"]) == 0
        assert "OK" in capsys.readouterr().out
        bad = tmp_path / "bad.jsonl"
        bad.write_text(json.dumps({"type": "meta", "version": 99}) + "\n")
        assert trace_main([str(bad), "--validate"]) == 1


# -- satellite: loop diagnostics on the record --------------------------------


class TestLoopDiagnostics:
    def test_unsharded_loop_stats(self, small_world):
        record = run_daemon(
            small_world, lambda: RandomProbeSearch(budget=8), CHURN_SPEC
        )
        assert record.loop_events > 0
        assert record.loop_queue_peak >= 1
        assert record.loop_pending_at_drain == 0
        assert record.loop_cancelled_events >= 0

    def test_sharded_loop_stats_aggregate(self, small_world):
        record = run_daemon(
            small_world,
            lambda: RandomProbeSearch(budget=8),
            dataclasses.replace(CHURN_SPEC, shards=3),
            n_queries=40,
            seed=11,
        )
        assert record.loop_events > 0
        assert record.loop_queue_peak >= 1
        assert record.loop_pending_at_drain == 0

    def test_fault_runs_cancel_timeout_timers(self, small_world):
        record = run_fault_daemon(small_world, trace=False)
        # Retransmit/timeout timers that lost the race get cancelled.
        assert record.loop_cancelled_events > 0


# -- satellite: comparison table columns -------------------------------------


class TestTableColumns:
    def test_daemon_rows_show_availability_and_retx(self, small_world):
        from repro.analysis.compare import format_trial_records

        record = run_fault_daemon(small_world, trace=False)
        table = format_trial_records([record])
        assert "availability" in table and "retx/query" in table
        row = table.splitlines()[-1]
        assert f"{record.availability:.3f}" in row
        assert f"{record.total_probe_retransmits / record.n_queries:.2f}" in row

    def test_untimed_rows_degrade_to_dashes(self, small_world):
        from repro.analysis.compare import format_trial_records

        timed = run_daemon(
            small_world, lambda: RandomProbeSearch(budget=8), CHURN_SPEC
        )
        static = QueryEngine().run_world_trial(
            small_world,
            RandomProbeSearch(budget=8),
            sampling=SamplingSpec(n_targets=10),
            n_queries=10,
            seed=3,
        )
        table = format_trial_records([timed, static])
        static_row = table.splitlines()[-1]
        assert static_row.rstrip().endswith("-")
        assert static_row.count("-") >= 5


# -- histogram population is post-merge --------------------------------------


class TestPopulateHistograms:
    def test_populates_from_stream(self):
        registry = MetricsRegistry()
        spans = [
            Span("probe_round", 0.0, 1.0, query=0, seq=1, parent=0,
                 attrs={"probes": 8}),
            Span("probe_round", 1.0, 2.0, query=0, seq=2, parent=0,
                 attrs={"probes": 3}),
            Span("maintenance_flush", 0.5, 0.5, attrs={"probes": 100}),
            Span("queue_wait", 0.0, 0.0, query=0, seq=3, parent=0),
        ]
        populate_span_histograms(registry, spans)
        rounds = registry.histogram("round_probes", PROBE_COUNT_EDGES)
        flushes = registry.histogram("flush_probes", PROBE_COUNT_EDGES)
        assert rounds.total == 2
        assert flushes.total == 1
        # 100 lands in the (64, 128] bucket: index of edge 128.
        assert flushes.counts[int(np.searchsorted(np.array(PROBE_COUNT_EDGES), 100.0, side="right"))] == 1
