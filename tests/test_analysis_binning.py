"""Tests for binned percentile reduction (the Figs 4/10 plot type)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.binning import binned_percentiles, log_bins
from repro.util.errors import DataError


class TestLogBins:
    def test_monotone_edges(self):
        edges = log_bins(0.1, 100.0, bins_per_decade=4)
        assert np.all(np.diff(edges) > 0)
        assert edges[0] == pytest.approx(0.1)
        assert edges[-1] == pytest.approx(100.0)

    def test_invalid_ranges(self):
        with pytest.raises(DataError):
            log_bins(0.0, 10.0)
        with pytest.raises(DataError):
            log_bins(10.0, 1.0)


class TestBinnedPercentiles:
    def test_simple_two_bins(self):
        x = [1, 1.5, 5, 6, 7]
        y = [10, 20, 1, 2, 3]
        result = binned_percentiles(x, y, edges=[0.5, 2.0, 10.0])
        assert result.centers.size == 2
        assert result.counts.tolist() == [2, 3]
        assert result.medians[0] == pytest.approx(15.0)
        assert result.medians[1] == pytest.approx(2.0)

    def test_min_count_drops_sparse_bins(self):
        result = binned_percentiles(
            [1, 5, 6], [1, 2, 3], edges=[0.5, 2.0, 10.0], min_count=2
        )
        assert result.centers.size == 1

    def test_mismatched_lengths(self):
        with pytest.raises(DataError):
            binned_percentiles([1, 2], [1], edges=[0, 1, 2])

    def test_bad_edges(self):
        with pytest.raises(DataError):
            binned_percentiles([1], [1], edges=[2, 1])
        with pytest.raises(DataError):
            binned_percentiles([1], [1], edges=[1])

    def test_empty_sample(self):
        with pytest.raises(DataError):
            binned_percentiles([], [], edges=[0, 1])

    def test_rows_structure(self):
        result = binned_percentiles([1, 1.2], [3, 4], edges=[0.5, 2.0])
        rows = result.rows()
        assert rows[0]["count"] == 2
        assert "p50" in rows[0]


@st.composite
def xy_samples(draw):
    n = draw(st.integers(min_value=5, max_value=100))
    x = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=99.0),
            min_size=n,
            max_size=n,
        )
    )
    y = draw(
        st.lists(
            st.floats(min_value=-100, max_value=100),
            min_size=n,
            max_size=n,
        )
    )
    return x, y


class TestBinningProperties:
    @given(xy_samples())
    def test_counts_sum_to_population(self, sample):
        x, y = sample
        result = binned_percentiles(x, y, edges=[0.05, 1.0, 10.0, 100.0])
        assert int(result.counts.sum()) == len(x)

    @given(xy_samples())
    def test_percentiles_ordered(self, sample):
        x, y = sample
        result = binned_percentiles(x, y, edges=[0.05, 1.0, 10.0, 100.0])
        for i in range(result.centers.size):
            values = [result.percentiles[p][i] for p in (5, 25, 50, 75, 95)]
            assert values == sorted(values)

    @given(xy_samples())
    def test_percentiles_within_y_range(self, sample):
        x, y = sample
        result = binned_percentiles(x, y, edges=[0.05, 1.0, 10.0, 100.0])
        lo, hi = min(y), max(y)
        for series in result.percentiles.values():
            assert np.all(series >= lo - 1e-9)
            assert np.all(series <= hi + 1e-9)
