"""Failure-injection tests: the system under churn, loss and noise.

A deployable nearest-peer service must tolerate DHT node crashes, lossy
links during gossip, widespread measurement refusal, heavy probe noise —
and, on the query daemon's simulated network path, packet loss with
timeouts and retransmits, NAT-ed peers reachable only through relays,
regional partitions and clock skew; these tests inject each failure and
assert graceful degradation rather than collapse.
"""

import dataclasses

import numpy as np
import pytest

from repro.dht.chord import ChordRing
from repro.dht.hashing import hash_key
from repro.dht.kvstore import DhtKeyValueStore
from repro.harness import DaemonSpec, FaultSpec, QueryEngine, SamplingSpec
from repro.latency.builder import build_clustered_oracle
from repro.mechanisms.ucl import UclMap, compute_ucl
from repro.meridian.gossip import GossipConfig
from repro.meridian.overlay import MeridianConfig
from repro.meridian.query import closest_node_query
from repro.meridian.simulator import run_meridian_trial
from repro.netsim.engine import EventLoop
from repro.netsim.network import FaultModel, Network
from repro.topology.clustered import ClusteredConfig
from repro.topology.oracle import MatrixOracle, NoisyOracle
from repro.util.errors import SimulationError


class TestDhtChurn:
    def test_ucl_map_survives_storage_node_crashes(self, small_internet):
        """Replication keeps the UCL mapping usable through DHT churn."""
        by_en = {}
        for peer in small_internet.peer_ids:
            by_en.setdefault(small_internet.host(peer).en_id, []).append(peer)
        mate, joiner = next(v[:2] for v in by_en.values() if len(v) >= 2)

        ring = ChordRing.build(list(range(24)))
        store = DhtKeyValueStore(ring, replicas=3, seed=1)
        ucl_map = UclMap(small_internet, backend=store)
        ucl = compute_ucl(small_internet, mate, seed=mate)
        ucl_map.insert_peer(mate, ucl)

        # Crash the owner of every key the mate is stored under.
        for entry in ucl:
            owner, _ = ring.lookup(ring.node_ids[0], hash_key(entry.router_id))
            if owner in ring.node_ids and ring.size > 4:
                store.handle_node_loss(owner)

        found, _latency, _stats = ucl_map.find_nearest(
            joiner, compute_ucl(small_internet, joiner, seed=joiner), seed=3
        )
        assert found == mate

    def test_mass_crash_loses_data_but_not_service(self):
        """Crashing beyond the replication factor loses values, not uptime."""
        ring = ChordRing.build(list(range(12)))
        store = DhtKeyValueStore(ring, replicas=2, seed=2)
        store.put("key", "value")
        for node in list(ring.node_ids)[:8]:
            store.handle_node_loss(node)
        # The store still answers (possibly with an empty set).
        assert isinstance(store.get("key"), set)
        assert ring.size == 4


class TestLossyGossip:
    def test_gossip_converges_despite_loss(self, uniform_matrix):
        """30% message loss slows but does not break ring population."""
        oracle = MatrixOracle(uniform_matrix)
        members = np.arange(50)

        # Patch in loss by replacing the network the overlay builder uses:
        # run the protocol manually with a lossy network.
        from repro.meridian.gossip import GossipMeridianNode

        loop = EventLoop()
        network = Network(loop, oracle, loss_rate=0.3, seed=3)
        rng = np.random.default_rng(3)
        config = MeridianConfig()
        gossip = GossipConfig(initial_contacts=4)
        nodes = {}
        for node_id in members:
            node = GossipMeridianNode(int(node_id), config, gossip, oracle, rng)
            nodes[int(node_id)] = node
            network.attach(node)
        for node_id, node in nodes.items():
            for contact in rng.choice(members[members != node_id], size=4, replace=False):
                node._learn(int(contact))
        loop.run_until(14 * gossip.period_ms)

        counts = [node.state.member_count() for node in nodes.values()]
        assert np.mean(counts) > 6
        assert network.messages_lost > 0


class TestMeasurementRefusal:
    def test_pipeline_handles_total_tcp_refusal(self):
        from repro.measurement.azureus_pipeline import AzureusStudy
        from repro.topology.internet import InternetConfig, SyntheticInternet

        internet = SyntheticInternet.generate(
            InternetConfig(
                n_isps=2,
                pops_per_isp_low=2,
                pops_per_isp_high=3,
                en_per_pop_low=6,
                en_per_pop_high=16,
                tcp_response_rate=0.0,
                traceroute_response_rate=0.0,
            ),
            seed=9,
        )
        result = AzureusStudy(internet, seed=9).run()
        assert result.peers_retained == 0
        assert result.unpruned_clusters == []


class TestHeavyProbeNoise:
    def test_meridian_accuracy_degrades_gracefully(self):
        """50% probe noise halves accuracy-ish; it must not zero it in a
        benign world nor crash."""
        world = build_clustered_oracle(
            ClusteredConfig(n_clusters=6, end_networks_per_cluster=10), seed=11
        )
        clean = run_meridian_trial(world, n_targets=40, n_queries=150, seed=11)
        noisy_oracle = NoisyOracle(world.oracle, sigma=0.5, seed=11)
        noisy = run_meridian_trial(
            world, n_targets=40, n_queries=150, seed=11, probe_oracle=noisy_oracle
        )
        assert noisy.correct_closest_rate <= clean.correct_closest_rate + 0.05
        assert noisy.correct_cluster_rate > 0.3

    def test_query_terminates_under_adversarial_noise(self, uniform_matrix):
        from repro.meridian.overlay import MeridianOverlay

        oracle = MatrixOracle(uniform_matrix)
        overlay = MeridianOverlay.build(oracle, np.arange(60), seed=12)
        wild = NoisyOracle(oracle, sigma=1.5, additive_ms=5.0, seed=12)
        result = closest_node_query(overlay, wild, 80, seed=12)
        assert result.hops <= overlay.config.max_hops


# -- the daemon's broken network path ---------------------------------------

FAULT_TOPOLOGY = ClusteredConfig(n_clusters=6, end_networks_per_cluster=20, delta=0.2)

FAULT_DAEMON = DaemonSpec(
    mean_interarrival_ms=40.0,
    per_node_concurrency=2,
    initial_fraction=0.7,
    min_members=32,
    mean_event_interval_ms=400.0,
    arrival_rate=0.3,
    departure_rate=0.3,
)


@pytest.fixture(scope="module")
def fault_world():
    return build_clustered_oracle(FAULT_TOPOLOGY, seed=99)


def run_fault_daemon(world, factory, spec, n_queries=30, seed=5, **kwargs):
    """One daemon trial under a generous no-hang guard (simulated ms)."""
    kwargs.setdefault("max_sim_ms", 300_000.0)
    kwargs.setdefault("sampling", SamplingSpec(n_targets=30))
    return QueryEngine().run_daemon_trial(
        world, factory(), spec, n_queries=n_queries, seed=seed, **kwargs
    )


class TestFaultModelExactness:
    """Unit-level bills: FaultModel.apply charges exactly what it says."""

    def _fanout(self, world):
        """A cross-cluster fan-out: cluster-0 probers, one cluster-1 target."""
        hc = world.topology.host_cluster
        srcs = np.flatnonzero(hc == 0)[:6]
        dst = int(np.flatnonzero(hc == 1)[0])
        dsts = np.full(srcs.size, dst)
        base = np.array(
            [world.oracle.latency_ms(int(s), dst) for s in srcs]
        )
        return hc, srcs, dsts, base

    def test_total_outage_bills_exact_timeout_ladder(self, fault_world):
        hc, srcs, dsts, base = self._fanout(fault_world)
        fm = FaultModel(
            hc,
            outages=((0.0, 1e9, (0,)),),
            probe_timeout_ms=100.0,
            max_retransmits=2,
            retransmit_backoff=2.0,
        )
        delays, answered, stats = fm.apply(
            np.random.default_rng(0), fault_world.oracle, srcs, dsts, base, 0.0
        )
        # Every attempt crosses the partition: the probe exhausts waits of
        # 100 + 200 + 400 ms and reports no measurement.
        assert not answered.any()
        assert np.array_equal(delays, np.full(srcs.size, 700.0))
        assert stats["dropped"] == 3 * srcs.size
        assert stats["retransmitted"] == 2 * srcs.size
        assert stats["timed_out"] == srcs.size

    def test_retransmits_ride_out_a_short_outage(self, fault_world):
        hc, srcs, dsts, base = self._fanout(fault_world)
        # The outage ends before the second retransmit (sent at +300 ms).
        fm = FaultModel(
            hc,
            outages=((0.0, 250.0, (0,)),),
            probe_timeout_ms=100.0,
            max_retransmits=2,
        )
        delays, answered, stats = fm.apply(
            np.random.default_rng(0), fault_world.oracle, srcs, dsts, base, 0.0
        )
        assert answered.all()
        assert np.allclose(delays, 300.0 + base)
        assert stats["timed_out"] == 0
        assert stats["dropped"] == stats["retransmitted"] == 2 * srcs.size

    def test_nat_relay_bills_detour_exactly(self, fault_world):
        hc, srcs, dsts, base = self._fanout(fault_world)
        dst = int(dsts[0])
        relay = int(np.flatnonzero(hc == 1)[1])
        natted = np.zeros(hc.size, dtype=bool)
        natted[dst] = True
        relay_of = np.arange(hc.size)
        relay_of[dst] = relay
        fm = FaultModel(hc, natted=natted, relay_of=relay_of)
        delays, answered, stats = fm.apply(
            np.random.default_rng(0), fault_world.oracle, srcs, dsts, base, 0.0
        )
        oracle = fault_world.oracle
        expected_extra = np.array(
            [
                max(
                    0.0,
                    oracle.latency_ms(int(s), relay)
                    + oracle.latency_ms(relay, dst)
                    - oracle.latency_ms(int(s), dst),
                )
                for s in srcs
            ]
        )
        assert answered.all()
        assert np.allclose(delays, base + expected_extra)
        assert stats["relayed"] == srcs.size
        assert stats["relay_extra_ms"] == pytest.approx(expected_extra.sum())

    def test_clock_skew_scales_the_timeout_ladder(self, fault_world):
        hc, srcs, dsts, base = self._fanout(fault_world)
        skew = np.ones(hc.size)
        skew[srcs] = 2.0
        fm = FaultModel(
            hc,
            outages=((0.0, 1e9, (0,)),),
            skew=skew,
            probe_timeout_ms=100.0,
            max_retransmits=2,
        )
        delays, answered, _stats = fm.apply(
            np.random.default_rng(0), fault_world.oracle, srcs, dsts, base, 0.0
        )
        # Waits are armed on the prober's fast-running clock: 2x the ladder.
        assert not answered.any()
        assert np.array_equal(delays, np.full(srcs.size, 1400.0))

    def test_drop_bill_decomposes_into_retransmits_plus_timeouts(
        self, fault_world
    ):
        hc = fault_world.topology.host_cluster
        rng = np.random.default_rng(7)
        srcs = rng.choice(hc.size, size=200)
        dsts = rng.choice(hc.size, size=200)
        fm = FaultModel(
            hc,
            loss_matrix=np.full((6, 6), 0.4),
            probe_timeout_ms=50.0,
            max_retransmits=1,
        )
        _delays, _answered, stats = fm.apply(
            rng, fault_world.oracle, srcs, dsts, np.ones(200), 0.0
        )
        assert stats["dropped"] > 0
        assert stats["dropped"] == stats["retransmitted"] + stats["timed_out"]


class TestDaemonLossyFanout:
    """Per-link loss: rounds complete on answers *or* timeouts, honestly billed."""

    SPEC = dataclasses.replace(
        FAULT_DAEMON,
        faults=FaultSpec(
            base_loss_rate=0.05,
            cross_cluster_loss_rate=0.15,
            probe_timeout_ms=250.0,
            deadline_ms=5000.0,
        ),
    )

    def test_answers_from_survivors_with_honest_bills(self, fault_world):
        from repro.algorithms import RandomProbeSearch

        def factory():
            return RandomProbeSearch(budget=8)

        clean = run_fault_daemon(fault_world, factory, FAULT_DAEMON)
        lossy = run_fault_daemon(fault_world, factory, self.SPEC)
        # Every query still gets an answer (no sentinel escapes the daemon).
        assert (lossy.found >= 0).all()
        # The dedicated fault stream leaves the workload untouched: same
        # arrivals, same targets as the fault-free run (common random
        # numbers across schemes and fault configs).
        assert np.array_equal(lossy.arrival_ms, clean.arrival_ms)
        assert np.array_equal(lossy.targets, clean.targets)
        # Loss really happened and was billed coherently: every dropped
        # attempt is either a retransmit or part of a final timeout.
        assert lossy.total_probe_drops > 0
        assert lossy.total_probe_drops == (
            lossy.total_probe_retransmits + lossy.total_probe_timeouts
        )
        # Timeout waits push time-to-answer up, never down.
        assert lossy.tta_mean_ms > clean.tta_mean_ms
        assert 0.0 <= lossy.availability <= 1.0

    def test_fault_outcomes_are_stepper_invariant(self, fault_world):
        from repro.algorithms import MeridianSearch

        batch = run_fault_daemon(fault_world, MeridianSearch, self.SPEC)
        scalar = run_fault_daemon(
            fault_world,
            MeridianSearch,
            dataclasses.replace(self.SPEC, stepper="scalar"),
        )
        assert np.array_equal(batch.found, scalar.found)
        assert np.array_equal(batch.finish_ms, scalar.finish_ms)
        assert np.array_equal(batch.probe_timeouts, scalar.probe_timeouts)
        assert np.array_equal(batch.probe_drops, scalar.probe_drops)
        assert np.array_equal(batch.query_retries, scalar.query_retries)


class TestDaemonNatRelay:
    """NAT-ed targets: probes detour through relays, billing the long path."""

    def test_same_answers_slower_clock(self, fault_world):
        from repro.algorithms import MeridianSearch

        spec = dataclasses.replace(
            FAULT_DAEMON, faults=FaultSpec(nat_fraction=0.3)
        )
        clean = run_fault_daemon(fault_world, MeridianSearch, FAULT_DAEMON)
        natted = run_fault_daemon(fault_world, MeridianSearch, spec)
        # No loss: every probe is answered (via its relay), the *measured*
        # value stays the direct RTT, so the scheme's decisions — and its
        # answers — are identical; only the clock pays the detour.
        assert np.array_equal(natted.found, clean.found)
        assert natted.total_probe_timeouts == 0
        assert natted.total_relayed_probes > 0
        assert natted.relay_extra_ms > 0.0
        assert natted.tta_mean_ms >= clean.tta_mean_ms


class TestDaemonPartition:
    """A mid-run regional outage: queries ride it out and still answer."""

    def test_outage_times_out_retries_and_recovers(self, fault_world):
        from repro.algorithms import KargerRuhlSearch

        spec = dataclasses.replace(
            FAULT_DAEMON,
            faults=FaultSpec(
                outages=((0.0, 1500.0, (0,)),),
                probe_timeout_ms=100.0,
                max_retransmits=2,
                query_retry_ms=100.0,
                deadline_ms=800.0,
            ),
        )
        record = run_fault_daemon(
            fault_world,
            lambda: KargerRuhlSearch(samples_per_scale=4, max_rounds=12),
            spec,
        )
        # Everything answered eventually — the sentinel never escapes —
        # but probes into the cut region exhausted their retransmits and
        # some whole plans restarted after the blackout round.
        assert (record.found >= 0).all()
        assert record.total_probe_timeouts > 0
        assert record.total_query_retries > 0
        # With a deadline tighter than the outage, availability < 1 while
        # the answers themselves stay complete: graceful degradation.
        assert 0.0 < record.availability < 1.0

    def test_livelock_guard_raises_instead_of_hanging(self):
        loop = EventLoop()

        def respawn() -> None:
            loop.schedule(10.0, respawn)

        loop.schedule(10.0, respawn)
        with pytest.raises(SimulationError):
            loop.run(max_time_ms=500.0)


class TestDaemonClockSkew:
    """Per-node clock skew: deterministic, and it moves the timeout bills."""

    def test_skew_is_deterministic_and_shifts_timelines(self, fault_world):
        from repro.algorithms import MeridianSearch

        lossy = FaultSpec(base_loss_rate=0.10, probe_timeout_ms=200.0)
        skewed = dataclasses.replace(lossy, clock_skew=0.3)
        spec = dataclasses.replace(FAULT_DAEMON, faults=skewed)
        once = run_fault_daemon(fault_world, MeridianSearch, spec)
        twice = run_fault_daemon(fault_world, MeridianSearch, spec)
        assert np.array_equal(once.finish_ms, twice.finish_ms)
        assert np.array_equal(once.found, twice.found)
        # Skew scales retransmit waits on the prober's clock, so the
        # same losses land at different instants than with true clocks.
        true_clocks = run_fault_daemon(
            fault_world,
            MeridianSearch,
            dataclasses.replace(FAULT_DAEMON, faults=lossy),
        )
        assert not np.array_equal(once.finish_ms, true_clocks.finish_ms)


class TestZeroFaultIdentity:
    """An inert fault model is *free*: timelines bit-identical to PR 6."""

    @pytest.mark.parametrize("stepper", ["batch", "scalar"])
    def test_all_zero_faultspec_is_bit_identical(self, fault_world, stepper):
        from repro.algorithms import MeridianSearch

        bare = dataclasses.replace(FAULT_DAEMON, stepper=stepper)
        inert = dataclasses.replace(bare, faults=FaultSpec())
        a = run_fault_daemon(fault_world, MeridianSearch, bare)
        b = run_fault_daemon(fault_world, MeridianSearch, inert)
        for field in dataclasses.fields(a):
            va, vb = getattr(a, field.name), getattr(b, field.name)
            if isinstance(va, np.ndarray):
                assert np.array_equal(va, vb), field.name
            else:
                assert va == vb, field.name

    def test_shard_count_invariance_under_faults(self, fault_world):
        from repro.algorithms import MeridianSearch

        spec = dataclasses.replace(
            FAULT_DAEMON,
            faults=FaultSpec(
                base_loss_rate=0.05,
                nat_fraction=0.2,
                clock_skew=0.05,
                probe_timeout_ms=250.0,
            ),
        )
        two = run_fault_daemon(
            fault_world, MeridianSearch, dataclasses.replace(spec, shards=2)
        )
        three = run_fault_daemon(
            fault_world, MeridianSearch, dataclasses.replace(spec, shards=3)
        )
        assert np.array_equal(two.found, three.found)
        assert np.array_equal(two.finish_ms, three.finish_ms)
        assert np.array_equal(two.probe_drops, three.probe_drops)
        assert np.array_equal(two.probe_timeouts, three.probe_timeouts)
        assert np.array_equal(two.relayed_probes, three.relayed_probes)
        assert np.array_equal(two.query_retries, three.query_retries)
        assert two.relay_extra_ms == pytest.approx(three.relay_extra_ms)
