"""Failure-injection tests: the system under churn, loss and noise.

A deployable nearest-peer service must tolerate DHT node crashes, lossy
links during gossip, widespread measurement refusal and heavy probe noise;
these tests inject each failure and assert graceful degradation rather
than collapse.
"""

import numpy as np
import pytest

from repro.dht.chord import ChordRing
from repro.dht.hashing import hash_key
from repro.dht.kvstore import DhtKeyValueStore
from repro.latency.builder import build_clustered_oracle
from repro.mechanisms.ucl import UclMap, compute_ucl
from repro.meridian.gossip import GossipConfig, run_gossip_overlay
from repro.meridian.overlay import MeridianConfig
from repro.meridian.query import closest_node_query
from repro.meridian.simulator import run_meridian_trial
from repro.netsim.engine import EventLoop
from repro.netsim.network import Network
from repro.topology.clustered import ClusteredConfig
from repro.topology.oracle import MatrixOracle, NoisyOracle


class TestDhtChurn:
    def test_ucl_map_survives_storage_node_crashes(self, small_internet):
        """Replication keeps the UCL mapping usable through DHT churn."""
        by_en = {}
        for peer in small_internet.peer_ids:
            by_en.setdefault(small_internet.host(peer).en_id, []).append(peer)
        mate, joiner = next(v[:2] for v in by_en.values() if len(v) >= 2)

        ring = ChordRing.build(list(range(24)))
        store = DhtKeyValueStore(ring, replicas=3, seed=1)
        ucl_map = UclMap(small_internet, backend=store)
        ucl = compute_ucl(small_internet, mate, seed=mate)
        ucl_map.insert_peer(mate, ucl)

        # Crash the owner of every key the mate is stored under.
        for entry in ucl:
            owner, _ = ring.lookup(ring.node_ids[0], hash_key(entry.router_id))
            if owner in ring.node_ids and ring.size > 4:
                store.handle_node_loss(owner)

        found, _latency, _stats = ucl_map.find_nearest(
            joiner, compute_ucl(small_internet, joiner, seed=joiner), seed=3
        )
        assert found == mate

    def test_mass_crash_loses_data_but_not_service(self):
        """Crashing beyond the replication factor loses values, not uptime."""
        ring = ChordRing.build(list(range(12)))
        store = DhtKeyValueStore(ring, replicas=2, seed=2)
        store.put("key", "value")
        for node in list(ring.node_ids)[:8]:
            store.handle_node_loss(node)
        # The store still answers (possibly with an empty set).
        assert isinstance(store.get("key"), set)
        assert ring.size == 4


class TestLossyGossip:
    def test_gossip_converges_despite_loss(self, uniform_matrix):
        """30% message loss slows but does not break ring population."""
        oracle = MatrixOracle(uniform_matrix)
        members = np.arange(50)

        # Patch in loss by replacing the network the overlay builder uses:
        # run the protocol manually with a lossy network.
        from repro.meridian.gossip import GossipMeridianNode

        loop = EventLoop()
        network = Network(loop, oracle, loss_rate=0.3, seed=3)
        rng = np.random.default_rng(3)
        config = MeridianConfig()
        gossip = GossipConfig(initial_contacts=4)
        nodes = {}
        for node_id in members:
            node = GossipMeridianNode(int(node_id), config, gossip, oracle, rng)
            nodes[int(node_id)] = node
            network.attach(node)
        for node_id, node in nodes.items():
            for contact in rng.choice(members[members != node_id], size=4, replace=False):
                node._learn(int(contact))
        loop.run_until(14 * gossip.period_ms)

        counts = [node.state.member_count() for node in nodes.values()]
        assert np.mean(counts) > 6
        assert network.messages_lost > 0


class TestMeasurementRefusal:
    def test_pipeline_handles_total_tcp_refusal(self):
        from repro.measurement.azureus_pipeline import AzureusStudy
        from repro.topology.internet import InternetConfig, SyntheticInternet

        internet = SyntheticInternet.generate(
            InternetConfig(
                n_isps=2,
                pops_per_isp_low=2,
                pops_per_isp_high=3,
                en_per_pop_low=6,
                en_per_pop_high=16,
                tcp_response_rate=0.0,
                traceroute_response_rate=0.0,
            ),
            seed=9,
        )
        result = AzureusStudy(internet, seed=9).run()
        assert result.peers_retained == 0
        assert result.unpruned_clusters == []


class TestHeavyProbeNoise:
    def test_meridian_accuracy_degrades_gracefully(self):
        """50% probe noise halves accuracy-ish; it must not zero it in a
        benign world nor crash."""
        world = build_clustered_oracle(
            ClusteredConfig(n_clusters=6, end_networks_per_cluster=10), seed=11
        )
        clean = run_meridian_trial(world, n_targets=40, n_queries=150, seed=11)
        noisy_oracle = NoisyOracle(world.oracle, sigma=0.5, seed=11)
        noisy = run_meridian_trial(
            world, n_targets=40, n_queries=150, seed=11, probe_oracle=noisy_oracle
        )
        assert noisy.correct_closest_rate <= clean.correct_closest_rate + 0.05
        assert noisy.correct_cluster_rate > 0.3

    def test_query_terminates_under_adversarial_noise(self, uniform_matrix):
        from repro.meridian.overlay import MeridianOverlay

        oracle = MatrixOracle(uniform_matrix)
        overlay = MeridianOverlay.build(oracle, np.arange(60), seed=12)
        wild = NoisyOracle(oracle, sigma=1.5, additive_ms=5.0, seed=12)
        result = closest_node_query(overlay, wild, 80, seed=12)
        assert result.hops <= overlay.config.max_hops
