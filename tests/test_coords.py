"""Tests for Vivaldi and GNP coordinate systems."""

import numpy as np
import pytest

from repro.coords.errors import embedding_error_stats
from repro.coords.gnp import GnpConfig, GnpEmbedding
from repro.coords.vivaldi import VivaldiConfig, VivaldiSystem
from repro.topology.oracle import MatrixOracle
from repro.util.errors import DataError


@pytest.fixture(scope="module")
def euclidean_world():
    """A perfectly embeddable 2-D world: coordinates must recover it."""
    rng = np.random.default_rng(7)
    points = rng.uniform(0, 100, size=(60, 2))
    diff = points[:, None, :] - points[None, :, :]
    matrix = np.sqrt((diff**2).sum(axis=2))
    np.fill_diagonal(matrix, 0.0)
    return MatrixOracle(matrix + 1e-9 * (1 - np.eye(60)))


def sample_pairs(n, count, seed=0):
    rng = np.random.default_rng(seed)
    pairs = set()
    while len(pairs) < count:
        a, b = rng.integers(0, n, size=2)
        if a != b:
            pairs.add((int(a), int(b)))
    return sorted(pairs)


class TestVivaldi:
    def test_converges_on_euclidean_data(self, euclidean_world):
        system = VivaldiSystem(
            np.arange(60), VivaldiConfig(dimensions=2, use_height=False), seed=1
        )
        system.run(euclidean_world, rounds=40, neighbors_per_round=8)
        stats = embedding_error_stats(
            sample_pairs(60, 200),
            system.coordinate_distance,
            euclidean_world.latency_ms,
        )
        assert stats.median_relative_error < 0.15

    def test_observe_reduces_single_pair_error(self, euclidean_world):
        system = VivaldiSystem(np.arange(60), seed=2)
        rtt = euclidean_world.latency_ms(0, 1)
        for _ in range(50):
            system.observe(0, 1, rtt)
            system.observe(1, 0, rtt)
        assert system.coordinate_distance(0, 1) == pytest.approx(rtt, rel=0.2)

    def test_zero_rtt_ignored(self):
        system = VivaldiSystem([0, 1], seed=0)
        before = system.positions.copy()
        system.observe(0, 1, 0.0)
        assert np.allclose(system.positions, before)

    def test_unknown_node_rejected(self):
        system = VivaldiSystem([0, 1], seed=0)
        with pytest.raises(DataError):
            system.coordinate_distance(0, 99)

    def test_place_external(self, euclidean_world):
        system = VivaldiSystem(
            np.arange(60), VivaldiConfig(dimensions=2, use_height=False), seed=3
        )
        system.run(euclidean_world, rounds=30)
        # Place a phantom node at the position of node 0.
        rtts = {m: euclidean_world.latency_ms(0, m) for m in range(1, 12)}
        position, _height = system.place_external(rtts, iterations=200)
        error = np.linalg.norm(position - system.positions[0])
        spread = np.linalg.norm(system.positions.std(axis=0))
        assert error < spread  # lands near node 0's coordinate

    def test_place_external_empty_rejected(self):
        system = VivaldiSystem([0, 1], seed=0)
        with pytest.raises(DataError):
            system.place_external({})

    def test_needs_two_nodes(self):
        with pytest.raises(DataError):
            VivaldiSystem([0], seed=0)


class TestGnp:
    def test_low_error_on_euclidean_data(self, euclidean_world):
        embedding = GnpEmbedding.build(
            euclidean_world,
            np.arange(60),
            GnpConfig(dimensions=2, n_landmarks=8),
            seed=1,
        )
        stats = embedding_error_stats(
            sample_pairs(60, 200, seed=1),
            embedding.coordinate_distance,
            euclidean_world.latency_ms,
        )
        assert stats.median_relative_error < 0.1

    def test_place_external_near_original(self, euclidean_world):
        embedding = GnpEmbedding.build(
            euclidean_world,
            np.arange(60),
            GnpConfig(dimensions=2, n_landmarks=8),
            seed=1,
        )
        rtts = np.array(
            [
                euclidean_world.latency_ms(0, int(lm))
                for lm in embedding.landmark_ids
            ]
        )
        position = embedding.place_external(rtts)
        predicted = np.linalg.norm(position - embedding.position(5))
        actual = euclidean_world.latency_ms(0, 5)
        assert predicted == pytest.approx(actual, rel=0.35)

    def test_landmarks_exceed_dimensions(self):
        with pytest.raises(DataError):
            GnpConfig(dimensions=8, n_landmarks=8)

    def test_population_must_cover_landmarks(self, euclidean_world):
        with pytest.raises(DataError):
            GnpEmbedding.build(
                euclidean_world, np.arange(5), GnpConfig(dimensions=2, n_landmarks=8)
            )

    def test_unknown_node_rejected(self, euclidean_world):
        embedding = GnpEmbedding.build(
            euclidean_world,
            np.arange(30),
            GnpConfig(dimensions=2, n_landmarks=6),
            seed=0,
        )
        with pytest.raises(DataError):
            embedding.position(500)


class TestClusterBlindness:
    def test_cluster_coordinates_collapse(self, clustered_world):
        """Section 2.2: within a cluster, coordinates carry ~no information;
        the relative error over intra-cluster pairs stays high."""
        world = clustered_world
        members = np.arange(world.topology.n_nodes)
        system = VivaldiSystem(members, VivaldiConfig(dimensions=3), seed=4)
        system.run(world.oracle, rounds=25, neighbors_per_round=8)

        cluster0 = world.topology.hosts_in_cluster(0)
        pairs = [
            (int(a), int(b))
            for i, a in enumerate(cluster0[:20])
            for b in cluster0[i + 1 : 20]
            if not world.topology.same_end_network(int(a), int(b))
        ]
        intra = embedding_error_stats(
            pairs, system.coordinate_distance, world.oracle.latency_ms
        )
        far_pairs = sample_pairs(world.topology.n_nodes, 200, seed=9)
        global_stats = embedding_error_stats(
            far_pairs, system.coordinate_distance, world.oracle.latency_ms
        )
        # Global embedding is usable; intra-cluster is much worse.
        assert intra.median_relative_error > 1.5 * global_stats.median_relative_error
