"""Tests for the simulated-time query daemon and its harness front-end."""

import numpy as np
import pytest

from repro.algorithms import (
    BeaconSearch,
    KargerRuhlSearch,
    MeridianSearch,
    RandomProbeSearch,
)
from repro.analysis.compare import format_trial_records, rank_by_time_to_answer
from repro.harness import (
    DaemonSpec,
    DaemonTrialRecord,
    QueryEngine,
    SamplingSpec,
    Scenario,
    get_scenario,
)
from repro.latency.builder import build_clustered_oracle
from repro.service import QueryDaemon
from repro.topology.clustered import ClusteredConfig
from repro.util.errors import ConfigurationError

SMALL = ClusteredConfig(n_clusters=6, end_networks_per_cluster=20, delta=0.2)


@pytest.fixture(scope="module")
def small_world():
    return build_clustered_oracle(SMALL, seed=99)


def run_daemon(world, algorithm_factory, spec, n_queries=25, seed=5):
    return QueryEngine().run_daemon_trial(
        world,
        algorithm_factory(),
        spec,
        sampling=SamplingSpec(n_targets=30),
        n_queries=n_queries,
        seed=seed,
    )


class TestDaemonBasics:
    def test_record_shape_and_timing_invariants(self, small_world):
        spec = DaemonSpec(mean_interarrival_ms=30.0, per_node_concurrency=2)
        record = run_daemon(small_world, lambda: RandomProbeSearch(budget=8), spec)
        assert isinstance(record, DaemonTrialRecord)
        assert record.n_queries == 25
        # Arrival <= start <= finish, per query.
        assert (record.queue_wait_ms >= 0).all()
        assert (record.service_time_ms > 0).all()
        assert (record.time_to_answer_ms > 0).all()
        # A round completes after its slowest probe: one-round random
        # probing answers in exactly its max per-round RTT.
        assert record.tta_median_ms > 0
        assert record.tta_median_ms <= record.tta_p95_ms <= record.tta_p99_ms
        assert record.makespan_ms >= float(record.finish_ms.max()) - float(
            record.arrival_ms.min()
        )
        assert record.mean_probe_rounds == 1.0  # single fan-out scheme
        assert record.exact_hit.shape == (25,)

    def test_same_seed_reproduces_the_timeline(self, small_world):
        spec = DaemonSpec(
            mean_interarrival_ms=20.0,
            per_node_concurrency=1,
            mean_event_interval_ms=80.0,
            arrival_rate=0.6,
            departure_rate=0.6,
            min_members=32,
        )
        a = run_daemon(small_world, MeridianSearch, spec, seed=7)
        b = run_daemon(small_world, MeridianSearch, spec, seed=7)
        assert np.array_equal(a.targets, b.targets)
        assert np.array_equal(a.found, b.found)
        assert np.array_equal(a.arrival_ms, b.arrival_ms)
        assert np.array_equal(a.start_ms, b.start_ms)
        assert np.array_equal(a.finish_ms, b.finish_ms)
        assert np.array_equal(a.maintenance_probes, b.maintenance_probes)
        assert a.n_churn_events == b.n_churn_events
        assert a.makespan_ms == b.makespan_ms

    def test_service_time_is_critical_path_not_probe_count(self, small_world):
        """A query's in-service time is the sum of its per-round max RTTs."""
        from repro.util.rng import make_rng

        spec = DaemonSpec(mean_interarrival_ms=10_000.0)  # effectively serial
        seed = 5
        record = run_daemon(
            small_world,
            lambda: KargerRuhlSearch(samples_per_scale=4, max_rounds=12),
            spec,
            n_queries=10,
            seed=seed,
        )
        # Replay the engine's stream discipline on a twin and recover each
        # query's critical path by driving the plan by hand.
        rng = make_rng(seed)
        sampling = SamplingSpec(n_targets=30)
        targets = sampling.sample(small_world, rng)
        members = np.setdiff1d(np.arange(small_world.topology.n_nodes), targets)
        workload_rng = np.random.default_rng(int(rng.integers(2**63)))
        n_initial = max(
            spec.min_members, int(round(spec.initial_fraction * members.size))
        )
        shuffled = workload_rng.permutation(members)
        live = np.sort(shuffled[:n_initial])
        twin = KargerRuhlSearch(samples_per_scale=4, max_rounds=12)
        twin.build(small_world.oracle, live, seed=rng)
        workload_rng.exponential(spec.mean_interarrival_ms)  # first gap
        expected = []
        for index in range(10):
            target = int(workload_rng.choice(targets))
            workload_rng.choice(live)  # the entry-node draw
            if index < 9:
                workload_rng.exponential(spec.mean_interarrival_ms)
            plan = twin.query_plan(target, seed=rng)
            critical_path = 0.0
            try:
                while True:
                    batch = plan.send(None)
                    critical_path += max(op.rtt_ms for op in batch)
            except StopIteration:
                pass
            expected.append(critical_path)
        assert np.allclose(record.service_time_ms, np.asarray(expected))
        # The critical path is far less than the per-probe serial total.
        assert (record.service_time_ms > 0).all()

    def test_queueing_kicks_in_under_overload(self, small_world):
        overload = DaemonSpec(
            mean_interarrival_ms=1.0, per_node_concurrency=1, initial_fraction=0.2
        )
        record = run_daemon(
            small_world, lambda: RandomProbeSearch(budget=24), overload,
            n_queries=60,
        )
        assert record.queue_depth_max > 0
        assert record.queue_depth_time_avg > 0
        assert float(record.queue_wait_ms.max()) > 0
        assert record.in_flight_probes_max > 24  # overlapping fan-outs

    def test_fifo_order_and_concurrency_cap_per_entry_node(self, small_world):
        """Queries queued behind one node start in arrival order, and no
        node ever serves more than its concurrency cap at once."""
        algorithm = RandomProbeSearch(budget=24)
        members = np.arange(0, small_world.topology.n_nodes - 30)
        algorithm.build(small_world.oracle, members, seed=1)
        spec = DaemonSpec(mean_interarrival_ms=1.0, per_node_concurrency=1)
        daemon = QueryDaemon(
            algorithm,
            spec,
            targets=np.arange(
                small_world.topology.n_nodes - 30, small_world.topology.n_nodes
            ),
            workload_rng=np.random.default_rng(3),
            algo_rng=np.random.default_rng(4),
        )
        run = daemon.run(60)
        by_entry: dict[int, list] = {}
        for job in run.jobs:
            by_entry.setdefault(job.entry, []).append(job)
        queued_somewhere = False
        for jobs in by_entry.values():
            # Jobs are in arrival order; FIFO means their starts are too,
            # and cap=1 means service intervals cannot overlap.
            starts = [job.start_ms for job in jobs]
            assert starts == sorted(starts)
            for earlier, later in zip(jobs, jobs[1:]):
                assert later.start_ms >= earlier.finish_ms
                queued_somewhere |= later.queue_wait_ms > 0
        assert queued_somewhere
        assert run.queue_depth_max > 0

    def test_membership_events_and_epoch_scoring(self, small_world):
        spec = DaemonSpec(
            mean_interarrival_ms=15.0,
            mean_event_interval_ms=30.0,
            arrival_rate=1.0,
            departure_rate=1.0,
            min_members=32,
            initial_fraction=0.6,
        )
        record = run_daemon(
            small_world, lambda: RandomProbeSearch(budget=8), spec, n_queries=40
        )
        assert record.n_churn_events > 0
        assert record.membership_size is not None
        assert record.membership_size.min() >= 32
        # The index-free baseline pays nothing for maintenance.
        assert record.total_maintenance_probes == 0

    def test_maintenance_billed_on_daemon_clock(self, small_world):
        spec = DaemonSpec(
            mean_interarrival_ms=15.0,
            mean_event_interval_ms=25.0,
            arrival_rate=1.0,
            departure_rate=1.0,
            min_members=32,
        )
        record = run_daemon(
            small_world, lambda: BeaconSearch(n_beacons=6), spec, n_queries=40
        )
        assert record.n_churn_events > 0
        assert record.total_maintenance_probes > 0

    def test_flush_timer_drains_deferred_maintenance(self, small_world):
        spec = DaemonSpec(
            mean_interarrival_ms=60.0,
            mean_event_interval_ms=10.0,
            arrival_rate=1.2,
            departure_rate=1.2,
            min_members=32,
            flush_period_ms=40.0,
        )
        record = run_daemon(
            small_world,
            lambda: KargerRuhlSearch(
                samples_per_scale=4, max_rounds=12, maintenance="coalesce:512"
            ),
            spec,
            n_queries=15,
        )
        # The huge coalesce window would never fill by itself: only the
        # timer can have flushed, and each flush is a counted rebuild.
        assert record.forced_flushes > 0
        assert record.total_maintenance_probes > 0

    def test_continuous_ring_repair_runs_on_the_loop(self, small_world):
        spec = DaemonSpec(
            mean_interarrival_ms=25.0,
            mean_event_interval_ms=20.0,
            arrival_rate=0.4,
            departure_rate=1.5,  # drain: rings thin out, repair must act
            min_members=32,
            initial_fraction=0.9,
            ring_repair_period_ms=100.0,
        )
        # Leave-time repair off: the loop-scheduled continuous pass is the
        # only thing re-fattening rings, so it must do the work.
        record = run_daemon(
            small_world,
            lambda: MeridianSearch(ring_repair=False),
            spec,
            n_queries=40,
        )
        assert record.ring_repair_passes > 0
        assert record.ring_repair_probes > 0  # drained rings were re-fattened
        assert record.ring_repair_nodes > 0
        # Repair probes are maintenance and stay on the books.
        assert record.total_maintenance_probes >= record.ring_repair_probes


class TestZeroDelayDaemonEquivalence:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: RandomProbeSearch(budget=8),
            lambda: KargerRuhlSearch(samples_per_scale=4, max_rounds=12),
            MeridianSearch,
            lambda: BeaconSearch(n_beacons=6, probe_budget=8),
        ],
        ids=["random-probe", "karger-ruhl", "meridian", "beaconing"],
    )
    def test_zero_delay_daemon_matches_blocking_queries(
        self, small_world, factory
    ):
        """With instantaneous delivery the daemon serialises perfectly and
        reproduces direct ``query()`` results bit for bit."""
        from repro.util.rng import make_rng

        spec = DaemonSpec(mean_interarrival_ms=10.0, zero_delay=True)
        seed = 13
        record = run_daemon(small_world, factory, spec, n_queries=20, seed=seed)

        # Reference: replay the engine's stream discipline by hand with a
        # blocking query per arrival.
        rng = make_rng(seed)
        sampling = SamplingSpec(n_targets=30)
        targets = sampling.sample(small_world, rng)
        members = np.setdiff1d(
            np.arange(small_world.topology.n_nodes), targets
        )
        workload_rng = np.random.default_rng(int(rng.integers(2**63)))
        n_initial = max(
            spec.min_members,
            int(round(spec.initial_fraction * members.size)),
        )
        shuffled = workload_rng.permutation(members)
        live = np.sort(shuffled[:n_initial])
        algorithm = factory()
        algorithm.build(small_world.oracle, live, seed=rng)
        workload_rng.exponential(spec.mean_interarrival_ms)  # first gap
        results = []
        for index in range(20):
            target = int(workload_rng.choice(targets))
            workload_rng.choice(live)  # the entry-node draw
            if index < 19:
                workload_rng.exponential(spec.mean_interarrival_ms)
            results.append(algorithm.query(target, seed=rng))
        assert np.array_equal(
            record.targets, np.array([r.target for r in results])
        )
        assert np.array_equal(
            record.found, np.array([r.found for r in results])
        )
        assert np.array_equal(
            record.probes, np.array([r.probes for r in results])
        )
        assert np.array_equal(
            record.aux_probes, np.array([r.aux_probes for r in results])
        )
        assert np.allclose(
            record.found_latency_ms,
            np.array([r.found_latency_ms for r in results]),
        )
        # Zero delay: every query answers the instant it arrives.
        assert (record.time_to_answer_ms == 0).all()


class TestDaemonHarnessIntegration:
    def test_registered_scenarios_exist_and_validate(self):
        for name in ("daemon-steady", "daemon-flash-crowd"):
            scenario = get_scenario(name)
            assert scenario.protocol == "daemon"
            assert scenario.daemon is not None

    def test_daemon_scenario_requires_spec(self):
        with pytest.raises(ConfigurationError):
            Scenario(name="bad", topology=SMALL, protocol="daemon")
        with pytest.raises(ConfigurationError):
            Scenario(
                name="bad2",
                topology=SMALL,
                daemon=DaemonSpec(),  # spec without the protocol
            )

    def test_run_scenario_and_aggregate(self):
        scenario = get_scenario("daemon-steady").with_(
            n_queries=15, trials=2, daemon=DaemonSpec(mean_interarrival_ms=25.0)
        )
        result = QueryEngine().run_scenario(
            scenario, lambda: RandomProbeSearch(budget=8)
        )
        assert result.n_trials == 2
        stats = result.aggregate("tta_median_ms")
        assert stats.count == 2
        assert stats.minimum > 0

    def test_run_world_trial_rejects_daemon_protocol(self, small_world):
        with pytest.raises(ConfigurationError):
            QueryEngine().run_world_trial(
                small_world,
                RandomProbeSearch(budget=8),
                sampling=SamplingSpec(n_targets=10),
                protocol="daemon",
            )

    def test_compare_gives_common_random_numbers(self, small_world):
        scenario = get_scenario("daemon-steady").with_(n_queries=20)
        records = QueryEngine().compare(
            scenario,
            [lambda: RandomProbeSearch(budget=8), lambda: BeaconSearch(n_beacons=6)],
            world=small_world,
        )
        assert [r.scheme for r in records] == ["random-probe", "beaconing"]
        # Identical workload: same targets at the same arrival instants.
        assert np.array_equal(records[0].targets, records[1].targets)
        assert np.array_equal(records[0].arrival_ms, records[1].arrival_ms)
        ranked = rank_by_time_to_answer(records)
        assert ranked[0].tta_median_ms <= ranked[1].tta_median_ms

    def test_daemon_rejected_outside_its_protocol(self, small_world):
        engine = QueryEngine()
        with pytest.raises(ConfigurationError):
            engine.run_daemon_trial(
                small_world,
                RandomProbeSearch(budget=8),
                None,
                sampling=SamplingSpec(n_targets=10),
            )


class TestDaemonTableFormatting:
    def test_mixed_records_degrade_gracefully(self, small_world):
        daemon_record = run_daemon(
            small_world,
            lambda: RandomProbeSearch(budget=8),
            DaemonSpec(mean_interarrival_ms=30.0),
            n_queries=10,
        )
        static_record = QueryEngine().run_world_trial(
            small_world,
            RandomProbeSearch(budget=8),
            sampling=SamplingSpec(n_targets=10),
            n_queries=10,
            seed=3,
        )
        table = format_trial_records([daemon_record, static_record])
        assert "tta p50 (ms)" in table
        assert "tta p99 (ms)" in table
        lines = table.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert lines[3].rstrip().endswith("-")  # static row degrades to '-'
        # Static-only tables keep the historical shape.
        plain = format_trial_records([static_record])
        assert "tta p50 (ms)" not in plain

    def test_daemon_record_without_timing_arrays_degrades(self, small_world):
        """Regression: a DaemonTrialRecord built without its optional
        timing arrays must render/rank as untimed, not crash."""
        timed = run_daemon(
            small_world,
            lambda: RandomProbeSearch(budget=8),
            DaemonSpec(mean_interarrival_ms=30.0),
            n_queries=10,
        )
        import dataclasses

        untimed = dataclasses.replace(
            timed, arrival_ms=None, start_ms=None, finish_ms=None
        )
        table = format_trial_records([timed, untimed])
        assert table.splitlines()[3].rstrip().endswith("-")
        only_untimed = format_trial_records([untimed])
        assert "tta p50 (ms)" not in only_untimed
        ranked = rank_by_time_to_answer([untimed, timed])
        assert ranked == [timed, untimed]
