"""Tests for repro-lint: rules, suppressions, baseline, reporters, CLI.

Each rule has a violating/clean fixture pair under ``tests/lint_fixtures/``.
Violating fixtures tag every line that must be caught with a trailing
``# LINT: <rule-id>`` marker; the tests assert the rule reports *exactly*
the tagged (rule, line) set — right rule id, right line number, nothing
extra — and that the clean twin yields nothing.
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import Baseline, Finding, all_rules, lint_source, run_paths
from repro.lint.baseline import BaselineMatch
from repro.lint.cli import main as lint_main
from repro.lint.engine import Suppressions
from repro.lint.reporters import render_json

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"

_MARKER = re.compile(r"#\s*LINT:\s*([a-z\-]+)")

#: rule id -> (fixture stem, pretend repo-relative path for scoping)
RULE_FIXTURES = {
    "rng-discipline": ("rng_discipline", "src/repro/algorithms/fixture.py"),
    "no-wall-clock": ("wall_clock", "src/repro/service/fixture.py"),
    "counted-probes": ("counted_probes", "src/repro/algorithms/fixture.py"),
    "plan-purity": ("plan_purity", "src/repro/algorithms/fixture.py"),
    "ordered-iteration": ("ordered_iteration", "src/repro/service/fixture.py"),
    "frozen-specs": ("frozen_specs", "src/repro/harness/fixture.py"),
    "obs-passivity": ("obs_passivity", "src/repro/obs/fixture.py"),
}


def rule_by_id(rule_id: str):
    (rule,) = [r for r in all_rules() if r.rule_id == rule_id]
    return rule


def tagged_lines(source: str, rule_id: str) -> set[int]:
    lines = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _MARKER.search(line)
        if match:
            assert match.group(1) == rule_id, (
                f"fixture tags foreign rule {match.group(1)} on line {lineno}"
            )
            lines.add(lineno)
    return lines


@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
def test_rule_catches_every_tagged_line(rule_id):
    stem, pretend = RULE_FIXTURES[rule_id]
    source = (FIXTURES / f"{stem}_bad.py").read_text()
    expected = tagged_lines(source, rule_id)
    assert expected, "violating fixture must tag at least one line"
    report = lint_source(source, pretend, rules=[rule_by_id(rule_id)])
    got = {f.line for f in report.findings}
    assert got == expected
    assert {f.rule for f in report.findings} == {rule_id}


@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
def test_clean_fixture_is_clean(rule_id):
    stem, pretend = RULE_FIXTURES[rule_id]
    source = (FIXTURES / f"{stem}_ok.py").read_text()
    report = lint_source(source, pretend, rules=[rule_by_id(rule_id)])
    assert report.findings == []
    assert report.suppressed == []


# -- scoping ----------------------------------------------------------------


def test_rules_respect_path_scope():
    # Wall-clock reads are fine in benchmarks; set iteration is fine in
    # measurement/; oracle calls are fine in the topology definitions.
    wall = (FIXTURES / "wall_clock_bad.py").read_text()
    assert lint_source(wall, "benchmarks/perf/bench_x.py").findings == []
    ordered = (FIXTURES / "ordered_iteration_bad.py").read_text()
    assert (
        lint_source(
            ordered, "src/repro/measurement/fixture.py",
            rules=[rule_by_id("ordered-iteration")],
        ).findings
        == []
    )
    probes = (FIXTURES / "counted_probes_bad.py").read_text()
    assert (
        lint_source(
            probes, "src/repro/topology/fixture.py",
            rules=[rule_by_id("counted-probes")],
        ).findings
        == []
    )
    # algorithms/base.py hosts the counted helpers: exempt from R3.
    assert (
        lint_source(
            probes, "src/repro/algorithms/base.py",
            rules=[rule_by_id("counted-probes")],
        ).findings
        == []
    )
    # Rng draws and oracle calls are the *point* of the algorithm layer;
    # obs-passivity only polices src/repro/obs/.
    passivity = (FIXTURES / "obs_passivity_bad.py").read_text()
    assert (
        lint_source(
            passivity, "src/repro/algorithms/fixture.py",
            rules=[rule_by_id("obs-passivity")],
        ).findings
        == []
    )


def test_unseeded_default_rng_allowed_only_in_util_rng():
    source = "import numpy as np\nrng = np.random.default_rng()\n"
    assert lint_source(source, "src/repro/util/rng.py").findings == []
    findings = lint_source(source, "src/repro/service/daemon.py").findings
    assert [f.rule for f in findings] == ["rng-discipline"]


# -- suppressions ------------------------------------------------------------


def test_inline_suppression_silences_one_line():
    source = (
        "import time\n"
        "a = time.time()  # repro-lint: allow(no-wall-clock)\n"
        "b = time.time()\n"
    )
    report = lint_source(source, "src/repro/service/fixture.py")
    assert [f.line for f in report.findings] == [3]
    assert [f.line for f in report.suppressed] == [2]


def test_comment_line_suppression_covers_next_line():
    source = (
        "import time\n"
        "# repro-lint: allow(no-wall-clock) -- operator telemetry only\n"
        "a = time.time()\n"
    )
    report = lint_source(source, "src/repro/service/fixture.py")
    assert report.findings == []
    assert [f.line for f in report.suppressed] == [3]


def test_suppression_is_per_rule():
    source = "import time\na = time.time()  # repro-lint: allow(counted-probes)\n"
    report = lint_source(source, "src/repro/service/fixture.py")
    assert [f.rule for f in report.findings] == ["no-wall-clock"]


def test_allow_file_suppresses_whole_file():
    source = (
        "# repro-lint: allow-file(no-wall-clock)\n"
        "import time\n"
        "a = time.time()\n"
        "b = time.perf_counter()\n"
    )
    report = lint_source(source, "src/repro/service/fixture.py")
    assert report.findings == []
    assert len(report.suppressed) == 2


def test_suppression_parser_multiple_rules():
    sup = Suppressions.parse(
        ["x = 1  # repro-lint: allow(no-wall-clock, rng-discipline)"]
    )
    assert sup.by_line[1] == {"no-wall-clock", "rng-discipline"}


# -- baseline ----------------------------------------------------------------


def _finding(rule="counted-probes", path="src/repro/x.py", line=3, text="call()"):
    return Finding(
        path=path, line=line, col=0, rule=rule, message="m", line_text=text
    )


def test_baseline_matches_on_line_text_not_line_number():
    baseline = Baseline.from_findings([_finding(line=3)])
    # Same offending line drifted to a new line number: still grandfathered.
    match = baseline.filter([_finding(line=30)])
    assert match.new == [] and len(match.matched) == 1 and match.unused == []


def test_baseline_surfaces_new_and_stale():
    baseline = Baseline.from_findings([_finding(text="old()")])
    match = baseline.filter([_finding(text="new()")])
    assert [f.line_text for f in match.new] == ["new()"]
    assert [e["line_text"] for e in match.unused] == ["old()"]


def test_baseline_is_a_multiset():
    two = [_finding(line=1), _finding(line=2)]
    baseline = Baseline.from_findings(two)
    match = baseline.filter(two + [_finding(line=3)])
    assert len(match.matched) == 2 and len(match.new) == 1


def test_baseline_roundtrip(tmp_path):
    baseline = Baseline.from_findings([_finding(), _finding(rule="plan-purity")])
    path = tmp_path / "lint-baseline.json"
    baseline.save(path)
    loaded = Baseline.load(path)
    assert loaded.entries == baseline.entries
    data = json.loads(path.read_text())
    assert data["version"] == 1


# -- reporters ---------------------------------------------------------------


def test_json_report_schema():
    run = run_paths(["src/repro/lint"], root=REPO_ROOT)
    match = BaselineMatch(new=run.findings, matched=[], unused=[])
    payload = json.loads(render_json(run, match, all_rules()))
    assert payload["version"] == 1
    assert payload["tool"] == "repro-lint"
    assert payload["checked_files"] > 0
    assert {r["id"] for r in payload["rules"]} == {
        "counted-probes",
        "frozen-specs",
        "no-wall-clock",
        "obs-passivity",
        "ordered-iteration",
        "plan-purity",
        "rng-discipline",
    }
    for rule in payload["rules"]:
        assert rule["description"] and rule["invariant"]
    for finding in payload["findings"]:
        assert set(finding) == {"rule", "path", "line", "col", "message", "line_text"}
    assert payload["exit_code"] in (0, 1)
    # The linter lints itself clean.
    assert payload["findings"] == []


# -- the committed tree is clean --------------------------------------------


def test_committed_tree_lints_clean():
    """`python -m repro.lint src/ tests/ benchmarks/` exits 0 (acceptance)."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", "src", "tests", "benchmarks"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        check=False,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 finding(s)" in proc.stdout


def test_cli_reports_injected_violation(tmp_path):
    bad = tmp_path / "src" / "repro" / "service" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\nnow = time.time()\n")
    rc = lint_main([str(bad), "--root", str(tmp_path)])
    assert rc == 1


def test_cli_write_then_apply_baseline(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "service" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\nnow = time.time()\n")
    assert lint_main(["src", "--root", str(tmp_path), "--write-baseline"]) == 0
    capsys.readouterr()
    # Auto-applied on the next run: grandfathered, exit 0.
    assert lint_main(["src", "--root", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out
    # --no-baseline surfaces it again.
    assert lint_main(["src", "--root", str(tmp_path), "--no-baseline"]) == 1


def test_cli_select_unknown_rule_is_usage_error(tmp_path):
    assert lint_main(["--root", str(tmp_path), "--select", "nope"]) == 2
