"""Tests for empirical CDFs, including property-based invariants."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.cdf import EmpiricalCdf
from repro.util.errors import DataError

finite_samples = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=200,
)


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(DataError):
            EmpiricalCdf.from_values([])

    def test_non_finite_rejected(self):
        with pytest.raises(DataError):
            EmpiricalCdf.from_values([1.0, float("nan")])
        with pytest.raises(DataError):
            EmpiricalCdf.from_values([1.0, float("inf")])


class TestEvaluation:
    def test_known_values(self):
        cdf = EmpiricalCdf.from_values([1, 2, 3, 4])
        assert cdf.probability_at_or_below(0.5) == 0.0
        assert cdf.probability_at_or_below(2) == 0.5
        assert cdf.probability_at_or_below(10) == 1.0
        assert cdf.count_at_or_below(3) == 3

    def test_fraction_in_range(self):
        cdf = EmpiricalCdf.from_values([0.3, 0.7, 1.0, 1.5, 3.0])
        assert cdf.fraction_in_range(0.5, 2.0) == pytest.approx(3 / 5)

    def test_fraction_bad_range(self):
        cdf = EmpiricalCdf.from_values([1.0])
        with pytest.raises(DataError):
            cdf.fraction_in_range(2.0, 1.0)

    def test_median_simple(self):
        assert EmpiricalCdf.from_values([1, 2, 3]).median == 2

    def test_quantile_bounds(self):
        cdf = EmpiricalCdf.from_values([5, 10])
        with pytest.raises(DataError):
            cdf.quantile(1.5)


class TestProperties:
    @given(finite_samples)
    def test_cdf_monotone_nondecreasing(self, sample):
        cdf = EmpiricalCdf.from_values(sample)
        xs = np.linspace(min(sample) - 1, max(sample) + 1, 50)
        ys = cdf.evaluate(xs)
        assert np.all(np.diff(ys) >= -1e-12)

    @given(finite_samples)
    def test_cdf_limits(self, sample):
        cdf = EmpiricalCdf.from_values(sample)
        assert cdf.probability_at_or_below(min(sample) - 1) == 0.0
        assert cdf.probability_at_or_below(max(sample) + 1) == 1.0

    @given(finite_samples)
    def test_quantile_within_support(self, sample):
        cdf = EmpiricalCdf.from_values(sample)
        lo, hi = cdf.support()
        for q in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert lo - 1e-9 <= cdf.quantile(q) <= hi + 1e-9

    @given(finite_samples, st.floats(min_value=-1e6, max_value=1e6))
    def test_count_matches_manual(self, sample, x):
        cdf = EmpiricalCdf.from_values(sample)
        assert cdf.count_at_or_below(x) == sum(1 for v in sample if v <= x)

    @given(finite_samples)
    def test_full_range_fraction_is_one(self, sample):
        cdf = EmpiricalCdf.from_values(sample)
        assert cdf.fraction_in_range(min(sample), max(sample)) == pytest.approx(1.0)


class TestSeries:
    def test_as_series_log_requires_positive_floor(self):
        cdf = EmpiricalCdf.from_values([0.001, 1.0, 10.0])
        xs, ys = cdf.as_series(points=32, log_x=True)
        assert xs.shape == ys.shape == (32,)
        assert np.all(xs > 0)
        assert ys[-1] == pytest.approx(1.0)
