"""Tests for the Section 3.1 / 3.2 measurement pipelines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.measurement.azureus_pipeline import (
    AzureusStudy,
    AzureusStudyConfig,
    _largest_within_factor,
)
from repro.measurement.dns_pipeline import DnsStudy, DnsStudyConfig
from repro.topology.internet import InternetConfig, SyntheticInternet


@pytest.fixture(scope="module")
def study_internet():
    """A mid-size Internet shared by the pipeline tests."""
    config = InternetConfig(
        n_isps=4,
        pops_per_isp_low=3,
        pops_per_isp_high=5,
        en_per_pop_low=12,
        en_per_pop_high=60,
        dns_probability_campus=0.8,
    )
    return SyntheticInternet.generate(config, seed=77)


class TestDnsStudy:
    @pytest.fixture(scope="class")
    def result(self, study_internet):
        return DnsStudy(study_internet, seed=7).run()

    def test_pairs_produced(self, result):
        assert len(result.measurements) > 50
        assert result.servers_traced > 50
        assert result.clusters_found > 3

    def test_prediction_measures_positive(self, result):
        values = result.prediction_measures()
        assert np.all(values > 0)

    def test_same_domain_pairs_excluded_from_measurements(self, result):
        assert all(not m.same_domain for m in result.measurements)

    def test_filters_counted(self, result):
        # With additive ping noise some legs must come out negative.
        assert result.pairs_discarded_negative > 0

    def test_hops_filter_respected(self, result):
        config = DnsStudyConfig()
        for m in result.measurements:
            assert max(m.hops_a, m.hops_b) <= config.max_hops_from_common

    def test_predicted_filter_respected(self, result):
        for m in result.measurements:
            assert m.predicted_ms <= DnsStudyConfig().max_predicted_ms

    def test_intra_much_smaller_than_inter(self, result):
        intra = np.median(result.intra_domain_predicted_10)
        inter = np.median(result.inter_domain_predicted_10)
        assert inter > 3 * intra

    def test_fig4_bins_available(self, result):
        bins = result.fig4_bins()
        assert bins.centers.size >= 2


class TestLargestWithinFactor:
    def test_known_case(self):
        latencies = np.array([1.0, 1.2, 1.4, 5.0, 5.5])
        keep = _largest_within_factor(latencies, 1.5)
        assert sorted(latencies[keep].tolist()) == [1.0, 1.2, 1.4]

    def test_all_within(self):
        latencies = np.array([2.0, 2.5, 3.0])
        keep = _largest_within_factor(latencies, 1.5)
        assert keep.size == 3

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.1, max_value=100.0),
            min_size=1,
            max_size=40,
        )
    )
    def test_window_property(self, values):
        latencies = np.asarray(values)
        keep = _largest_within_factor(latencies, 1.5)
        kept = latencies[keep]
        assert kept.size >= 1
        assert kept.max() <= 1.5 * kept.min() + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.1, max_value=100.0),
            min_size=2,
            max_size=25,
        )
    )
    def test_maximality_vs_brute_force(self, values):
        latencies = np.asarray(values)
        keep = _largest_within_factor(latencies, 1.5)
        # Brute force: try every element as the window floor.
        best = max(
            int(np.count_nonzero((latencies >= lo) & (latencies <= 1.5 * lo)))
            for lo in latencies
        )
        assert keep.size == best


class TestAzureusStudy:
    @pytest.fixture(scope="class")
    def result(self, study_internet):
        return AzureusStudy(study_internet, seed=11).run()

    def test_retention_filters_applied(self, result):
        assert 0 < result.peers_retained <= result.peers_responsive
        assert result.peers_responsive <= result.peers_total

    def test_clusters_share_hub(self, result, study_internet):
        for cluster in result.unpruned_clusters[:10]:
            assert cluster.size >= 2
            assert cluster.hub_router_id >= 0

    def test_pruned_clusters_satisfy_band(self, result):
        for cluster in result.pruned_clusters:
            latencies = np.asarray(cluster.latencies())
            assert latencies.max() <= 1.5 * latencies.min() + 1e-9

    def test_pruned_subset_of_unpruned(self, result):
        unpruned = {c.hub_router_id: set(c.peer_ids) for c in result.unpruned_clusters}
        for cluster in result.pruned_clusters:
            assert set(cluster.peer_ids) <= unpruned[cluster.hub_router_id]

    def test_cumulative_counts_monotone(self, result):
        points = result.cumulative_peer_count_by_size(pruned=True)
        counts = [c for _s, c in points]
        assert counts == sorted(counts)

    def test_top_clusters_ordering(self, result):
        top = result.top_clusters(5)
        sizes = [c.size for c in top]
        assert sizes == sorted(sizes, reverse=True)

    def test_hub_latencies_positive(self, result):
        for cluster in result.pruned_clusters:
            assert all(v > 0 for v in cluster.latencies())

    def test_batched_routes_bit_identical(self, study_internet, result):
        """Per-vantage ``routes_from`` sweeps replace per-trace routing
        without moving a draw: the whole study is unchanged."""
        scalar = AzureusStudy(
            study_internet, AzureusStudyConfig(batch_routes=False), seed=11
        ).run()
        assert scalar.peers_retained == result.peers_retained
        assert [c.peer_ids for c in scalar.pruned_clusters] == [
            c.peer_ids for c in result.pruned_clusters
        ]
        assert [c.hub_latency_ms for c in scalar.unpruned_clusters] == [
            c.hub_latency_ms for c in result.unpruned_clusters
        ]
