"""Tests for ping, TCP-ping, rockettrace and King simulations."""

import numpy as np
import pytest

from repro.measurement.king import KingConfig, KingEstimator
from repro.measurement.ping import Pinger
from repro.measurement.tcpping import TcpPinger
from repro.measurement.traceroute import (
    Rockettrace,
    TracerouteConfig,
    last_common_router,
)


class TestPinger:
    def test_ping_host_close_to_truth(self, small_internet):
        pinger = Pinger(small_internet, seed=0)
        mh = small_internet.measurement_host_id
        dns = small_internet.dns_server_ids[0]
        true = small_internet.route(mh, dns).latency_ms
        measured = pinger.ping_host(mh, dns)
        assert measured == pytest.approx(true, rel=0.05, abs=2.0)
        assert measured > 0

    def test_ping_router_on_own_chain(self, small_internet):
        pinger = Pinger(small_internet, seed=1)
        mh = small_internet.measurement_host_id
        router, cum = small_internet.upward_chain(mh)[-1]
        measured = pinger.ping_router(mh, router)
        assert measured == pytest.approx(cum, rel=0.1, abs=1.5)

    def test_ping_remote_pop_router(self, small_internet):
        pinger = Pinger(small_internet, seed=2)
        mh = small_internet.measurement_host_id
        remote_pop = small_internet.pops[-1]
        measured = pinger.ping_router(mh, remote_pop.router_ids[0])
        assert measured is not None
        assert measured > 1.0

    def test_unresponsive_host_returns_none(self, small_internet):
        silent = [
            h.host_id
            for h in small_internet.hosts
            if not h.responds_to_traceroute
        ]
        if not silent:
            pytest.skip("no silent hosts in fixture")
        pinger = Pinger(small_internet, seed=3)
        assert pinger.ping_host(small_internet.measurement_host_id, silent[0]) is None


class TestTcpPinger:
    def test_responding_peer_measured(self, small_internet):
        responding = [
            p
            for p in small_internet.peer_ids
            if small_internet.host(p).responds_to_tcp_ping
        ]
        tcp = TcpPinger(small_internet, seed=0)
        mh = small_internet.measurement_host_id
        true = small_internet.route(mh, responding[0]).latency_ms
        measured = tcp.measure(mh, responding[0])
        assert measured is not None
        assert measured >= true * 0.8  # processing delay only adds

    def test_unresponsive_peer_none(self, small_internet):
        silent = [
            p
            for p in small_internet.peer_ids
            if not small_internet.host(p).responds_to_tcp_ping
        ]
        tcp = TcpPinger(small_internet, seed=1)
        assert tcp.measure(small_internet.measurement_host_id, silent[0]) is None


class TestRockettrace:
    def test_hops_follow_route(self, small_internet):
        tracer = Rockettrace(
            small_internet, TracerouteConfig(router_response_rate=1.0), seed=0
        )
        mh = small_internet.measurement_host_id
        dns = small_internet.dns_server_ids[0]
        trace = tracer.trace(mh, dns)
        route = small_internet.route(mh, dns)
        assert tuple(h.router_id for h in trace.hops) == route.routers

    def test_hop_rtts_roughly_cumulative(self, small_internet):
        tracer = Rockettrace(
            small_internet, TracerouteConfig(router_response_rate=1.0), seed=1
        )
        mh = small_internet.measurement_host_id
        dns = small_internet.dns_server_ids[1]
        trace = tracer.trace(mh, dns)
        route = small_internet.route(mh, dns)
        for hop, cum in zip(trace.hops, route.cumulative_ms):
            assert hop.rtt_ms == pytest.approx(cum, rel=0.15, abs=1.5)

    def test_silent_routers_appear_as_gaps(self, small_internet):
        tracer = Rockettrace(
            small_internet, TracerouteConfig(router_response_rate=0.0), seed=2
        )
        mh = small_internet.measurement_host_id
        trace = tracer.trace(mh, small_internet.dns_server_ids[0])
        assert all(not hop.responded for hop in trace.hops)
        assert trace.last_valid_router() is None

    def test_edge_routers_unannotated(self, small_internet):
        tracer = Rockettrace(
            small_internet, TracerouteConfig(router_response_rate=1.0), seed=3
        )
        mh = small_internet.measurement_host_id
        campus_dns = small_internet.dns_server_ids[0]
        trace = tracer.trace(mh, campus_dns)
        kinds = {
            small_internet.router(h.router_id).kind.value: h.annotated
            for h in trace.hops
            if h.responded
        }
        if "edge" in kinds:
            assert kinds["edge"] is False

    def test_routes_from_bit_identical_to_scalar(self, small_internet):
        """The batched per-vantage route construction must not move a
        single float: same router tuples, same cumulative latencies."""
        src = small_internet.vantage_ids[0]
        dsts = list(small_internet.peer_ids[:120]) + [src]
        batched = small_internet.routes_from(src, dsts)
        for dst, route in zip(dsts, batched):
            scalar = small_internet.route(src, int(dst))
            assert route.routers == scalar.routers
            assert route.latency_ms == scalar.latency_ms
            assert route.cumulative_ms == scalar.cumulative_ms

    def test_trace_many_bit_identical_to_scalar_traces(self, small_internet):
        """Batched tracing replays the scalar noise stream exactly."""
        src = small_internet.vantage_ids[0]
        dsts = small_internet.peer_ids[:60]
        batched = Rockettrace(small_internet, seed=11).trace_many(src, dsts)
        scalar_tracer = Rockettrace(small_internet, seed=11)
        for dst, result in zip(dsts, batched):
            assert result == scalar_tracer.trace(src, int(dst))

    def test_closest_upstream_pop_matches_ground_truth_mostly(self, small_internet):
        tracer = Rockettrace(
            small_internet, TracerouteConfig(router_response_rate=1.0), seed=4
        )
        mh = small_internet.measurement_host_id
        correct = 0
        sample = small_internet.dns_server_ids[:30]
        for dns in sample:
            trace = tracer.trace(mh, dns)
            found = trace.closest_upstream_pop()
            if found is None:
                continue
            (as_name, _city), _hop = found
            truth_isp = small_internet.isps[small_internet.host(dns).isp_id].name
            correct += as_name == truth_isp
        # Misnamed routers cause a few errors; most must be right.
        assert correct >= int(0.8 * len(sample))

    def test_last_common_router_same_en(self, small_internet):
        by_en = {}
        for dns in small_internet.dns_server_ids:
            by_en.setdefault(small_internet.host(dns).en_id, []).append(dns)
        same_en = [v for v in by_en.values() if len(v) >= 2]
        if not same_en:
            pytest.skip("no co-located DNS pairs in fixture")
        a, b = same_en[0][:2]
        tracer = Rockettrace(
            small_internet, TracerouteConfig(router_response_rate=1.0), seed=5
        )
        mh = small_internet.measurement_host_id
        common = last_common_router(tracer.trace(mh, a), tracer.trace(mh, b))
        # Both servers share their EN gateway, which must be the turnaround.
        en = small_internet.end_network(small_internet.host(a).en_id)
        assert common == en.attachment_router_ids[0]

    def test_last_common_router_requires_same_source(self, small_internet):
        tracer = Rockettrace(small_internet, seed=6)
        va, vb = small_internet.vantage_ids[:2]
        dns = small_internet.dns_server_ids[0]
        assert last_common_router(tracer.trace(va, dns), tracer.trace(vb, dns)) is None


class TestKing:
    def test_same_domain_unusable(self, small_internet):
        by_domain = {}
        for dns in small_internet.dns_server_ids:
            domain = small_internet.host(dns).domain
            by_domain.setdefault(domain, []).append(dns)
        same = [v for v in by_domain.values() if len(v) >= 2]
        king = KingEstimator(small_internet, seed=0)
        if same:
            a, b = same[0][:2]
            assert not king.usable(a, b)
            assert king.measure(a, b) is None

    def test_estimate_in_plausible_range(self, small_internet):
        king = KingEstimator(small_internet, seed=1)
        dns = small_internet.dns_server_ids
        pairs = [
            (a, b)
            for i, a in enumerate(dns[:12])
            for b in dns[i + 1 : 12]
            if king.usable(a, b)
        ]
        assert pairs
        for a, b in pairs[:10]:
            true = small_internet.route(a, b).latency_ms
            measured = king.measure(a, b)
            assert 0 < measured < 5 * true + 20

    def test_lag_inflates_short_pairs_on_average(self, small_internet):
        config = KingConfig(alternate_path_base=0.0, alternate_path_slope_per_ms=0.0)
        king = KingEstimator(small_internet, config=config, seed=2)
        by_en = {}
        for dns in small_internet.dns_server_ids:
            by_en.setdefault(small_internet.host(dns).en_id, []).append(dns)
        # Cross-EN same-PoP pairs (sub-15 ms): lag should inflate them.
        dns_ids = small_internet.dns_server_ids
        pairs = [
            (a, b)
            for i, a in enumerate(dns_ids[:40])
            for b in dns_ids[i + 1 : 40]
            if king.usable(a, b)
            and small_internet.same_pop(a, b)
            and not small_internet.same_end_network(a, b)
        ]
        if len(pairs) < 3:
            pytest.skip("not enough same-PoP DNS pairs")
        ratios = []
        for a, b in pairs:
            true = small_internet.route(a, b).latency_ms
            ratios.append(king.measure(a, b) / true)
        assert np.mean(ratios) > 1.0
