"""Tests for the unified workload/query-engine layer (repro.harness)."""

import numpy as np
import pytest

from repro.algorithms import MeridianSearch, RandomProbeSearch
from repro.harness import (
    AggregateStats,
    NoiseSpec,
    QueryEngine,
    SamplingSpec,
    Scenario,
    get_scenario,
    list_scenarios,
    register_scenario,
    score_batch,
    score_single,
)
from repro.latency.builder import build_clustered_oracle
from repro.topology.clustered import ClusteredConfig
from repro.topology.oracle import NoisyOracle
from repro.util.errors import ConfigurationError, DataError

SMALL = ClusteredConfig(n_clusters=4, end_networks_per_cluster=8, delta=0.2)


@pytest.fixture(scope="module")
def small_world():
    return build_clustered_oracle(SMALL, seed=5)


class TestScenarioRegistry:
    def test_canonical_scenarios_registered(self):
        names = list_scenarios()
        assert "paper-comparison" in names
        assert "skewed-targets" in names

    def test_get_returns_registered_spec(self):
        scenario = get_scenario("paper-comparison")
        assert scenario.protocol == "per-target"
        assert scenario.noise is not None and scenario.noise.additive_ms == 0.3

    def test_register_and_lookup_roundtrip(self):
        scenario = Scenario(name="test-roundtrip", topology=SMALL, seed=3)
        register_scenario(scenario)
        assert get_scenario("test-roundtrip") is scenario

    def test_duplicate_registration_rejected(self):
        scenario = Scenario(name="test-duplicate", topology=SMALL)
        register_scenario(scenario)
        with pytest.raises(ConfigurationError):
            register_scenario(scenario)
        register_scenario(scenario.with_(trials=2), overwrite=True)
        assert get_scenario("test-duplicate").trials == 2

    def test_unknown_scenario_raises(self):
        with pytest.raises(ConfigurationError):
            get_scenario("no-such-workload")

    def test_invalid_protocol_and_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario(name="bad", topology=SMALL, protocol="telepathy")
        with pytest.raises(ConfigurationError):
            SamplingSpec(n_targets=5, policy="psychic")

    def test_world_seeds_are_deterministic(self):
        scenario = Scenario(name="seeds", topology=SMALL, trials=3, seed=11)
        assert scenario.world_seeds() == scenario.world_seeds()
        assert len(set(scenario.world_seeds())) == 3


class TestSampling:
    def test_uniform_targets_unique_and_in_range(self, small_world):
        rng = np.random.default_rng(1)
        targets = SamplingSpec(n_targets=10).sample(small_world, rng)
        assert targets.size == np.unique(targets).size == 10
        assert targets.min() >= 0
        assert targets.max() < small_world.topology.n_nodes

    def test_skewed_targets_favour_low_clusters(self, small_world):
        rng = np.random.default_rng(2)
        spec = SamplingSpec(n_targets=20, policy="skewed", skew=3.0)
        clusters = small_world.topology.host_cluster[spec.sample(small_world, rng)]
        uniform_clusters = small_world.topology.host_cluster[
            SamplingSpec(n_targets=20).sample(small_world, np.random.default_rng(2))
        ]
        assert clusters.mean() < uniform_clusters.mean()

    def test_single_cluster_policy(self, small_world):
        rng = np.random.default_rng(3)
        spec = SamplingSpec(n_targets=6, policy="single-cluster", cluster=2)
        targets = spec.sample(small_world, rng)
        assert (small_world.topology.host_cluster[targets] == 2).all()

    def test_oversized_target_count_rejected(self, small_world):
        with pytest.raises(ConfigurationError):
            SamplingSpec(n_targets=10_000).sample(
                small_world, np.random.default_rng(0)
            )


class TestScoring:
    def test_vectorized_matches_scalar_reference(self, small_world):
        """The batch scorer must agree with the per-target row-scan path."""
        matrix = small_world.matrix.values
        host_cluster = small_world.topology.host_cluster
        rng = np.random.default_rng(7)
        n = small_world.topology.n_nodes
        targets = rng.choice(n, size=12, replace=False)
        members = np.setdiff1d(np.arange(n), targets)
        # Repeat targets (sampled protocol) and pick arbitrary found members.
        query_targets = rng.choice(targets, size=40)
        found = rng.choice(members, size=40)
        exact, cluster = score_batch(
            matrix, members, query_targets, found, host_cluster=host_cluster
        )
        for i in range(40):
            e, c = score_single(
                matrix, members, int(query_targets[i]), int(found[i]),
                host_cluster=host_cluster,
            )
            assert e == exact[i]
            assert c == cluster[i]

    def test_true_nearest_scores_exact(self, small_world):
        matrix = small_world.matrix.values
        n = small_world.topology.n_nodes
        targets = np.array([0, 5])
        members = np.setdiff1d(np.arange(n), targets)
        best = members[np.argmin(matrix[np.ix_(targets, members)], axis=1)]
        exact, cluster = score_batch(
            matrix, members, targets, best,
            host_cluster=small_world.topology.host_cluster,
        )
        assert exact.all()
        assert cluster.all()

    def test_empty_batch(self, small_world):
        exact, cluster = score_batch(
            small_world.matrix.values,
            np.arange(4),
            np.array([], dtype=int),
            np.array([], dtype=int),
        )
        assert exact.size == 0 and cluster.size == 0

    def test_mismatched_shapes_rejected(self, small_world):
        with pytest.raises(DataError):
            score_batch(
                small_world.matrix.values, np.arange(4),
                np.array([1, 2]), np.array([3]),
            )


class TestQueryEngine:
    def test_per_target_trial_matches_hand_rolled_loop(self, small_world):
        """The engine must reproduce the historical bespoke loop exactly."""
        sampling = SamplingSpec(n_targets=10)
        noise = NoiseSpec(sigma=0.05, additive_ms=0.3)
        record = QueryEngine().run_world_trial(
            small_world,
            RandomProbeSearch(budget=8),
            sampling=sampling,
            protocol="per-target",
            seed=19,
            noise=noise,
        )
        # The old-style loop, written out by hand.
        rng = np.random.default_rng(19)
        targets = rng.choice(small_world.topology.n_nodes, size=10, replace=False)
        members = np.setdiff1d(np.arange(small_world.topology.n_nodes), targets)
        noisy = NoisyOracle(small_world.oracle, sigma=0.05, additive_ms=0.3, seed=19)
        algorithm = RandomProbeSearch(budget=8)
        algorithm.build(small_world.oracle, members, seed=19, probe_oracle=noisy)
        exact = cluster = probes = 0
        for target in targets:
            result = algorithm.query(int(target), seed=int(target))
            row = small_world.matrix.values[target, members]
            exact += (
                small_world.matrix.values[target, result.found] <= row.min() + 1e-12
            )
            cluster += small_world.topology.same_cluster(result.found, int(target))
            probes += result.probes
        assert record.exact_rate == exact / 10
        assert record.cluster_rate == cluster / 10
        assert record.mean_probes_per_query == probes / 10
        assert (record.targets == targets).all()

    def test_parallel_fanout_matches_sequential(self):
        scenario = Scenario(
            name="test-fanout",
            topology=SMALL,
            sampling=SamplingSpec(n_targets=8),
            n_queries=20,
            trials=2,
            seed=31,
        )
        sequential = QueryEngine().run_scenario(scenario, MeridianSearch)
        parallel = QueryEngine(workers=2).run_scenario(scenario, MeridianSearch)
        assert sequential.n_trials == parallel.n_trials == 2
        for a, b in zip(sequential.records, parallel.records):
            assert a.world_seed == b.world_seed
            assert (a.targets == b.targets).all()
            assert (a.found == b.found).all()
            assert (a.probes == b.probes).all()

    def test_compare_shares_world_and_targets(self, small_world):
        scenario = Scenario(
            name="test-compare",
            topology=SMALL,
            sampling=SamplingSpec(n_targets=8),
            noise=NoiseSpec(sigma=0.05),
            protocol="per-target",
            seed=13,
        )
        records = QueryEngine().compare(
            scenario, [MeridianSearch, RandomProbeSearch], world=small_world
        )
        assert [r.scheme for r in records] == ["meridian", "random-probe"]
        assert (records[0].targets == records[1].targets).all()
        for record in records:
            assert 0.0 <= record.exact_rate <= 1.0
            assert record.mean_probes_per_query > 0

    def test_sampled_protocol_draws_from_target_pool(self, small_world):
        record = QueryEngine().run_world_trial(
            small_world,
            RandomProbeSearch(budget=4),
            sampling=SamplingSpec(n_targets=5),
            protocol="sampled",
            n_queries=30,
            seed=3,
        )
        assert record.n_queries == 30
        assert np.unique(record.targets).size <= 5
        # Found members are never targets (members are the complement).
        assert not np.isin(record.found, record.targets).any()

    def test_compare_rejects_multi_trial_scenarios(self, small_world):
        """compare() runs one shared world; trials != 1 must fail loudly
        rather than silently dropping trials."""
        scenario = Scenario(
            name="test-compare-trials",
            topology=SMALL,
            sampling=SamplingSpec(n_targets=6),
            trials=2,
        )
        with pytest.raises(ConfigurationError, match="trials=2"):
            QueryEngine().compare(scenario, [RandomProbeSearch], world=small_world)

    def test_compare_row_reproducible_via_run_world_trial(self, small_world):
        """A compare() row under the per-target protocol is exactly one
        run_world_trial on a world built from the same seed."""
        scenario = Scenario(
            name="test-compare-repro",
            topology=SMALL,
            sampling=SamplingSpec(n_targets=8),
            protocol="per-target",
            seed=21,
        )
        record = QueryEngine().compare(
            scenario, [lambda: RandomProbeSearch(budget=6)], world=small_world
        )[0]
        solo = QueryEngine().run_world_trial(
            small_world,
            RandomProbeSearch(budget=6),
            sampling=SamplingSpec(n_targets=8),
            protocol="per-target",
            seed=21,
        )
        assert (record.targets == solo.targets).all()
        assert (record.found == solo.found).all()

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ConfigurationError):
            QueryEngine(workers=0)

    def test_workload_studies_are_cached_process_wide(self):
        from repro.harness import workloads

        study_a = workloads.dns_study(2008, False)
        study_b = workloads.dns_study(2008, False)
        assert study_a is study_b  # the process-wide cache, not a rebuild


class TestResults:
    def test_aggregate_stats_median_min_max(self):
        stats = AggregateStats.from_values("m", [0.3, 0.1, 0.2])
        assert stats.median == 0.2
        assert stats.minimum == 0.1
        assert stats.maximum == 0.3
        assert stats.count == 3
        assert "median" in stats.describe()

    def test_aggregate_of_nothing_rejected(self):
        with pytest.raises(DataError):
            AggregateStats.from_values("m", [])

    def test_format_trial_records_renders_all_metrics(self, small_world):
        from repro.analysis.compare import format_trial_records

        record = QueryEngine().run_world_trial(
            small_world,
            RandomProbeSearch(budget=4),
            sampling=SamplingSpec(n_targets=5),
            n_queries=10,
            seed=2,
        )
        table = format_trial_records([record])
        assert "random-probe" in table
        assert "P(exact closest)" in table
        assert "aux/query" in table

    def test_scenario_result_aggregation(self):
        scenario = Scenario(
            name="test-agg",
            topology=SMALL,
            sampling=SamplingSpec(n_targets=6),
            n_queries=10,
            trials=2,
            seed=17,
        )
        result = QueryEngine().run_scenario(
            scenario, lambda: RandomProbeSearch(budget=4)
        )
        stats = result.aggregate("exact_rate")
        assert stats.count == 2
        assert stats.minimum <= stats.median <= stats.maximum
        assert result.values("mean_probes_per_query") == [4.0, 4.0]
