"""Tests for table rendering, ASCII plots and comparison records."""

import pytest

from repro.analysis.compare import Comparison, ShapeCheck, format_comparisons
from repro.analysis.compare import format_shape_checks
from repro.analysis.plotting import ascii_cdf, ascii_series
from repro.analysis.tables import format_table, series_table
from repro.util.errors import DataError


class TestFormatTable:
    def test_basic_rendering(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["x", 0.0001]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "---" in lines[1] or "-" in lines[1]
        assert len(lines) == 4

    def test_row_width_mismatch(self):
        with pytest.raises(DataError):
            format_table(["a"], [[1, 2]])

    def test_empty_headers(self):
        with pytest.raises(DataError):
            format_table([], [])

    def test_float_formatting_compact(self):
        out = format_table(["v"], [[123456.789]])
        assert "1.23e+05" in out or "123457" in out or "1.23e+5" in out


class TestSeriesTable:
    def test_alignment(self):
        out = series_table("x", [1, 2], {"y": [10, 20], "z": [0.5, 0.6]})
        assert "x" in out and "y" in out and "z" in out
        assert len(out.splitlines()) == 4

    def test_length_mismatch(self):
        with pytest.raises(DataError):
            series_table("x", [1, 2], {"y": [10]})


class TestAsciiPlots:
    def test_series_contains_legend_and_bounds(self):
        out = ascii_series([1, 2, 3], {"up": [1, 2, 3], "down": [3, 2, 1]})
        assert "up" in out and "down" in out
        assert "└" in out

    def test_series_empty_rejected(self):
        with pytest.raises(DataError):
            ascii_series([], {})

    def test_series_length_mismatch(self):
        with pytest.raises(DataError):
            ascii_series([1, 2], {"y": [1]})

    def test_cdf_plot(self):
        out = ascii_cdf({"a": [1, 2, 3], "b": [10, 20, 30]}, log_x=True)
        assert "a" in out and "b" in out

    def test_flat_series_does_not_crash(self):
        out = ascii_series([1, 2], {"flat": [5, 5]})
        assert "flat" in out


class TestCompare:
    def test_shape_check_caches_result(self):
        calls = []

        def predicate():
            calls.append(1)
            return True

        check = ShapeCheck("e", "claim", predicate)
        assert check.evaluate() and check.evaluate()
        assert len(calls) == 1

    def test_format_comparisons(self):
        out = format_comparisons(
            [Comparison("Fig 1", "thing", "1", "2", "note")]
        )
        assert "Fig 1" in out and "note" in out

    def test_format_shape_checks_pass_fail(self):
        out = format_shape_checks(
            [
                ShapeCheck("e", "good", lambda: True),
                ShapeCheck("e", "bad", lambda: False),
            ]
        )
        assert "PASS" in out and "FAIL" in out
