"""Tests for unit conversions and validation helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.errors import ConfigurationError
from repro.util.units import (
    INTRA_EN_LATENCY_MS,
    ms_to_seconds,
    ms_to_us,
    seconds_to_ms,
    us_to_ms,
)
from repro.util.validate import (
    require,
    require_in_range,
    require_non_negative,
    require_positive,
    require_type,
)


class TestUnits:
    def test_paper_intra_en_latency_is_100_microseconds(self):
        assert ms_to_us(INTRA_EN_LATENCY_MS) == pytest.approx(100.0)

    def test_ms_seconds_inverse(self):
        assert seconds_to_ms(ms_to_seconds(123.4)) == pytest.approx(123.4)

    @given(st.floats(min_value=0, max_value=1e6, allow_nan=False))
    def test_us_roundtrip(self, value):
        assert us_to_ms(ms_to_us(value)) == pytest.approx(value)

    @given(st.floats(min_value=1e-3, max_value=1e6))
    def test_conversions_preserve_order_of_magnitude(self, ms):
        assert ms_to_us(ms) == pytest.approx(ms * 1000)
        assert ms_to_seconds(ms) == pytest.approx(ms / 1000)


class TestValidate:
    def test_require_passes(self):
        require(True, "never raised")

    def test_require_raises_with_message(self):
        with pytest.raises(ConfigurationError, match="broken"):
            require(False, "broken")

    def test_require_positive(self):
        require_positive(0.1, "x")
        with pytest.raises(ConfigurationError, match="x"):
            require_positive(0.0, "x")

    def test_require_non_negative(self):
        require_non_negative(0.0, "x")
        with pytest.raises(ConfigurationError):
            require_non_negative(-1e-9, "x")

    def test_require_in_range_inclusive(self):
        require_in_range(0.0, "x", 0.0, 1.0)
        require_in_range(1.0, "x", 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            require_in_range(1.0001, "x", 0.0, 1.0)

    def test_require_type(self):
        require_type(3, "x", int)
        with pytest.raises(ConfigurationError):
            require_type("3", "x", int)
