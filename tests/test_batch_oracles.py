"""Batch-vs-scalar equivalence for the probe fast path.

Every oracle's ``latency_block`` / ``latencies_from`` must agree with the
element-wise scalar loop; ``RouterLevelTopology.latency_matrix`` must agree
with per-pair ``route()``; probe accounting must be identical whichever
path an algorithm takes; and the engine's hoisted sampled loop must be
bit-identical to the original draw-then-query sequence.
"""

import numpy as np
import pytest

from repro.algorithms import BeaconSearch, RandomProbeSearch
from repro.algorithms.base import NearestPeerAlgorithm
from repro.harness.engine import QueryEngine
from repro.harness.scenario import SamplingSpec
from repro.latency.builder import build_clustered_oracle
from repro.latency.matrix import LatencyMatrix
from repro.measurement.azureus_pipeline import AzureusStudy, AzureusStudyConfig
from repro.measurement.dns_pipeline import DnsStudy, DnsStudyConfig
from repro.topology.clustered import ClusteredConfig
from repro.topology.internet import InternetConfig, SyntheticInternet
from repro.topology.oracle import (
    CountingOracle,
    MatrixOracle,
    NoisyOracle,
    batch_latencies_from,
    batch_latency_block,
)
from repro.util.rng import make_rng


@pytest.fixture(scope="module")
def matrix():
    rng = np.random.default_rng(42)
    half = rng.uniform(1.0, 200.0, size=(12, 12))
    full = np.triu(half, k=1)
    full = full + full.T
    return full


@pytest.fixture(scope="module")
def small_internet():
    config = InternetConfig(
        n_isps=3,
        pops_per_isp_low=2,
        pops_per_isp_high=4,
        en_per_pop_low=4,
        en_per_pop_high=12,
    )
    return SyntheticInternet.generate(config, seed=9)


class _ScalarOnly:
    """Oracle shim exposing only the scalar protocol (forces fallbacks)."""

    def __init__(self, inner):
        self._inner = inner

    @property
    def n_nodes(self):
        return self._inner.n_nodes

    def latency_ms(self, a, b):
        return self._inner.latency_ms(a, b)


class _LegacyRowOracle:
    """Third-party style oracle with the old single-argument latencies_from."""

    def __init__(self, matrix):
        self._matrix = np.asarray(matrix, dtype=float)

    @property
    def n_nodes(self):
        return self._matrix.shape[0]

    def latency_ms(self, a, b):
        return float(self._matrix[a, b])

    def latencies_from(self, a):
        return self._matrix[a]


def scalar_block(oracle, rows, cols):
    return np.array(
        [[oracle.latency_ms(int(a), int(b)) for b in cols] for a in rows]
    )


class TestMatrixOracleBatch:
    def test_block_matches_scalar_loop(self, matrix):
        oracle = MatrixOracle(matrix)
        rows, cols = [0, 3, 7], [1, 2, 5, 11]
        assert np.array_equal(
            oracle.latency_block(rows, cols), scalar_block(oracle, rows, cols)
        )

    def test_latencies_from_subset_and_full_row(self, matrix):
        oracle = MatrixOracle(matrix)
        assert np.array_equal(oracle.latencies_from(4), matrix[4])
        assert np.array_equal(
            oracle.latencies_from(4, np.array([1, 9])), matrix[4, [1, 9]]
        )


class TestCountingOracleBatch:
    def test_block_values_match_scalar_loop(self, matrix):
        batch = CountingOracle(MatrixOracle(matrix))
        scalar = CountingOracle(MatrixOracle(matrix))
        rows, cols = [0, 2, 5], [2, 5, 8, 0]
        assert np.array_equal(
            batch.latency_block(rows, cols), scalar_block(scalar, rows, cols)
        )

    def test_batch_counts_equal_scalar_counts(self, matrix):
        batch = CountingOracle(MatrixOracle(matrix))
        scalar = CountingOracle(MatrixOracle(matrix))
        rows, cols = [0, 2, 5], [2, 5, 8, 0]
        batch.latency_block(rows, cols)
        scalar_block(scalar, rows, cols)
        assert batch.total_probes == scalar.total_probes == 12
        assert batch.unique_probes == scalar.unique_probes

    def test_batch_dedup_shared_with_scalar_path(self, matrix):
        counting = CountingOracle(MatrixOracle(matrix))
        counting.latency_ms(0, 2)
        counting.latencies_from(2, np.array([0, 1]))
        # (0,2) was already seen via the scalar probe.
        assert counting.total_probes == 3
        assert counting.unique_probes == 2


class TestNoisyOracleBatch:
    def test_batch_bit_identical_without_additive(self, matrix):
        batch = NoisyOracle(MatrixOracle(matrix), sigma=0.1, seed=3)
        scalar = NoisyOracle(MatrixOracle(matrix), sigma=0.1, seed=3)
        rows, cols = [1, 4], [0, 6, 9]
        assert np.array_equal(
            batch.latency_block(rows, cols), scalar_block(scalar, rows, cols)
        )

    def test_latencies_from_bit_identical_without_additive(self, matrix):
        batch = NoisyOracle(MatrixOracle(matrix), sigma=0.08, seed=11)
        scalar = NoisyOracle(MatrixOracle(matrix), sigma=0.08, seed=11)
        members = np.array([0, 2, 9, 5])
        expected = np.array([scalar.latency_ms(3, int(m)) for m in members])
        assert np.array_equal(batch.latencies_from(3, members), expected)

    def test_additive_batch_deterministic_and_one_sided(self, matrix):
        a = NoisyOracle(MatrixOracle(matrix), sigma=0.0, additive_ms=1.0, seed=5)
        b = NoisyOracle(MatrixOracle(matrix), sigma=0.0, additive_ms=1.0, seed=5)
        rows, cols = [0, 1], [2, 3]
        block_a = a.latency_block(rows, cols)
        assert np.array_equal(block_a, b.latency_block(rows, cols))
        assert np.all(block_a >= scalar_block(MatrixOracle(matrix), rows, cols))


class TestDispatchHelpers:
    def test_scalar_only_fallback(self, matrix):
        shim = _ScalarOnly(MatrixOracle(matrix))
        rows, cols = [0, 5], [1, 2, 3]
        assert np.array_equal(
            batch_latency_block(shim, rows, cols), matrix[np.ix_(rows, cols)]
        )
        assert np.array_equal(
            batch_latencies_from(shim, 7, cols), matrix[7, cols]
        )

    def test_legacy_single_argument_latencies_from(self, matrix):
        legacy = _LegacyRowOracle(matrix)
        members = np.array([2, 0, 11])
        assert np.array_equal(
            batch_latencies_from(legacy, 6, members), matrix[6, members]
        )

    def test_typeerror_inside_modern_implementation_propagates(self, matrix):
        """A TypeError raised *inside* a two-argument latencies_from is a
        real bug and must not be misread as the legacy signature (the
        retry would double-consume oracle state)."""

        class Buggy(_LegacyRowOracle):
            calls = 0

            def latencies_from(self, a, members=None):
                type(self).calls += 1
                raise TypeError("bug inside the implementation")

        buggy = Buggy(matrix)
        with pytest.raises(TypeError, match="bug inside"):
            batch_latencies_from(buggy, 0, np.array([1, 2]))
        assert Buggy.calls == 1


class TestTopologyLatencyMatrix:
    def test_matches_per_pair_route(self, small_internet):
        ids = np.arange(min(60, small_internet.n_hosts))
        block = small_internet.latency_matrix(ids)
        reference = np.array(
            [
                [small_internet.route(int(a), int(b)).latency_ms for b in ids]
                for a in ids
            ]
        )
        assert np.allclose(block, reference, rtol=0, atol=1e-9)

    def test_rectangular_block_and_row(self, small_internet):
        rows = np.array([0, 5, 9])
        cols = np.array([3, 0, 17, 21])
        block = small_internet.latency_block(rows, cols)
        assert block.shape == (3, 4)
        for i, a in enumerate(rows):
            for j, b in enumerate(cols):
                assert block[i, j] == pytest.approx(
                    small_internet.route(int(a), int(b)).latency_ms, abs=1e-9
                )
        row = small_internet.latencies_from(int(rows[1]), cols)
        assert np.allclose(row, block[1], rtol=0, atol=1e-9)

    def test_pair_latencies_match_route(self, small_internet):
        rng = np.random.default_rng(4)
        n = small_internet.n_hosts
        pairs = [(int(a), int(b)) for a, b in rng.integers(0, n, size=(50, 2))]
        values = small_internet.pair_latencies(pairs)
        expected = [small_internet.route(a, b).latency_ms for a, b in pairs]
        assert np.array_equal(values, expected)
        assert small_internet.pair_latencies([]).size == 0

    def test_scalar_latency_ms_matches_route(self, small_internet):
        for a, b in [(0, 1), (2, 30), (7, 7), (11, 40)]:
            assert small_internet.latency_ms(a, b) == pytest.approx(
                small_internet.route(a, b).latency_ms, abs=1e-12
            )

    def test_vectorised_lca_bit_identical_on_same_pop_pairs(
        self, small_internet
    ):
        """The grouped-array LCA scan must reproduce the scalar scan bit
        for bit on pairs sharing an attachment PoP router (the cells the
        vectorised correction rewrites)."""
        by_router: dict[int, list[int]] = {}
        for host in small_internet.hosts:
            router = small_internet.attachment_pop_router(host.host_id)
            by_router.setdefault(router, []).append(host.host_id)
        pairs = [
            (a, b)
            for hosts in by_router.values()
            for a in hosts[:5]
            for b in hosts[:5]
        ]
        assert pairs, "expected at least one shared attachment router"
        arr = np.asarray(pairs)
        values = small_internet._lca_pair_latencies(arr[:, 0], arr[:, 1])
        expected = np.array(
            [small_internet._pair_latency_ms(a, b) for a, b in pairs]
        )
        assert np.array_equal(values, expected)

    def test_ad_hoc_route_caches_are_gone(self, small_internet):
        # Regression for the unbounded per-pair caches the all-pairs
        # precomputation replaced.
        assert not hasattr(small_internet, "_core_dist_cache")
        assert not hasattr(small_internet, "_core_path_cache")


class TestProbeAccounting:
    def test_probe_many_counts_like_scalar_probes(self, matrix):
        oracle = MatrixOracle(matrix)
        members = np.arange(8)
        counting = CountingOracle(oracle)
        algorithm = RandomProbeSearch(budget=5)
        algorithm.build(oracle, members, seed=1, probe_oracle=counting)
        result = algorithm.query(10, seed=2)
        assert result.probes == 5
        assert counting.total_probes == 5

    def test_probe_many_direction_matches_scalar_probe(self):
        """probe_many must measure latency_ms(node, target), not the
        transpose — observable with an asymmetric oracle."""

        class _NullSearch(NearestPeerAlgorithm):
            name = "null"

            def _build(self, rng):
                pass

            def _query(self, target, rng):
                raise NotImplementedError

        asym = np.arange(25, dtype=float).reshape(5, 5)
        np.fill_diagonal(asym, 0.0)
        algorithm = _NullSearch()
        algorithm.build(MatrixOracle(asym), np.arange(4), seed=0)
        batched = algorithm.probe_many([1, 2], 4)
        scalar = [algorithm.probe(1, 4), algorithm.probe(2, 4)]
        assert batched.tolist() == scalar
        assert batched.tolist() == [asym[1, 4], asym[2, 4]]

    def test_batch_and_scalar_probe_paths_agree(self, matrix):
        members = np.arange(8)
        fast = BeaconSearch(n_beacons=4, probe_budget=3)
        fast.build(MatrixOracle(matrix), members, seed=3)
        slow = BeaconSearch(n_beacons=4, probe_budget=3)
        slow.build(_ScalarOnly(MatrixOracle(matrix)), members, seed=3)
        slow._probe_oracle = _ScalarOnly(MatrixOracle(matrix))
        a = fast.query(9, seed=4)
        b = slow.query(9, seed=4)
        assert a.found == b.found
        assert a.probes == b.probes
        assert a.found_latency_ms == pytest.approx(b.found_latency_ms)


class TestEngineSampledLoopRegression:
    def test_bit_identical_to_original_draw_then_query_sequence(self):
        """The hoisted sampled loop must replay the historical stream:
        draw one target, run one query on the same generator, repeat."""
        config = ClusteredConfig(n_clusters=3, end_networks_per_cluster=6, delta=0.2)
        sampling = SamplingSpec(n_targets=8)
        seed, n_queries = 17, 20

        engine_world = build_clustered_oracle(config, seed=seed)
        record = QueryEngine().run_world_trial(
            engine_world,
            RandomProbeSearch(budget=4),
            sampling=sampling,
            protocol="sampled",
            n_queries=n_queries,
            seed=seed,
        )

        world = build_clustered_oracle(config, seed=seed)
        rng = make_rng(seed)
        targets = sampling.sample(world, rng)
        members = np.setdiff1d(np.arange(world.topology.n_nodes), targets)
        algorithm = RandomProbeSearch(budget=4)
        algorithm.build(world.oracle, members, seed=rng)
        expected_targets = np.empty(n_queries, dtype=int)
        expected = []
        for i in range(n_queries):
            expected_targets[i] = int(rng.choice(targets))
            expected.append(algorithm.query(int(expected_targets[i]), seed=rng))

        assert np.array_equal(record.targets, expected_targets)
        assert np.array_equal(record.found, [r.found for r in expected])
        assert np.array_equal(record.probes, [r.probes for r in expected])
        assert np.array_equal(
            record.found_latency_ms, [r.found_latency_ms for r in expected]
        )


class TestPipelineBatchFlagEquivalence:
    @pytest.fixture(scope="class")
    def internet(self):
        config = InternetConfig(
            n_isps=3,
            pops_per_isp_low=2,
            pops_per_isp_high=4,
            en_per_pop_low=6,
            en_per_pop_high=16,
            dns_probability_campus=0.8,
        )
        return SyntheticInternet.generate(config, seed=21)

    def test_dns_study_identical_with_and_without_batching(self, internet):
        batched = DnsStudy(
            internet, config=DnsStudyConfig(batch_true_latencies=True), seed=5
        ).run()
        scalar = DnsStudy(
            internet, config=DnsStudyConfig(batch_true_latencies=False), seed=5
        ).run()
        assert batched.measurements == scalar.measurements
        assert batched.intra_domain_predicted_10 == scalar.intra_domain_predicted_10
        assert batched.pairs_discarded_negative == scalar.pairs_discarded_negative
        assert batched.servers_traced == scalar.servers_traced

    def test_sample_pairs_bit_identical_to_nested_loop(self, internet):
        """The 2-D pair draw must replay the historical per-server loop."""
        study = DnsStudy(internet, seed=13)
        clusters = {
            ("isp0", "a"): [3, 1, 4, 1, 5],
            ("isp1", "b"): [9, 2],
            ("isp2", "c"): [6],
        }
        study._rng = make_rng(99)  # replay with a known generator
        got = study._sample_pairs(clusters)
        reference_rng = make_rng(99)
        expected: set[tuple[int, int]] = set()
        for members in clusters.values():
            if len(members) < 2:
                continue
            for server in members:
                for _ in range(study._config.pairs_per_server):
                    other = int(reference_rng.choice(members))
                    if other == server:
                        continue
                    expected.add((min(server, other), max(server, other)))
        assert got == sorted(expected)

    def test_azureus_study_identical_with_and_without_batching(self, internet):
        batched = AzureusStudy(
            internet, config=AzureusStudyConfig(batch_true_latencies=True), seed=6
        ).run()
        scalar = AzureusStudy(
            internet, config=AzureusStudyConfig(batch_true_latencies=False), seed=6
        ).run()
        assert batched.peers_retained == scalar.peers_retained
        assert [c.peer_ids for c in batched.pruned_clusters] == [
            c.peer_ids for c in scalar.pruned_clusters
        ]
        assert [c.hub_latency_ms for c in batched.unpruned_clusters] == [
            c.hub_latency_ms for c in scalar.unpruned_clusters
        ]


class TestOffDiagonal:
    def test_shape_and_values_match_triu_reference(self):
        rng = np.random.default_rng(0)
        for n in (1, 2, 3, 7, 20):
            half = np.triu(rng.uniform(1.0, 9.0, size=(n, n)), k=1)
            matrix = LatencyMatrix(values=half + half.T)
            got = matrix.off_diagonal()
            expected = matrix.values[np.triu_indices(n, k=1)]
            assert got.shape == (n * (n - 1) // 2,)
            assert np.array_equal(got, expected)
