"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs cannot build; this shim lets ``pip install -e .`` fall back to the
classic ``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    entry_points={
        "console_scripts": [
            "repro-experiments=repro.experiments.runner:main",
            "repro-lint=repro.lint.cli:main",
            "repro-trace=repro.obs.cli:main",
        ],
    },
)
