"""Shared utilities: errors, RNG plumbing, unit conversions, validation.

Everything in this package is infrastructure used by every other subpackage.
Nothing here knows anything about networking or the paper; keeping that rule
lets the higher layers stay honest about where domain logic lives.
"""

from repro.util.errors import (
    ConfigurationError,
    DataError,
    ReproError,
    SimulationError,
)
from repro.util.rng import RngStream, child_rng, make_rng, spawn_seeds
from repro.util.units import (
    MS_PER_SECOND,
    US_PER_MS,
    ms_to_seconds,
    ms_to_us,
    seconds_to_ms,
    us_to_ms,
)
from repro.util.validate import (
    require,
    require_in_range,
    require_non_negative,
    require_positive,
)

__all__ = [
    "ReproError",
    "ConfigurationError",
    "DataError",
    "SimulationError",
    "RngStream",
    "make_rng",
    "child_rng",
    "spawn_seeds",
    "MS_PER_SECOND",
    "US_PER_MS",
    "ms_to_seconds",
    "seconds_to_ms",
    "ms_to_us",
    "us_to_ms",
    "require",
    "require_positive",
    "require_non_negative",
    "require_in_range",
]
