"""Exception hierarchy for the reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
letting genuine bugs (``TypeError`` etc.) propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """An experiment, topology, or algorithm was configured inconsistently.

    Raised eagerly at construction time: a bad parameter should fail before
    any simulation work is done, not corrupt results halfway through.
    """


class DataError(ReproError):
    """Input data (latency matrix, dataset, measurement record) is invalid."""


class SimulationError(ReproError):
    """The simulation reached a state that should be impossible.

    This signals an internal invariant violation (e.g. an event scheduled in
    the past) rather than a user mistake.
    """
