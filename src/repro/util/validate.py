"""Small argument-validation helpers.

These raise :class:`~repro.util.errors.ConfigurationError` with a message
naming the offending parameter, so experiment sweeps fail loudly at setup
instead of producing silently-wrong curves.
"""

from __future__ import annotations

from typing import Any

from repro.util.errors import ConfigurationError


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ConfigurationError(message)


def require_positive(value: float, name: str) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be positive, got {value!r}")


def require_non_negative(value: float, name: str) -> None:
    """Require ``value >= 0``."""
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value!r}")


def require_in_range(value: float, name: str, low: float, high: float) -> None:
    """Require ``low <= value <= high`` (inclusive on both ends)."""
    if not (low <= value <= high):
        raise ConfigurationError(
            f"{name} must be in [{low}, {high}], got {value!r}"
        )


def require_type(value: Any, name: str, expected: type | tuple[type, ...]) -> None:
    """Require ``isinstance(value, expected)``."""
    if not isinstance(value, expected):
        raise ConfigurationError(
            f"{name} must be {expected!r}, got {type(value).__name__}"
        )
