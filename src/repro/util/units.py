"""Latency unit conversions.

The library's canonical latency unit is the **millisecond** (a float), which
matches how the paper reports every number.  Intra-end-network latencies are
sub-millisecond (the paper uses 100 µs), so conversions to/from microseconds
appear at API boundaries; the event simulator exposes seconds for humans.
Keeping the conversions in one place avoids the classic off-by-1000 bug.
"""

MS_PER_SECOND = 1_000.0
US_PER_MS = 1_000.0

#: The paper's intra-end-network latency: "Peers that are both in the same
#: end-network have a latency of 100 µs between them" (Section 4).
INTRA_EN_LATENCY_MS = 0.1


def ms_to_seconds(ms: float) -> float:
    """Convert milliseconds to seconds."""
    return ms / MS_PER_SECOND


def seconds_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds * MS_PER_SECOND


def ms_to_us(ms: float) -> float:
    """Convert milliseconds to microseconds."""
    return ms * US_PER_MS


def us_to_ms(us: float) -> float:
    """Convert microseconds to milliseconds."""
    return us / US_PER_MS
