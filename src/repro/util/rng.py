"""Deterministic random-number plumbing.

Every stochastic component in the library draws from a ``numpy``
:class:`~numpy.random.Generator` that is passed in explicitly (never a global
singleton), so that:

* any experiment is exactly reproducible from a single integer seed;
* independent subsystems (topology generation, measurement noise, query
  scheduling) can be given *independent* streams, so adding noise draws in
  one subsystem never perturbs another — essential when comparing algorithm
  variants on "the same" network.

The helpers here wrap numpy's ``SeedSequence`` spawning discipline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.errors import ConfigurationError


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a Generator for ``seed``.

    Accepts an ``int`` seed, an existing Generator (returned unchanged, so
    call sites can be seed-or-generator agnostic), or ``None`` for OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def child_rng(rng: np.random.Generator, *labels: int) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    ``labels`` lets callers derive the *same* child twice (e.g. to replay one
    subsystem); children with different labels are statistically independent.
    """
    seed_material = rng.integers(0, 2**63 - 1, size=4)
    seq = np.random.SeedSequence(entropy=[int(x) for x in seed_material] + list(labels))
    return np.random.default_rng(seq)


def spawn_seeds(seed: int, count: int) -> list[int]:
    """Derive ``count`` independent integer seeds from a master seed.

    Used by multi-trial experiments (the paper runs three simulations per
    data point) so each trial is independent yet the whole sweep replays
    from one number.
    """
    if count < 0:
        raise ConfigurationError(f"count must be >= 0, got {count}")
    seq = np.random.SeedSequence(seed)
    return [int(s.generate_state(1)[0]) for s in seq.spawn(count)]


@dataclass
class RngStream:
    """A named hierarchy of independent random streams.

    Components ask for streams by name (``stream("topology")``); the same
    name always yields an identically-seeded generator, while different
    names are independent.  This gives "common random numbers" across
    algorithm comparisons for free.
    """

    seed: int
    _cache: dict[str, np.random.Generator] = field(default_factory=dict, repr=False)

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._cache:
            entropy = [self.seed] + [ord(c) for c in name]
            self._cache[name] = np.random.default_rng(np.random.SeedSequence(entropy))
        return self._cache[name]

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *new* generator for ``name`` (always identically seeded).

        Unlike :meth:`stream` the returned generator is not cached, so two
        ``fresh`` calls replay the same draws — handy in tests.
        """
        entropy = [self.seed] + [ord(c) for c in name]
        return np.random.default_rng(np.random.SeedSequence(entropy))
