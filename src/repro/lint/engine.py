"""The repro-lint engine: file walking, suppressions, rule dispatch.

Suppression comments
--------------------
``# repro-lint: allow(<rule-id>[, <rule-id>...])`` on the offending line —
or alone on the line directly above it — silences those rules for that
line.  ``# repro-lint: allow-file(<rule-id>[, ...])`` anywhere in a file
silences the rules for the whole file.  Anything after ``--`` inside the
parentheses' line is a free-form justification; write one.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.findings import Finding
from repro.lint.rules import FileContext, Rule, all_rules

#: Directory names never descended into.
EXCLUDED_DIRS = frozenset(
    {
        ".git",
        "__pycache__",
        ".pytest_cache",
        ".hypothesis",
        ".benchmarks",
        ".claude",
        "lint_fixtures",  # linter test fixtures: data, not code
    }
)

_ALLOW_RE = re.compile(r"#\s*repro-lint:\s*allow\(([^)]*)\)")
_ALLOW_FILE_RE = re.compile(r"#\s*repro-lint:\s*allow-file\(([^)]*)\)")


def _parse_rule_list(raw: str) -> frozenset[str]:
    return frozenset(
        part.strip() for part in raw.split(",") if part.strip()
    )


@dataclass
class Suppressions:
    """Per-line and per-file allow directives parsed from comments."""

    by_line: dict[int, frozenset[str]] = field(default_factory=dict)
    whole_file: frozenset[str] = field(default_factory=frozenset)

    @classmethod
    def parse(cls, lines: Sequence[str]) -> "Suppressions":
        by_line: dict[int, frozenset[str]] = {}
        whole_file: frozenset[str] = frozenset()
        for idx, line in enumerate(lines, start=1):
            match = _ALLOW_FILE_RE.search(line)
            if match:
                whole_file = whole_file | _parse_rule_list(match.group(1))
                continue
            match = _ALLOW_RE.search(line)
            if not match:
                continue
            rules = _parse_rule_list(match.group(1))
            by_line[idx] = by_line.get(idx, frozenset()) | rules
            # A comment-only allow line covers the next line of code.
            if line.strip().startswith("#"):
                by_line[idx + 1] = by_line.get(idx + 1, frozenset()) | rules
        return cls(by_line=by_line, whole_file=whole_file)

    def covers(self, finding: Finding) -> bool:
        if finding.rule in self.whole_file:
            return True
        return finding.rule in self.by_line.get(finding.line, frozenset())


@dataclass
class FileReport:
    """Lint outcome for one file (before baseline filtering)."""

    path: str
    findings: list[Finding]
    suppressed: list[Finding]
    parse_error: str | None = None


def lint_source(
    source: str,
    rel_path: str,
    rules: Sequence[Rule] | None = None,
) -> FileReport:
    """Lint ``source`` as though it lived at repo-relative ``rel_path``."""
    rel_path = rel_path.replace("\\", "/")
    active = [r for r in (rules or all_rules()) if r.applies_to(rel_path)]
    lines = tuple(source.splitlines())
    try:
        tree = ast.parse(source, filename=rel_path)
    except SyntaxError as exc:
        return FileReport(
            path=rel_path,
            findings=[
                Finding(
                    path=rel_path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule="parse-error",
                    message=f"could not parse: {exc.msg}",
                    line_text="",
                )
            ],
            suppressed=[],
            parse_error=exc.msg,
        )
    ctx = FileContext(path=rel_path, tree=tree, lines=lines)
    suppressions = Suppressions.parse(lines)
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    for rule in active:
        for finding in rule.check(ctx):
            (suppressed if suppressions.covers(finding) else kept).append(finding)
    kept.sort()
    suppressed.sort()
    return FileReport(path=rel_path, findings=kept, suppressed=suppressed)


def collect_files(paths: Iterable[Path], root: Path) -> list[Path]:
    """Expand the CLI path arguments into a sorted list of .py files."""
    seen: set[Path] = set()
    for path in paths:
        path = path if path.is_absolute() else root / path
        if path.is_file():
            if path.suffix == ".py":
                seen.add(path.resolve())
            continue
        for candidate in sorted(path.rglob("*.py")):
            if any(part in EXCLUDED_DIRS for part in candidate.parts):
                continue
            seen.add(candidate.resolve())
    return sorted(seen)


def relativize(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


@dataclass
class LintRun:
    """Outcome of linting a set of files (before baseline filtering)."""

    root: str
    files: list[str]
    reports: list[FileReport]

    @property
    def findings(self) -> list[Finding]:
        return sorted(f for report in self.reports for f in report.findings)

    @property
    def suppressed(self) -> list[Finding]:
        return sorted(f for report in self.reports for f in report.suppressed)


def run_paths(
    paths: Sequence[str | Path],
    root: str | Path = ".",
    rules: Sequence[Rule] | None = None,
) -> LintRun:
    """Lint every python file under ``paths`` (relative to ``root``)."""
    root = Path(root)
    rules = list(rules or all_rules())
    files = collect_files([Path(p) for p in paths], root)
    reports: list[FileReport] = []
    rels: list[str] = []
    for file in files:
        rel = relativize(file, root)
        rels.append(rel)
        reports.append(lint_source(file.read_text(), rel, rules))
    return LintRun(root=str(root), files=rels, reports=reports)
