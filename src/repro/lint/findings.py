"""Finding datatypes for the repro-lint invariant checker."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Finding:
    """One invariant violation at a specific source location.

    ``line_text`` (the stripped source line) is what baseline matching keys
    on, so a finding keeps matching its grandfathered entry when unrelated
    edits shift line numbers.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    line_text: str = field(default="", compare=False)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "line_text": self.line_text,
        }
