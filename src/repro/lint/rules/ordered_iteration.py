"""R5 ``ordered-iteration`` — no set-ordered loops in CRN-sensitive code.

CPython sets iterate in hash order, which for ints tracks the values but
for general objects (and across interpreter builds / PYTHONHASHSEED for
strings) does not.  In the packages where draws and outcomes must replay
bit-for-bit across schemes, shard layouts and steppers, a loop whose body
consumes RNG or emits events in set order is a latent CRN break: it works
today and diverges on the next refactor.  Iterate ``sorted(s)`` (or keep an
insertion-ordered list/dict alongside the set) instead.

The rule flags ``for`` loops and comprehensions whose iterable is provably
set-ish — a set literal/comprehension, a ``set()``/``frozenset()`` call, a
set-operator expression, or a local name assigned one of those — with
order-insensitive reductions (``min``/``max``/``sum``/``any``/``all``/
``sorted``/``set``/``frozenset``/``len``) over generator expressions
exempted.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Finding
from repro.lint.rules import FileContext, Rule, in_package

#: Calls that construct a set.
_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
#: Set methods returning another set.
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)
#: Order-preserving wrappers: iterating `list(s)` is as bad as iterating `s`.
_TRANSPARENT_WRAPPERS = frozenset({"list", "tuple", "enumerate", "zip", "reversed", "iter"})
#: Reductions whose result does not depend on iteration order.
_ORDER_FREE_CONSUMERS = frozenset(
    {"any", "all", "min", "max", "sum", "sorted", "set", "frozenset", "len"}
)
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


class OrderedIterationRule(Rule):
    rule_id = "ordered-iteration"
    description = (
        "iteration over set/frozenset values in CRN-sensitive packages "
        "must be sorted()"
    )
    invariant = (
        "loop order (and therefore RNG consumption and event order) is "
        "deterministic and refactor-stable"
    )

    def applies_to(self, path: str) -> bool:
        return in_package(path, "algorithms", "service", "netsim", "harness")

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        exempt = _order_free_genexps(ctx.tree)
        self._visit_scope(ctx, ctx.tree, frozenset(), exempt, findings)
        return findings

    # -- scope walking ---------------------------------------------------------

    def _visit_scope(
        self,
        ctx: FileContext,
        scope: ast.AST,
        inherited: frozenset[str],
        exempt: set[int],
        findings: list[Finding],
    ) -> None:
        setish_names = (
            inherited
            | _setish_parameters(scope)
            | _setish_assignments(scope, inherited)
        )
        for node in _walk_scope(scope):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._visit_scope(ctx, node, setish_names, exempt, findings)
            elif isinstance(node, ast.For):
                self._check_iter(ctx, node.iter, setish_names, findings)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                if id(node) in exempt:
                    continue
                for generator in node.generators:
                    self._check_iter(ctx, generator.iter, setish_names, findings)

    def _check_iter(
        self,
        ctx: FileContext,
        iter_expr: ast.expr,
        setish_names: frozenset[str],
        findings: list[Finding],
    ) -> None:
        if _is_setish(iter_expr, setish_names, transparent=True):
            findings.append(
                self.finding(
                    ctx,
                    iter_expr,
                    "iteration over a set is hash-ordered: wrap in sorted() "
                    "or keep an insertion-ordered list/dict alongside",
                )
            )


def _walk_scope(scope: ast.AST):
    """Yield nodes of ``scope`` without descending into nested functions."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))


def _setish_parameters(scope: ast.AST) -> frozenset[str]:
    """Parameters annotated ``set[...]``/``frozenset[...]`` in this scope."""
    if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return frozenset()
    args = scope.args
    names: set[str] = set()
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.annotation is not None and _is_set_annotation(arg.annotation):
            names.add(arg.arg)
    return frozenset(names)


def _setish_assignments(scope: ast.AST, known: frozenset[str]) -> frozenset[str]:
    """Names bound to a provably set-ish value anywhere in this scope."""
    names: set[str] = set()
    # Two passes so `a = set(); b = a` resolves regardless of statement order
    # in branches; convergence is immediate for the chains seen in practice.
    for _ in range(2):
        for node in _walk_scope(scope):
            target: ast.expr | None = None
            value: ast.expr | None = None
            annotation: ast.expr | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value, annotation = node.target, node.value, node.annotation
            if not isinstance(target, ast.Name):
                continue
            if annotation is not None and _is_set_annotation(annotation):
                names.add(target.id)
            elif value is not None and _is_setish(
                # Transparent: `listed = list(pending)` is as hash-ordered
                # as `pending` itself.
                value, known | frozenset(names), transparent=True
            ):
                names.add(target.id)
    return frozenset(names)


def _is_set_annotation(annotation: ast.expr) -> bool:
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    name = node.attr if isinstance(node, ast.Attribute) else getattr(node, "id", None)
    return name in {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}


def _is_setish(
    node: ast.expr, setish_names: frozenset[str], transparent: bool
) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in setish_names
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
        return _is_setish(node.left, setish_names, False) or _is_setish(
            node.right, setish_names, False
        )
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in _SET_CONSTRUCTORS:
                return True
            if transparent and func.id in _TRANSPARENT_WRAPPERS:
                return any(
                    _is_setish(arg, setish_names, False) for arg in node.args
                )
        if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
            return _is_setish(func.value, setish_names, False)
    return False


def _order_free_genexps(tree: ast.Module) -> set[int]:
    """ids of comprehension nodes consumed by order-insensitive reductions."""
    exempt: set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id in _ORDER_FREE_CONSUMERS:
            for arg in node.args:
                if isinstance(arg, (ast.GeneratorExp, ast.SetComp, ast.ListComp)):
                    exempt.add(id(arg))
    return exempt
