"""R7 ``obs-passivity`` — the observability layer observes, never acts.

The whole value of the tracing/metrics layer (:mod:`repro.obs`) is the
guarantee that *enabling it changes nothing*: answers, time-to-answer
percentiles and maintenance bills are bit-identical with tracing on or
off (the trace tests pin this at runtime for every scheme).  That only
holds if the layer is passive — every number on a span or series comes
from the event loop's clock or a counter the driver already keeps.  One
oracle read would bill un-counted probes; one rng draw would shift every
downstream draw in the stream and silently fork the timeline.

This rule pins the property statically: inside ``src/repro/obs/`` no
oracle measurement calls, no probe helpers, no stdlib ``random``, no
``np.random`` access (including ``default_rng``) and no seeded-generator
constructors from :mod:`repro.util.rng`.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Finding
from repro.lint.rules import FileContext, Rule, attr_name, call_name

#: Oracle measurement surface + counted probe helpers: an observability
#: module has no business measuring anything.
_MEASUREMENT_CALLS = frozenset(
    {
        "latency_ms",
        "latencies_from",
        "latency_block",
        "batch_latencies_from",
        "batch_latency_block",
        "probe",
        "probe_many",
        "probe_block",
        "aux_probe",
        "aux_probe_many",
        "maintenance_probe",
        "maintenance_probe_many",
    }
)

#: Generator constructors — a passive layer needs no randomness at all.
_RNG_CONSTRUCTORS = frozenset({"default_rng", "make_rng", "child_rng"})


class ObsPassivityRule(Rule):
    rule_id = "obs-passivity"
    description = (
        "repro.obs must not measure (oracle/probe calls) or draw "
        "randomness (rng constructors, np.random, stdlib random)"
    )
    invariant = (
        "tracing is passive and rng-clean: enabling it is bit-identical "
        "for answers, timing and maintenance bills"
    )

    def applies_to(self, path: str) -> bool:
        return path.startswith("src/repro/obs/")

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith(
                        "random."
                    ):
                        findings.append(
                            self.finding(
                                ctx,
                                node,
                                "obs code must not import stdlib `random`: "
                                "the observability layer is rng-clean",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module == "random" or module == "repro.util.rng":
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"obs code must not import {module!r}: the "
                            "observability layer is rng-clean",
                        )
                    )
            elif isinstance(node, ast.Call):
                name = attr_name(node.func)
                dotted = call_name(node)
                if name in _RNG_CONSTRUCTORS:
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"`{name}()` in obs code: tracing must consume "
                            "zero rng draws (enabling it would fork the "
                            "stream it observes)",
                        )
                    )
                elif name in _MEASUREMENT_CALLS and isinstance(
                    node.func, ast.Attribute
                ):
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"`.{name}()` in obs code: the observability "
                            "layer reads clocks and counters, it never "
                            "measures",
                        )
                    )
                elif dotted is not None and (
                    dotted.startswith("np.random.")
                    or dotted.startswith("numpy.random.")
                ):
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"`{dotted}()` in obs code: tracing must consume "
                            "zero rng draws",
                        )
                    )
        return findings
