"""R1 ``rng-discipline`` — all randomness flows from seeded numpy Generators.

The reproduction's comparisons lean on common random numbers: two schemes
(or two shard layouts, or the fault stream vs the workload stream) must see
*identical* draws from identical seeds.  Any stdlib ``random`` use, any
global numpy seeding, and any OS-entropy ``default_rng()`` breaks that
silently — outputs stay plausible, CRN comparisons stop meaning anything.
Generators are created in :mod:`repro.util.rng` (``make_rng`` /
``child_rng`` / ``RngStream``) and passed down explicitly.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Finding
from repro.lint.rules import FileContext, Rule, call_name

#: numpy legacy global-state draw functions (``np.random.<fn>``) — these all
#: read the hidden global RandomState, so they are unseedable per-component.
_GLOBAL_NP_DRAWS = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "exponential",
        "poisson",
    }
)

_NP_MODULE_NAMES = ("np.random", "numpy.random")


class RngDisciplineRule(Rule):
    rule_id = "rng-discipline"
    description = (
        "no stdlib random, no global numpy RNG state, no unseeded "
        "default_rng() outside util/rng.py"
    )
    invariant = (
        "every outcome is a pure function of explicit seeds (common random "
        "numbers across schemes/shards/fault streams)"
    )

    def applies_to(self, path: str) -> bool:
        return not path.endswith("repro/util/rng.py")

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        findings.append(
                            self.finding(
                                ctx,
                                node,
                                "stdlib `random` is banned: draw from a seeded "
                                "np.random.Generator (repro.util.rng.make_rng)",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            "stdlib `random` is banned: draw from a seeded "
                            "np.random.Generator (repro.util.rng.make_rng)",
                        )
                    )
            elif isinstance(node, ast.Call):
                findings.extend(self._check_call(ctx, node))
        return findings

    def _check_call(self, ctx: FileContext, node: ast.Call) -> list[Finding]:
        name = call_name(node)
        if name is None:
            return []
        for module in _NP_MODULE_NAMES:
            prefix = module + "."
            if name.startswith(prefix):
                fn = name[len(prefix) :]
                if fn == "seed":
                    return [
                        self.finding(
                            ctx,
                            node,
                            "np.random.seed mutates hidden global state: pass "
                            "a seeded Generator instead",
                        )
                    ]
                if fn in _GLOBAL_NP_DRAWS:
                    return [
                        self.finding(
                            ctx,
                            node,
                            f"np.random.{fn} draws from the global RandomState:"
                            " use a seeded Generator's method instead",
                        )
                    ]
        if name == "default_rng" or name.endswith(".default_rng"):
            if self._unseeded(node):
                return [
                    self.finding(
                        ctx,
                        node,
                        "unseeded default_rng() pulls OS entropy: thread an "
                        "explicit seed/Generator through make_rng/child_rng",
                    )
                ]
        return []

    @staticmethod
    def _unseeded(node: ast.Call) -> bool:
        if node.keywords:
            return all(
                kw.arg == "seed"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is None
                for kw in node.keywords
            )
        if not node.args:
            return True
        return len(node.args) == 1 and (
            isinstance(node.args[0], ast.Constant) and node.args[0].value is None
        )
