"""R2 ``no-wall-clock`` — library code never reads the host clock.

Everything under ``src/repro/`` runs in *simulated* time (the netsim event
loop) or in pure offline computation; a wall-clock read anywhere in the
library couples outcomes to the machine the run happened on.  Benchmarks
measure wall time on purpose and are exempt by scope; the experiment runner
times phases for its report and carries an explicit suppression.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Finding
from repro.lint.rules import FileContext, Rule, dotted_name

#: ``module attr`` pairs that read the host clock.
_CLOCK_ATTRS = {
    "time": frozenset(
        {
            "time",
            "time_ns",
            "perf_counter",
            "perf_counter_ns",
            "monotonic",
            "monotonic_ns",
            "process_time",
            "process_time_ns",
        }
    ),
    "datetime": frozenset({"now", "utcnow", "today"}),
    "date": frozenset({"today"}),
}


class WallClockRule(Rule):
    rule_id = "no-wall-clock"
    description = "time.time/perf_counter/datetime.now banned under src/repro/"
    invariant = (
        "simulated timelines and scored outcomes never depend on the host "
        "machine's clock"
    )

    def applies_to(self, path: str) -> bool:
        return path.startswith("src/repro/")

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module in _CLOCK_ATTRS:
                banned = _CLOCK_ATTRS[node.module]
                for alias in node.names:
                    if alias.name in banned:
                        findings.append(
                            self.finding(
                                ctx,
                                node,
                                f"wall-clock import `from {node.module} import "
                                f"{alias.name}`: simulated components take "
                                "time from the event loop",
                            )
                        )
            elif isinstance(node, ast.Attribute):
                name = dotted_name(node)
                if name is None:
                    continue
                head, _, attr = name.rpartition(".")
                # Match both `time.perf_counter` and `datetime.datetime.now`.
                tail = head.rpartition(".")[2]
                if tail in _CLOCK_ATTRS and attr in _CLOCK_ATTRS[tail]:
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"wall-clock read `{name}`: simulated components "
                            "take time from the event loop",
                        )
                    )
        return _dedupe(findings)


def _dedupe(findings: list[Finding]) -> list[Finding]:
    """Drop nested duplicates (an Attribute inside a flagged Attribute)."""
    seen: set[tuple[str, int, int]] = set()
    out: list[Finding] = []
    for f in findings:
        key = (f.rule, f.line, f.col)
        if key not in seen:
            seen.add(key)
            out.append(f)
    return out
