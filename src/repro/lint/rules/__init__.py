"""Rule registry for repro-lint.

Each rule is a small AST pass protecting one invariant the reproduction's
methodology depends on (see the package docstring in :mod:`repro.lint`).
Rules are pure: they read a parsed module plus its repo-relative path and
return :class:`~repro.lint.findings.Finding`s — suppression comments and
baseline matching are the engine's job.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.lint.findings import Finding


@dataclass(frozen=True)
class FileContext:
    """Everything a rule may look at for one file."""

    #: Repo-relative posix path (``src/repro/algorithms/base.py``).
    path: str
    #: Parsed module.
    tree: ast.Module
    #: Raw source split into lines (1-indexed via ``line_at``).
    lines: tuple[str, ...]

    def line_at(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


class Rule:
    """Base class: subclasses set ``rule_id``/``description``/``invariant``."""

    rule_id: str = "abstract"
    #: One-line human description (shown by ``--list-rules``).
    description: str = ""
    #: The methodological invariant the rule protects.
    invariant: str = ""

    def applies_to(self, path: str) -> bool:
        """Whether ``path`` (repo-relative, posix) is in the rule's scope."""
        return True

    def check(self, ctx: FileContext) -> list[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        lineno = getattr(node, "lineno", 1)
        return Finding(
            path=ctx.path,
            line=lineno,
            col=getattr(node, "col_offset", 0),
            rule=self.rule_id,
            message=message,
            line_text=ctx.line_at(lineno),
        )


def dotted_name(node: ast.expr) -> str | None:
    """Resolve ``a.b.c`` attribute chains to ``"a.b.c"`` (None otherwise)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    """The called function's dotted name, or None for computed callees."""
    return dotted_name(node.func)


def attr_name(node: ast.expr) -> str | None:
    """The terminal attribute name of a call target (``x.y.probe`` -> ``probe``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def in_package(path: str, *packages: str) -> bool:
    """Whether ``path`` lives under ``src/repro/<pkg>/`` for any given pkg."""
    return any(path.startswith(f"src/repro/{pkg}/") for pkg in packages)


def all_rules() -> list[Rule]:
    """Instantiate every shipped rule, in rule-id order."""
    from repro.lint.rules.counted_probes import CountedProbesRule
    from repro.lint.rules.frozen_specs import FrozenSpecsRule
    from repro.lint.rules.obs_passivity import ObsPassivityRule
    from repro.lint.rules.ordered_iteration import OrderedIterationRule
    from repro.lint.rules.plan_purity import PlanPurityRule
    from repro.lint.rules.rng_discipline import RngDisciplineRule
    from repro.lint.rules.wall_clock import WallClockRule

    rules: list[Rule] = [
        CountedProbesRule(),
        FrozenSpecsRule(),
        ObsPassivityRule(),
        OrderedIterationRule(),
        PlanPurityRule(),
        RngDisciplineRule(),
        WallClockRule(),
    ]
    return sorted(rules, key=lambda r: r.rule_id)
