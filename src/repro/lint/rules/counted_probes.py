"""R3 ``counted-probes`` — no oracle measurement bypasses the billing.

The paper's cost/accuracy trade-off is stated in *probes*; the reproduction
bills every query-time measurement through
:class:`~repro.algorithms.base.NearestPeerAlgorithm`'s counted channels
(``probe``/``probe_many``/``probe_block``/``aux_probe*``) and every churn
measurement through the ``maintenance_probe*`` helpers.  A direct
``latency_ms``/``latencies_from``/``latency_block``/``batch_*`` call inside
the algorithm/overlay/service/harness layers is an un-billed oracle read —
the numbers stay plausible while the cost axis quietly goes wrong.

Scope: the packages where billing is the point.  The oracle/topology
definitions themselves, the measurement-tool simulators, and the netsim
wire (which bills its own relay detours) are out of scope; build-time
(offline) probing inside scope carries explicit suppressions, because
"build may probe freely" is the paper's own offline-phase convention.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Finding
from repro.lint.rules import FileContext, Rule, attr_name, in_package

_ORACLE_METHODS = frozenset({"latency_ms", "latencies_from", "latency_block"})
_BATCH_HELPERS = frozenset({"batch_latencies_from", "batch_latency_block"})


class CountedProbesRule(Rule):
    rule_id = "counted-probes"
    description = (
        "direct oracle latency calls outside the counted probe helpers "
        "are billing bypasses"
    )
    invariant = (
        "every query/maintenance measurement lands on a probe counter the "
        "paper's cost axis reads"
    )

    def applies_to(self, path: str) -> bool:
        # algorithms/base.py hosts the counted helpers themselves; the
        # oracle/topology/latency definitions and measurement simulators
        # are the measurement substrate, not billed consumers of it.
        if path.endswith("repro/algorithms/base.py"):
            return False
        return in_package(path, "algorithms", "meridian", "service", "harness")

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = attr_name(node.func)
            if name in _ORACLE_METHODS and isinstance(node.func, ast.Attribute):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"direct oracle `.{name}()` bypasses probe billing: "
                        "measure through probe/probe_many/probe_block or the "
                        "maintenance_probe* helpers",
                    )
                )
            elif name in _BATCH_HELPERS:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"`{name}()` reads the oracle without billing: use the "
                        "counted batch helpers (probe_block / "
                        "maintenance_probe_block) instead",
                    )
                )
        return findings
