"""R4 ``plan-purity`` — query plans stay sans-io between their yields.

The simulated-time daemon times a query by when its yielded probe rounds
*complete*; the contract (see ``NearestPeerAlgorithm._plan``) is that every
measurement a plan acts on was taken through the counted query channel and
offered to the driver via ``_offer_round`` / ``yield``.  A plan body that
reads the oracle directly — or that measures through the *maintenance*
channel — takes hidden probes the daemon never schedules, so the timeline
(and under faults, the outcome mask flow) is silently wrong.

The rule checks the bodies of generator functions named ``_plan`` /
``query_plan`` (helpers a plan calls are covered by R3's package-wide
billing scope; this rule is about the plan's own round structure).
"""

from __future__ import annotations

import ast

from repro.lint.findings import Finding
from repro.lint.rules import FileContext, Rule, attr_name

_PLAN_NAMES = frozenset({"_plan", "query_plan"})

_FORBIDDEN = frozenset(
    {
        # raw oracle reads
        "latency_ms",
        "latencies_from",
        "latency_block",
        "batch_latencies_from",
        "batch_latency_block",
        # offline/maintenance channels: billed to the wrong ledger and
        # invisible to the driver's round timing
        "maintenance_probe",
        "maintenance_probe_many",
        "maintenance_probe_block",
        "offline_distances_from",
    }
)


class PlanPurityRule(Rule):
    rule_id = "plan-purity"
    description = (
        "_plan/query_plan bodies may not read the oracle or the "
        "maintenance channel directly"
    )
    invariant = (
        "the daemon's timeline sees every probe a plan takes, as a yielded "
        "round"
    )

    def applies_to(self, path: str) -> bool:
        return path.startswith("src/repro/")

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in _PLAN_NAMES
            ):
                findings.extend(self._check_plan(ctx, node))
        return findings

    def _check_plan(
        self, ctx: FileContext, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            name = attr_name(node.func)
            if name in _FORBIDDEN:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"`{name}()` inside `{fn.name}`: plans measure only "
                        "through the counted query channel and offer every "
                        "round via _offer_round/yield",
                    )
                )
        return findings
