"""R6 ``frozen-specs`` — scenario/config specs are immutable value objects.

``*Spec`` dataclasses (``ChurnSpec``, ``DaemonSpec``, ``FaultSpec``, …) are
shared freely: the scenario registry hands the same instance to every
trial, the sharded daemon ships them to worker processes, and ``compare()``
replays one spec across schemes.  A mutable spec lets one consumer's edit
leak into another's run — the classic irreproducibility bug.  Every spec
dataclass must be declared ``frozen=True``, and nothing may assign spec
attributes after construction (``dataclasses.replace`` is the sanctioned
way to derive a variant).
"""

from __future__ import annotations

import ast

from repro.lint.findings import Finding
from repro.lint.rules import FileContext, Rule


def _is_dataclass_decorator(node: ast.expr) -> ast.Call | None:
    """Return the decorator Call if it is ``@dataclass(...)`` (None for bare)."""
    if isinstance(node, ast.Call):
        inner = node.func
    else:
        inner = node
    name = inner.attr if isinstance(inner, ast.Attribute) else getattr(inner, "id", None)
    if name != "dataclass":
        return None
    return node if isinstance(node, ast.Call) else None


class FrozenSpecsRule(Rule):
    rule_id = "frozen-specs"
    description = "*Spec dataclasses must be frozen=True and never mutated"
    invariant = (
        "a spec shared across trials/schemes/processes cannot drift "
        "mid-experiment"
    )

    def applies_to(self, path: str) -> bool:
        return path.startswith("src/repro/")

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and node.name.endswith("Spec"):
                findings.extend(self._check_class(ctx, node))
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                findings.extend(self._check_assignment(ctx, node))
        return findings

    def _check_class(self, ctx: FileContext, node: ast.ClassDef) -> list[Finding]:
        decorated = False
        for decorator in node.decorator_list:
            call = _is_dataclass_decorator(decorator)
            if call is None and not self._is_bare_dataclass(decorator):
                continue
            decorated = True
            if call is not None and any(
                kw.arg == "frozen"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in call.keywords
            ):
                return []
        if not decorated:
            return []
        return [
            self.finding(
                ctx,
                node,
                f"spec dataclass `{node.name}` must be @dataclass(frozen=True):"
                " specs are shared across trials and processes",
            )
        ]

    @staticmethod
    def _is_bare_dataclass(decorator: ast.expr) -> bool:
        name = (
            decorator.attr
            if isinstance(decorator, ast.Attribute)
            else getattr(decorator, "id", None)
        )
        return name == "dataclass"

    def _check_assignment(
        self, ctx: FileContext, node: ast.Assign | ast.AugAssign
    ) -> list[Finding]:
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        findings: list[Finding] = []
        for target in targets:
            if not isinstance(target, ast.Attribute):
                continue
            receiver = target.value
            name = receiver.id if isinstance(receiver, ast.Name) else None
            if name is None or not name.lower().endswith("spec"):
                continue
            if name.lower() in {"self", "cls"}:  # pragma: no cover - by construction
                continue
            findings.append(
                self.finding(
                    ctx,
                    node,
                    f"attribute assignment on spec `{name}`: specs are frozen "
                    "value objects — derive variants with dataclasses.replace",
                )
            )
        return findings
