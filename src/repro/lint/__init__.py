"""repro-lint: AST-based invariant checker for this reproduction.

The reproduction's methodology rests on invariants nothing enforces at
runtime: every probe is billed (the paper's cost axis), every outcome is a
pure function of explicit seeds (common-random-number comparisons,
shard/stepper invariance, fault-stream separation), and every query plan
is sans-io (the daemon's simulated timeline).  This package turns those
conventions into machine-checked rules over the stdlib ``ast`` — no new
runtime dependencies.

Rules (see ``python -m repro.lint --list-rules``):

* ``rng-discipline`` — no stdlib ``random``, no global numpy RNG state, no
  unseeded ``default_rng()`` outside ``util/rng.py``.
* ``no-wall-clock`` — no host-clock reads under ``src/repro/``.
* ``counted-probes`` — no direct oracle latency calls in the billed layers.
* ``plan-purity`` — ``_plan``/``query_plan`` bodies measure only through
  the counted query channel, offered via yielded rounds.
* ``ordered-iteration`` — no hash-ordered set loops in CRN-sensitive
  packages.
* ``frozen-specs`` — ``*Spec`` dataclasses are frozen and never mutated.

Suppress a deliberate exception with ``# repro-lint: allow(<rule-id>)`` on
(or directly above) the line; grandfather legacy findings with the
checked-in ``lint-baseline.json`` (regenerate via ``--write-baseline``).
"""

from repro.lint.baseline import Baseline, BaselineMatch
from repro.lint.engine import FileReport, LintRun, lint_source, run_paths
from repro.lint.findings import Finding
from repro.lint.rules import Rule, all_rules

__all__ = [
    "Baseline",
    "BaselineMatch",
    "FileReport",
    "Finding",
    "LintRun",
    "Rule",
    "all_rules",
    "lint_source",
    "run_paths",
]
