"""Baseline (grandfathered-findings) support for repro-lint.

A baseline entry keys on ``(rule, path, line_text)`` — the stripped source
line, not the line number — so grandfathered findings survive unrelated
edits that shift code around, while any *change to the offending line
itself* (including fixing it) surfaces immediately: a fixed line leaves a
stale entry the reporters call out, and an edited-but-still-violating line
no longer matches and fails the run.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path

from repro.lint.findings import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "lint-baseline.json"

_Key = tuple[str, str, str]


def _key(finding: Finding) -> _Key:
    return (finding.rule, finding.path, finding.line_text)


@dataclass
class BaselineMatch:
    """Outcome of filtering findings through a baseline."""

    #: Findings not absorbed by the baseline (these fail the run).
    new: list[Finding]
    #: Findings the baseline grandfathered.
    matched: list[Finding]
    #: Baseline entries no finding matched (fixed or drifted — prune them).
    unused: list[dict]


class Baseline:
    """A multiset of grandfathered findings."""

    def __init__(self, entries: Counter[_Key] | None = None) -> None:
        self.entries: Counter[_Key] = entries or Counter()

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text())
        if data.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} in {path}"
            )
        entries: Counter[_Key] = Counter()
        for item in data.get("findings", []):
            key = (item["rule"], item["path"], item["line_text"])
            entries[key] += int(item.get("count", 1))
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        return cls(Counter(_key(f) for f in findings))

    def save(self, path: Path) -> None:
        items = [
            {"rule": rule, "path": file, "line_text": text, "count": count}
            for (rule, file, text), count in sorted(self.entries.items())
        ]
        payload = {"version": BASELINE_VERSION, "findings": items}
        path.write_text(json.dumps(payload, indent=2) + "\n")

    def filter(self, findings: list[Finding]) -> BaselineMatch:
        remaining = Counter(self.entries)
        new: list[Finding] = []
        matched: list[Finding] = []
        for finding in sorted(findings):
            key = _key(finding)
            if remaining[key] > 0:
                remaining[key] -= 1
                matched.append(finding)
            else:
                new.append(finding)
        unused = [
            {"rule": rule, "path": file, "line_text": text, "count": count}
            for (rule, file, text), count in sorted(remaining.items())
            if count > 0
        ]
        return BaselineMatch(new=new, matched=matched, unused=unused)
