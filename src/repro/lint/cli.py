"""Command-line entry point: ``python -m repro.lint`` / ``repro-lint``.

Exit codes: 0 clean (after suppressions and baseline), 1 findings,
2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint.baseline import DEFAULT_BASELINE_NAME, Baseline, BaselineMatch
from repro.lint.engine import run_paths
from repro.lint.reporters import render_json, render_text
from repro.lint.rules import all_rules

_DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant checker for this reproduction: determinism "
            "(rng-discipline, no-wall-clock, ordered-iteration), probe "
            "billing (counted-probes), sans-io plans (plan-purity) and "
            "immutable specs (frozen-specs)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src tests benchmarks "
        "examples, whichever exist under --root)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repo root rule scopes are resolved against (default: cwd)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        nargs="?",
        const=DEFAULT_BASELINE_NAME,
        default=None,
        metavar="PATH",
        help=f"filter findings through a baseline file (default path: "
        f"<root>/{DEFAULT_BASELINE_NAME}; applied automatically when that "
        "file exists)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file (report grandfathered findings too)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also list findings silenced by allow comments (text format)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule with the invariant it protects and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    rules = all_rules()

    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}: {rule.description}")
            print(f"    protects: {rule.invariant}")
        return 0

    if args.select:
        wanted = {part.strip() for part in args.select.split(",") if part.strip()}
        known = {rule.rule_id for rule in rules}
        unknown = wanted - known
        if unknown:
            print(
                f"repro-lint: unknown rule(s): {', '.join(sorted(unknown))} "
                f"(known: {', '.join(sorted(known))})",
                file=sys.stderr,
            )
            return 2
        rules = [rule for rule in rules if rule.rule_id in wanted]

    root = Path(args.root)
    if not root.is_dir():
        print(f"repro-lint: --root {args.root} is not a directory", file=sys.stderr)
        return 2
    paths = args.paths or [p for p in _DEFAULT_PATHS if (root / p).is_dir()]
    if not paths:
        print("repro-lint: nothing to lint", file=sys.stderr)
        return 2

    run = run_paths(paths, root=root, rules=rules)
    findings = run.findings

    baseline_path = root / (args.baseline or DEFAULT_BASELINE_NAME)

    if args.write_baseline:
        Baseline.from_findings(findings).save(baseline_path)
        print(
            f"repro-lint: wrote {len(findings)} finding(s) to {baseline_path}"
        )
        return 0

    if args.no_baseline:
        match = BaselineMatch(new=findings, matched=[], unused=[])
    elif baseline_path.exists():
        # The checked-in baseline applies by default, so a plain
        # `python -m repro.lint` run gates on *new* findings only.
        match = Baseline.load(baseline_path).filter(findings)
        # Entries for rules not selected (or paths not linted) this run are
        # not evidence of a fix — only warn about staleness on a full run.
        if args.select or args.paths:
            match.unused = []
    elif args.baseline is not None:
        print(
            f"repro-lint: baseline {baseline_path} not found "
            "(run with --write-baseline to create it)",
            file=sys.stderr,
        )
        return 2
    else:
        match = BaselineMatch(new=findings, matched=[], unused=[])

    if args.format == "json":
        print(render_json(run, match, rules))
    else:
        print(render_text(run, match, show_suppressed=args.show_suppressed))
    return 1 if match.new else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
