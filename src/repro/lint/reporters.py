"""Text and JSON reporters for repro-lint.

Reports carry no timestamps or host details: identical trees produce
byte-identical reports (the linter holds itself to the determinism rules
it enforces).
"""

from __future__ import annotations

import json

from repro.lint.baseline import BaselineMatch
from repro.lint.engine import LintRun
from repro.lint.findings import Finding
from repro.lint.rules import Rule

JSON_REPORT_VERSION = 1


def render_text(
    run: LintRun,
    match: BaselineMatch,
    show_suppressed: bool = False,
) -> str:
    out: list[str] = []
    for finding in match.new:
        out.append(f"{finding.location()}: {finding.rule}: {finding.message}")
        if finding.line_text:
            out.append(f"    {finding.line_text}")
    if show_suppressed:
        for finding in run.suppressed:
            out.append(
                f"{finding.location()}: {finding.rule}: suppressed "
                f"(# repro-lint: allow)"
            )
    for entry in match.unused:
        out.append(
            f"warning: stale baseline entry (fixed or drifted): "
            f"{entry['rule']} @ {entry['path']}: {entry['line_text']!r}"
        )
    summary = (
        f"{len(run.files)} files checked: {len(match.new)} finding(s), "
        f"{len(match.matched)} baselined, {len(run.suppressed)} suppressed"
    )
    out.append(summary)
    return "\n".join(out)


def render_json(
    run: LintRun,
    match: BaselineMatch,
    rules: list[Rule],
) -> str:
    def encode(findings: list[Finding]) -> list[dict]:
        return [f.to_json() for f in findings]

    payload = {
        "version": JSON_REPORT_VERSION,
        "tool": "repro-lint",
        "checked_files": len(run.files),
        "rules": [
            {
                "id": rule.rule_id,
                "description": rule.description,
                "invariant": rule.invariant,
            }
            for rule in rules
        ],
        "findings": encode(match.new),
        "baselined": encode(match.matched),
        "suppressed": encode(run.suppressed),
        "stale_baseline_entries": match.unused,
        "exit_code": 1 if match.new else 0,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
