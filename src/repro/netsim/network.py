"""Simulated nodes and latency-faithful message delivery."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.netsim.engine import EventHandle, EventLoop
from repro.topology.oracle import LatencyOracle, batch_latencies_from
from repro.util.errors import SimulationError
from repro.util.rng import make_rng


@dataclass(frozen=True)
class Message:
    """A message in flight between two simulated nodes."""

    src: int
    dst: int
    kind: str
    payload: Any = None


class SimNode:
    """Base class for protocol participants.

    Subclasses override :meth:`on_message`; they send through
    :attr:`network` and schedule timers via :meth:`set_timer`.
    """

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.network: "Network | None" = None

    # -- wiring -------------------------------------------------------------

    def attached(self, network: "Network") -> None:
        """Called when the node joins a network (override for setup)."""

    def on_message(self, message: Message) -> None:
        """Handle a delivered message (override)."""

    # -- conveniences ---------------------------------------------------------

    def send(self, dst: int, kind: str, payload: Any = None) -> None:
        """Send a message; it arrives after the one-way delay to ``dst``."""
        if self.network is None:
            raise SimulationError(f"node {self.node_id} is not attached to a network")
        self.network.send(Message(src=self.node_id, dst=dst, kind=kind, payload=payload))

    def set_timer(self, delay_ms: float, kind: str, payload: Any = None) -> EventHandle:
        """Deliver a message to *self* after ``delay_ms`` (a local timer)."""
        if self.network is None:
            raise SimulationError(f"node {self.node_id} is not attached to a network")
        return self.network.deliver_later(
            Message(src=self.node_id, dst=self.node_id, kind=kind, payload=payload),
            delay_ms,
        )


class Network:
    """Delivers messages between :class:`SimNode` s using oracle latencies.

    One-way delay is half the oracle RTT; optional loss models flaky links.
    Local timer deliveries bypass the loss model.
    """

    def __init__(
        self,
        loop: EventLoop,
        oracle: LatencyOracle,
        loss_rate: float = 0.0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise SimulationError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.loop = loop
        self.oracle = oracle
        self.loss_rate = loss_rate
        self._rng = make_rng(seed)
        self._nodes: dict[int, SimNode] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_lost = 0

    def attach(self, node: SimNode) -> None:
        """Register a node; its id must be unique on this network."""
        if node.node_id in self._nodes:
            raise SimulationError(f"duplicate node id {node.node_id}")
        node.network = self
        self._nodes[node.node_id] = node
        node.attached(self)

    def node(self, node_id: int) -> SimNode:
        return self._nodes[node_id]

    @property
    def node_ids(self) -> list[int]:
        return list(self._nodes)

    def send(self, message: Message) -> None:
        """Queue a message for delivery after the one-way delay."""
        if message.dst not in self._nodes:
            raise SimulationError(f"unknown destination node {message.dst}")
        self.messages_sent += 1
        if self.loss_rate and self._rng.random() < self.loss_rate:
            self.messages_lost += 1
            return
        delay = self.oracle.latency_ms(message.src, message.dst) / 2.0
        self.loop.schedule(delay, self._deliver, message)

    def send_many(
        self,
        src: int,
        dsts: np.ndarray | Sequence[int],
        kind: str,
        payloads: Sequence[Any] | None = None,
    ) -> None:
        """Fan one message out from ``src`` to every node in ``dsts``.

        The batched counterpart of N :meth:`send` calls: the loss decisions
        come first as one vectorised draw (the same generator stream, so
        the drop pattern is bit-identical to the scalar loop), then the
        *surviving* destinations' latencies come from a single
        :func:`~repro.topology.oracle.batch_latencies_from` draw instead of
        N scalar ``latency_ms`` calls — exactly the probes the scalar loop
        would have made, so counting/noisy oracle accounting stays exact
        (a lost message never consumes an oracle draw, scalar or batched).
        """
        dsts = np.asarray(dsts, dtype=int)
        if payloads is not None and len(payloads) != dsts.size:
            raise SimulationError(
                f"send_many got {dsts.size} destinations but "
                f"{len(payloads)} payloads"
            )
        unknown = [int(d) for d in dsts if int(d) not in self._nodes]
        if unknown:
            raise SimulationError(f"unknown destination nodes {unknown[:8]}")
        self.messages_sent += int(dsts.size)
        if dsts.size == 0:
            return
        if self.loss_rate:
            kept = self._rng.random(size=dsts.size) >= self.loss_rate
            self.messages_lost += int(dsts.size - kept.sum())
            if payloads is not None:
                payloads = [p for p, keep in zip(payloads, kept) if keep]
            dsts = dsts[kept]
            if dsts.size == 0:
                return
        delays = self.path_rtts(src, dsts) / 2.0
        for i, (dst, delay) in enumerate(zip(dsts, delays)):
            message = Message(
                src=int(src),
                dst=int(dst),
                kind=kind,
                payload=payloads[i] if payloads is not None else None,
            )
            self.loop.schedule(float(delay), self._deliver, message)

    def path_rtts(
        self, src: int, dsts: np.ndarray | Sequence[int]
    ) -> np.ndarray:
        """One vectorised RTT draw along the ``src -> dst`` network paths.

        The same oracle draw :meth:`send_many` halves into one-way delays,
        exposed for callers that bill whole round trips — the daemon's
        dispatch-RTT charging prices the coordination hop (entry node
        asking peer *p* to probe) through here.
        """
        return batch_latencies_from(
            self.oracle, int(src), np.asarray(dsts, dtype=int)
        )

    def deliver_later(self, message: Message, delay_ms: float) -> EventHandle:
        """Schedule a direct (loss-free) delivery; used for timers."""
        return self.loop.schedule(delay_ms, self._deliver, message)

    def deliver_many(
        self,
        messages: Sequence[Message],
        delays_ms: np.ndarray | Sequence[float],
    ) -> list[EventHandle]:
        """Schedule one loss-free delivery per message at an explicit delay.

        The batch analogue of :meth:`deliver_later`, for callers that have
        already *measured* the relevant RTTs (the query daemon's probe
        fan-outs carry the latency each probe observed through the counted
        probe channel) — delivery then models timing only, without
        consulting the oracle again or re-rolling the loss model.
        """
        delays = np.asarray(delays_ms, dtype=float)
        if delays.size != len(messages):
            raise SimulationError(
                f"deliver_many got {len(messages)} messages but "
                f"{delays.size} delays"
            )
        if delays.size and float(delays.min()) < 0:
            raise SimulationError("deliver_many delays must be >= 0")
        return [
            self.loop.schedule(float(delay), self._deliver, message)
            for message, delay in zip(messages, delays)
        ]

    def _deliver(self, message: Message) -> None:
        node = self._nodes.get(message.dst)
        if node is None:  # node departed after the message was sent
            return
        self.messages_delivered += 1
        node.on_message(message)
