"""Simulated nodes and latency-faithful message delivery."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.netsim.engine import EventHandle, EventLoop
from repro.topology.oracle import (
    LatencyOracle,
    batch_latencies_from,
    batch_latency_block,
)
from repro.util.errors import SimulationError
from repro.util.rng import make_rng


@dataclass(frozen=True)
class Message:
    """A message in flight between two simulated nodes."""

    src: int
    dst: int
    kind: str
    payload: Any = None


class FaultModel:
    """The broken-network layer: what happens to a probe besides its RTT.

    A fault model sits next to a :class:`Network` and answers, for each
    probe in a fan-out, *when* its outcome is known at the prober and
    *whether* it was an answer or a timeout.  Four failure mechanisms
    compose:

    * **per-link loss** — each attempt is dropped independently with the
      cluster-pair loss probability (``loss_matrix[c(src), c(dst)]``);
    * **scheduled outages/partitions** — while an outage over a cluster
      region is active, any attempt whose path crosses the region boundary
      is dropped deterministically (attempts *sent* after the outage ends
      go through: retransmits ride out short partitions);
    * **NAT-ed peers** — a probe to a NAT-ed destination cannot go direct;
      it relays through the destination's designated reachable peer, and
      the detour RTT (``d(src, relay) + d(relay, dst)``) is billed in
      place of the direct path time;
    * **clock skew** — retransmit timers are armed on the *prober's*
      clock, so its timeout waits are scaled by the per-node skew factor.
      Local timer deliveries on the network are scaled the same way.

    Lost attempts are retransmitted with exponential backoff up to
    ``max_retransmits`` times; a probe whose every attempt is lost *times
    out* at the sum of its waits and reports no measurement.  All
    randomness comes from the generator the caller passes to
    :meth:`apply` — a dedicated fault stream, so attaching a fault model
    never perturbs workload or algorithm draws.
    """

    def __init__(
        self,
        host_cluster: np.ndarray,
        *,
        loss_matrix: np.ndarray | None = None,
        outages: Sequence[tuple[float, float, Sequence[int]]] = (),
        natted: np.ndarray | None = None,
        relay_of: np.ndarray | None = None,
        skew: np.ndarray | None = None,
        probe_timeout_ms: float = 400.0,
        max_retransmits: int = 2,
        retransmit_backoff: float = 2.0,
        query_retry_ms: float = 200.0,
        query_retry_backoff: float = 2.0,
    ) -> None:
        self.host_cluster = np.asarray(host_cluster, dtype=np.int64)
        n = self.host_cluster.size
        if loss_matrix is not None:
            loss_matrix = np.asarray(loss_matrix, dtype=float)
            if loss_matrix.min() < 0.0 or loss_matrix.max() >= 1.0:
                raise SimulationError("loss rates must be in [0, 1)")
        self.loss_matrix = loss_matrix
        self.outages = tuple(
            (float(start), float(end), tuple(int(c) for c in clusters))
            for start, end, clusters in outages
        )
        for start, end, _ in self.outages:
            if not 0.0 <= start < end:
                raise SimulationError(f"bad outage window [{start}, {end})")
        if natted is not None:
            natted = np.asarray(natted, dtype=bool)
            if natted.size != n:
                raise SimulationError("natted mask must cover every host")
            if natted.any() and relay_of is None:
                raise SimulationError("NAT-ed hosts need a relay_of map")
        self.natted = natted
        self.relay_of = (
            None if relay_of is None else np.asarray(relay_of, dtype=np.int64)
        )
        self.skew = np.ones(n) if skew is None else np.asarray(skew, dtype=float)
        if self.skew.size != n or self.skew.min() <= 0.0:
            raise SimulationError("skew factors must be positive, one per host")
        if probe_timeout_ms <= 0 or query_retry_ms <= 0:
            raise SimulationError("timeouts must be positive")
        if max_retransmits < 0:
            raise SimulationError("max_retransmits must be >= 0")
        if retransmit_backoff < 1.0 or query_retry_backoff < 1.0:
            raise SimulationError("backoff factors must be >= 1")
        self.probe_timeout_ms = float(probe_timeout_ms)
        self.max_retransmits = int(max_retransmits)
        self.retransmit_backoff = float(retransmit_backoff)
        self.query_retry_ms = float(query_retry_ms)
        self.query_retry_backoff = float(query_retry_backoff)
        self.active = bool(
            (self.loss_matrix is not None and self.loss_matrix.max() > 0.0)
            or self.outages
            or (self.natted is not None and self.natted.any())
            or bool((self.skew != 1.0).any())
        )

    # -- per-mechanism pieces -----------------------------------------------

    def timer_scale(self, node_id: int) -> float:
        """Clock-skew factor for timers armed by ``node_id`` (1.0 off-host)."""
        if 0 <= node_id < self.skew.size:
            return float(self.skew[node_id])
        return 1.0

    def _relay_detours(
        self, oracle: LatencyOracle, srcs: np.ndarray, dsts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """(relayed mask, extra detour ms) for probes to NAT-ed targets."""
        k = srcs.size
        extra = np.zeros(k)
        if self.natted is None or not self.natted.any():
            return np.zeros(k, dtype=bool), extra
        relayed = self.natted[dsts]
        if not relayed.any():
            return relayed, extra
        idx = np.flatnonzero(relayed)
        # Fan-outs share a destination (the query target), so group the
        # detour lookups by (relay, dst): one batched column per group.
        for dst in np.unique(dsts[idx]):
            rows = idx[dsts[idx] == dst]
            relay = int(self.relay_of[dst])
            to_relay = batch_latency_block(oracle, srcs[rows], [relay])[:, 0]
            detour = to_relay + oracle.latency_ms(relay, int(dst))
            direct = batch_latency_block(oracle, srcs[rows], [int(dst)])[:, 0]
            extra[rows] = np.maximum(0.0, detour - direct)
        return relayed, extra

    def _blocked(
        self,
        srcs: np.ndarray,
        dsts: np.ndarray,
        relayed: np.ndarray,
        send_times: np.ndarray,
    ) -> np.ndarray:
        """(attempts, k) mask of attempts blocked by an active partition."""
        blocked = np.zeros(send_times.shape, dtype=bool)
        if not self.outages:
            return blocked
        c_src = self.host_cluster[srcs]
        c_dst = self.host_cluster[dsts]
        c_rel = (
            self.host_cluster[self.relay_of[dsts]]
            if self.relay_of is not None
            else c_dst
        )
        for start, end, clusters in self.outages:
            region = np.asarray(clusters, dtype=np.int64)
            in_src = np.isin(c_src, region)
            in_dst = np.isin(c_dst, region)
            crosses = in_src != in_dst
            if relayed.any():
                # A relayed probe takes two hops; either crossing blocks it.
                in_rel = np.isin(c_rel, region)
                via = (in_src != in_rel) | (in_rel != in_dst)
                crosses = np.where(relayed, via, crosses)
            active = (send_times >= start) & (send_times < end)
            blocked |= active & crosses[None, :]
        return blocked

    # -- the round outcome --------------------------------------------------

    def apply(
        self,
        rng: np.random.Generator,
        oracle: LatencyOracle,
        srcs: np.ndarray,
        dsts: np.ndarray,
        base_delays: np.ndarray,
        now: float,
    ) -> tuple[np.ndarray, np.ndarray, dict[str, float]]:
        """Fault outcome of one probe fan-out issued at time ``now``.

        Returns ``(delays, answered, stats)``: per-probe completion delays
        (answer arrival, or timeout exhaustion for unanswered probes), the
        boolean answered mask, and the counter increments
        (``dropped`` / ``retransmitted`` / ``timed_out`` / ``relayed`` /
        ``relay_extra_ms``).  Draw shape per round is fixed at
        ``(max_retransmits + 1, k)`` so the fault stream's consumption
        depends only on the round sizes — not on the outcomes — keeping
        timelines invariant to stepper choice and shard layout.
        """
        srcs = np.asarray(srcs, dtype=np.int64)
        dsts = np.asarray(dsts, dtype=np.int64)
        k = srcs.size
        attempts = self.max_retransmits + 1
        relayed, extra = self._relay_detours(oracle, srcs, dsts)
        travel = np.asarray(base_delays, dtype=float) + extra
        if self.loss_matrix is not None:
            p = self.loss_matrix[self.host_cluster[srcs], self.host_cluster[dsts]]
        else:
            p = np.zeros(k)
        # Attempt i is (re)sent after i timeout waits on the prober's clock.
        waits = (
            self.probe_timeout_ms
            * (self.retransmit_backoff ** np.arange(attempts))[:, None]
            * self.skew[srcs][None, :]
        )
        wait_before = np.vstack([np.zeros((1, k)), np.cumsum(waits, axis=0)])
        send_times = now + wait_before[:-1]
        lost = (rng.random((attempts, k)) < p[None, :]) | self._blocked(
            srcs, dsts, relayed, send_times
        )
        ok = ~lost
        answered = ok.any(axis=0)
        first_ok = np.argmax(ok, axis=0)
        cols = np.arange(k)
        delays = np.where(
            answered, wait_before[first_ok, cols] + travel, wait_before[-1]
        )
        attempts_lost = np.where(answered, first_ok, attempts)
        stats = {
            "dropped": int(attempts_lost.sum()),
            "retransmitted": int(
                np.minimum(attempts_lost, attempts - 1).sum()
            ),
            "timed_out": int(k - answered.sum()),
            "relayed": int(relayed.sum()),
            "relay_extra_ms": float(extra.sum()),
        }
        return delays, answered, stats


class SimNode:
    """Base class for protocol participants.

    Subclasses override :meth:`on_message`; they send through
    :attr:`network` and schedule timers via :meth:`set_timer`.
    """

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.network: "Network | None" = None

    # -- wiring -------------------------------------------------------------

    def attached(self, network: "Network") -> None:
        """Called when the node joins a network (override for setup)."""

    def on_message(self, message: Message) -> None:
        """Handle a delivered message (override)."""

    # -- conveniences ---------------------------------------------------------

    def send(self, dst: int, kind: str, payload: Any = None) -> None:
        """Send a message; it arrives after the one-way delay to ``dst``."""
        if self.network is None:
            raise SimulationError(f"node {self.node_id} is not attached to a network")
        self.network.send(Message(src=self.node_id, dst=dst, kind=kind, payload=payload))

    def set_timer(self, delay_ms: float, kind: str, payload: Any = None) -> EventHandle:
        """Deliver a message to *self* after ``delay_ms`` (a local timer)."""
        if self.network is None:
            raise SimulationError(f"node {self.node_id} is not attached to a network")
        return self.network.deliver_later(
            Message(src=self.node_id, dst=self.node_id, kind=kind, payload=payload),
            delay_ms,
        )


class Network:
    """Delivers messages between :class:`SimNode` s using oracle latencies.

    One-way delay is half the oracle RTT; optional loss models flaky links.
    Local timer deliveries bypass the loss model.
    """

    def __init__(
        self,
        loop: EventLoop,
        oracle: LatencyOracle,
        loss_rate: float = 0.0,
        seed: int | np.random.Generator | None = None,
        fault_model: FaultModel | None = None,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise SimulationError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.loop = loop
        self.oracle = oracle
        self.loss_rate = loss_rate
        self.fault_model = fault_model
        self._rng = make_rng(seed)
        self._nodes: dict[int, SimNode] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_lost = 0
        # Fault-path probe accounting (filled by the daemon's round stepper
        # through apply_faults; silent losses are undebuggable).
        self.probes_dropped = 0
        self.probes_retransmitted = 0
        self.probes_timed_out = 0
        self.probes_relayed = 0
        self.relay_extra_ms = 0.0

    def attach(self, node: SimNode) -> None:
        """Register a node; its id must be unique on this network."""
        if node.node_id in self._nodes:
            raise SimulationError(f"duplicate node id {node.node_id}")
        node.network = self
        self._nodes[node.node_id] = node
        node.attached(self)

    def node(self, node_id: int) -> SimNode:
        return self._nodes[node_id]

    @property
    def node_ids(self) -> list[int]:
        return list(self._nodes)

    def send(self, message: Message) -> None:
        """Queue a message for delivery after the one-way delay."""
        if message.dst not in self._nodes:
            raise SimulationError(f"unknown destination node {message.dst}")
        self.messages_sent += 1
        if self.loss_rate and self._rng.random() < self.loss_rate:
            self.messages_lost += 1
            return
        delay = self.oracle.latency_ms(message.src, message.dst) / 2.0
        self.loop.schedule(delay, self._deliver, message)

    def send_many(
        self,
        src: int,
        dsts: np.ndarray | Sequence[int],
        kind: str,
        payloads: Sequence[Any] | None = None,
    ) -> None:
        """Fan one message out from ``src`` to every node in ``dsts``.

        The batched counterpart of N :meth:`send` calls: the loss decisions
        come first as one vectorised draw (the same generator stream, so
        the drop pattern is bit-identical to the scalar loop), then the
        *surviving* destinations' latencies come from a single
        :func:`~repro.topology.oracle.batch_latencies_from` draw instead of
        N scalar ``latency_ms`` calls — exactly the probes the scalar loop
        would have made, so counting/noisy oracle accounting stays exact
        (a lost message never consumes an oracle draw, scalar or batched).
        """
        dsts = np.asarray(dsts, dtype=int)
        if payloads is not None and len(payloads) != dsts.size:
            raise SimulationError(
                f"send_many got {dsts.size} destinations but "
                f"{len(payloads)} payloads"
            )
        unknown = [int(d) for d in dsts if int(d) not in self._nodes]
        if unknown:
            raise SimulationError(f"unknown destination nodes {unknown[:8]}")
        self.messages_sent += int(dsts.size)
        if dsts.size == 0:
            return
        if self.loss_rate:
            kept = self._rng.random(size=dsts.size) >= self.loss_rate
            self.messages_lost += int(dsts.size - kept.sum())
            if payloads is not None:
                payloads = [p for p, keep in zip(payloads, kept) if keep]
            dsts = dsts[kept]
            if dsts.size == 0:
                return
        delays = self.path_rtts(src, dsts) / 2.0
        for i, (dst, delay) in enumerate(zip(dsts, delays)):
            message = Message(
                src=int(src),
                dst=int(dst),
                kind=kind,
                payload=payloads[i] if payloads is not None else None,
            )
            self.loop.schedule(float(delay), self._deliver, message)

    def path_rtts(
        self, src: int, dsts: np.ndarray | Sequence[int]
    ) -> np.ndarray:
        """One vectorised RTT draw along the ``src -> dst`` network paths.

        The same oracle draw :meth:`send_many` halves into one-way delays,
        exposed for callers that bill whole round trips — the daemon's
        dispatch-RTT charging prices the coordination hop (entry node
        asking peer *p* to probe) through here.
        """
        return batch_latencies_from(
            self.oracle, int(src), np.asarray(dsts, dtype=int)
        )

    def deliver_later(self, message: Message, delay_ms: float) -> EventHandle:
        """Schedule a direct (loss-free) delivery; used for timers.

        Self-addressed messages are local timers: under an active fault
        model they run on the arming node's skewed clock.
        """
        fm = self.fault_model
        if fm is not None and fm.active and message.src == message.dst:
            delay_ms = delay_ms * fm.timer_scale(message.src)
        return self.loop.schedule(delay_ms, self._deliver, message)

    def apply_faults(
        self,
        rng: np.random.Generator,
        srcs: np.ndarray,
        dsts: np.ndarray,
        base_delays: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, dict[str, float]]:
        """Run one fan-out through the fault model and book the counters."""
        assert self.fault_model is not None
        delays, answered, stats = self.fault_model.apply(
            rng, self.oracle, srcs, dsts, base_delays, self.loop.now
        )
        self.probes_dropped += int(stats["dropped"])
        self.probes_retransmitted += int(stats["retransmitted"])
        self.probes_timed_out += int(stats["timed_out"])
        self.probes_relayed += int(stats["relayed"])
        self.relay_extra_ms += float(stats["relay_extra_ms"])
        return delays, answered, stats

    def deliver_many(
        self,
        messages: Sequence[Message],
        delays_ms: np.ndarray | Sequence[float],
    ) -> list[EventHandle]:
        """Schedule one loss-free delivery per message at an explicit delay.

        The batch analogue of :meth:`deliver_later`, for callers that have
        already *measured* the relevant RTTs (the query daemon's probe
        fan-outs carry the latency each probe observed through the counted
        probe channel) — delivery then models timing only, without
        consulting the oracle again or re-rolling the loss model.
        """
        delays = np.asarray(delays_ms, dtype=float)
        if delays.size != len(messages):
            raise SimulationError(
                f"deliver_many got {len(messages)} messages but "
                f"{delays.size} delays"
            )
        if delays.size and float(delays.min()) < 0:
            raise SimulationError("deliver_many delays must be >= 0")
        return [
            self.loop.schedule(float(delay), self._deliver, message)
            for message, delay in zip(messages, delays)
        ]

    def _deliver(self, message: Message) -> None:
        node = self._nodes.get(message.dst)
        if node is None:  # node departed after the message was sent
            return
        self.messages_delivered += 1
        node.on_message(message)
