"""The event loop: a monotonic clock plus a heap of scheduled callbacks."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.util.errors import SimulationError


@dataclass(order=True)
class _Event:
    time: float
    sequence: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    fired: bool = field(compare=False, default=False)


class EventHandle:
    """Returned by :meth:`EventLoop.schedule`; allows cancellation."""

    def __init__(self, event: _Event, loop: "EventLoop") -> None:
        self._event = event
        self._loop = loop

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        event = self._event
        if event.cancelled or event.fired:
            return
        event.cancelled = True
        self._loop._note_cancel()

    @property
    def time(self) -> float:
        """Scheduled firing time (ms)."""
        return self._event.time

    @property
    def active(self) -> bool:
        """Whether the event is still pending (not fired, not cancelled)."""
        return not (self._event.cancelled or self._event.fired)


#: Lazy-compaction trigger: the heap is rebuilt without its cancelled
#: entries once at least this many cancellations are buried in it *and*
#: they make up at least half of the queue.  The absolute floor keeps tiny
#: queues from paying an O(n) rebuild per cancellation; the fraction keeps
#: the amortised cost O(1) per cancelled event on large queues.
_COMPACT_MIN_CANCELLED = 64


class EventLoop:
    """A deterministic discrete-event scheduler.

    Time is in **milliseconds** (matching the library's latency unit).
    Events scheduled at equal times fire in scheduling order, so simulations
    are exactly reproducible.

    Cancelled events are dropped lazily: they stay in the heap (marked
    dead) until they either reach the front or a compaction pass rebuilds
    the heap without them.  :attr:`pending` is exact either way — it never
    counts cancelled entries.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[_Event] = []
        self._sequence = itertools.count()
        self._processed = 0
        self._cancelled = 0
        self._cancelled_total = 0
        self._peak_queue = 0

    @property
    def now(self) -> float:
        """Current simulation time in ms."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of *live* events still queued (cancelled ones excluded)."""
        return len(self._queue) - self._cancelled

    @property
    def queue_size(self) -> int:
        """Raw heap size, cancelled entries included (compaction diagnostic)."""
        return len(self._queue)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def peak_queue_size(self) -> int:
        """Largest raw heap size ever reached (scheduler memory pressure)."""
        return self._peak_queue

    @property
    def cancelled_total(self) -> int:
        """Cancellations over the loop's whole life (compaction workload).

        Unlike the live ``_cancelled`` tally — which compaction and pops
        drain back toward zero — this only grows, so it is the number a
        run report can surface.
        """
        return self._cancelled_total

    def schedule(
        self, delay_ms: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Run ``callback(*args)`` after ``delay_ms`` of simulated time."""
        if delay_ms < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay_ms}")
        event = _Event(
            time=self._now + delay_ms,
            sequence=next(self._sequence),
            callback=callback,
            args=args,
        )
        heapq.heappush(self._queue, event)
        if len(self._queue) > self._peak_queue:
            self._peak_queue = len(self._queue)
        return EventHandle(event, self)

    def schedule_at(
        self, time_ms: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Run ``callback(*args)`` at absolute simulated time ``time_ms``.

        Unlike ``schedule(time_ms - now, ...)``, the event fires at
        *exactly* ``time_ms`` — no float round-trip through the current
        clock.  Scripted daemon replays rely on this: every shard must
        observe one pre-drawn timestamp bit-identically, whatever its own
        clock path to that instant was.
        """
        if time_ms < self._now:
            raise SimulationError(
                f"cannot schedule in the past: t={time_ms} < now={self._now}"
            )
        event = _Event(
            time=float(time_ms),
            sequence=next(self._sequence),
            callback=callback,
            args=args,
        )
        heapq.heappush(self._queue, event)
        if len(self._queue) > self._peak_queue:
            self._peak_queue = len(self._queue)
        return EventHandle(event, self)

    def _note_cancel(self) -> None:
        """Account one cancellation; compact the heap past the threshold."""
        self._cancelled += 1
        self._cancelled_total += 1
        if (
            self._cancelled >= _COMPACT_MIN_CANCELLED
            and 2 * self._cancelled >= len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries.

        Heap order among survivors is fully determined by the unique
        ``(time, sequence)`` keys, so compaction cannot perturb firing
        order.
        """
        self._queue = [event for event in self._queue if not event.cancelled]
        heapq.heapify(self._queue)
        self._cancelled = 0

    def _pop_and_run(self) -> bool:
        """Pop the next event; return True iff it actually executed."""
        event = heapq.heappop(self._queue)
        if event.cancelled:
            self._cancelled -= 1
            return False
        if event.time < self._now:
            raise SimulationError(
                f"event at t={event.time} fired after clock reached {self._now}"
            )
        self._now = event.time
        self._processed += 1
        event.fired = True
        event.callback(*event.args)
        return True

    def run(
        self, max_events: int | None = None, max_time_ms: float | None = None
    ) -> None:
        """Drain the queue, optionally stopping after ``max_events``.

        Only events that actually fire count toward the budget — draining a
        storm of cancelled events must not starve real ones.

        ``max_time_ms`` is a livelock guard for fault simulations: if the
        next live event lies *past* the cap while work is still queued, the
        loop raises instead of running forever — a retry/backoff storm that
        never converges fails loudly at a deterministic simulated instant
        rather than hanging the process.
        """
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                return
            if max_time_ms is not None and self._queue[0].time > max_time_ms:
                if self._queue[0].cancelled:
                    self._pop_and_run()
                    continue
                raise SimulationError(
                    f"event loop ran past its {max_time_ms} ms guard with "
                    f"{self.pending} events still pending"
                )
            if self._pop_and_run():
                executed += 1

    def run_until(self, time_ms: float) -> None:
        """Run all events with firing time <= ``time_ms``, then set the clock.

        The clock ends at ``time_ms`` even if the queue drains earlier, so
        periodic protocols can resume cleanly.
        """
        if time_ms < self._now:
            raise SimulationError(
                f"cannot run backwards: now={self._now}, requested {time_ms}"
            )
        while self._queue and self._queue[0].time <= time_ms:
            self._pop_and_run()
        self._now = time_ms
