"""The event loop: a monotonic clock plus a heap of scheduled callbacks."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.util.errors import SimulationError


@dataclass(order=True)
class _Event:
    time: float
    sequence: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Returned by :meth:`EventLoop.schedule`; allows cancellation."""

    def __init__(self, event: _Event) -> None:
        self._event = event

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        self._event.cancelled = True

    @property
    def time(self) -> float:
        """Scheduled firing time (ms)."""
        return self._event.time


class EventLoop:
    """A deterministic discrete-event scheduler.

    Time is in **milliseconds** (matching the library's latency unit).
    Events scheduled at equal times fire in scheduling order, so simulations
    are exactly reproducible.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[_Event] = []
        self._sequence = itertools.count()
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in ms."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(
        self, delay_ms: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Run ``callback(*args)`` after ``delay_ms`` of simulated time."""
        if delay_ms < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay_ms}")
        event = _Event(
            time=self._now + delay_ms,
            sequence=next(self._sequence),
            callback=callback,
            args=args,
        )
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def _pop_and_run(self) -> bool:
        """Pop the next event; return True iff it actually executed."""
        event = heapq.heappop(self._queue)
        if event.cancelled:
            return False
        if event.time < self._now:
            raise SimulationError(
                f"event at t={event.time} fired after clock reached {self._now}"
            )
        self._now = event.time
        self._processed += 1
        event.callback(*event.args)
        return True

    def run(self, max_events: int | None = None) -> None:
        """Drain the queue, optionally stopping after ``max_events``.

        Only events that actually fire count toward the budget — draining a
        storm of cancelled events must not starve real ones.
        """
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                return
            if self._pop_and_run():
                executed += 1

    def run_until(self, time_ms: float) -> None:
        """Run all events with firing time <= ``time_ms``, then set the clock.

        The clock ends at ``time_ms`` even if the queue drains earlier, so
        periodic protocols can resume cleanly.
        """
        if time_ms < self._now:
            raise SimulationError(
                f"cannot run backwards: now={self._now}, requested {time_ms}"
            )
        while self._queue and self._queue[0].time <= time_ms:
            self._pop_and_run()
        self._now = time_ms
