"""A small discrete-event network simulator.

Protocol components that need *time* — gossip-based overlay maintenance,
Chord stabilisation, expanding-ring multicast searches — run on this engine.
Messages between simulated nodes are delivered after half the oracle RTT
(one-way delay); timers fire on the same clock.  The engine is deliberately
minimal: a binary-heap event queue with deterministic tie-breaking, which is
all the paper's protocols require.
"""

from repro.netsim.engine import EventLoop
from repro.netsim.network import FaultModel, Message, Network, SimNode

__all__ = ["EventLoop", "FaultModel", "Network", "SimNode", "Message"]
