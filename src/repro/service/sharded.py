"""Sharded daemon driver: partition the event loop across a process pool.

One simulated-time daemon run is, at heart, a pile of independent query
servicing interleaved with a shared membership process.  This driver
exploits that: the workload (arrival times, targets, entry nodes,
membership events, per-query plan seeds) is *pre-drawn* in the parent
into a :class:`~repro.service.daemon.DaemonScript`, the entry-node id
space is split into contiguous shards, and each shard replays the whole
script on its own replica of the built algorithm — applying **every**
membership event (so all replicas evolve identically, in lockstep on an
identically-seeded maintenance generator) while serving **only** the
queries whose entry node falls in its range.  Admission contention
(per-node concurrency, FIFO queues) is per entry node, so it never
crosses a shard boundary, and each query's plan draws from its own
pre-assigned seed — which is what makes the merged results invariant to
the shard count.

Restrictions, enforced here: no separate probe oracle (a stateful noisy
stream shared across queries would make measurements depend on the shard
layout) and eager maintenance only (lazy/coalesce flush timing depends
on shard-local query order).  Per-job ``maintenance_probes`` attribution
is claim-order-local to a shard and is therefore *not* shard-invariant;
timelines, answers, probe counts — and the per-*event* maintenance
ledger (``maintenance_by_event``) — are.  Every replica replays every
membership event on an identically-seeded maintenance generator, so the
replicas' ledgers are bit-identical and the merge takes the
longest-lived replica's, like the other replicated maintenance
counters.  The ledger, not the per-job claims, is the exact attribution
surface.

Merging: jobs are reunited in global arrival order; time-weighted areas
sum exactly (entry sets are disjoint, and a shard's integral is zero
after its own drain); global queue/in-flight *peaks* are reconstructed
from the shards' recorded (time, ±k) breakpoints in one sort/cumsum;
``loop_events`` sums (work actually done); the ring-repair and trailing
maintenance counters take the longest-lived replica's values (every
replica performs identical repairs while live — summing would count one
overlay's upkeep once per shard).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.algorithms.base import NearestPeerAlgorithm
from repro.harness.results import MembershipLog
from repro.harness.scenario import DaemonSpec
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import merge_span_streams
from repro.service.daemon import DaemonRun, DaemonScript, QueryDaemon
from repro.service.stepper import peak_from_breakpoints
from repro.util.errors import ConfigurationError


def _pre_draw_script(
    spec: DaemonSpec,
    targets: np.ndarray,
    initial_live: np.ndarray,
    standby: list[int],
    n_queries: int,
    wrng: np.random.Generator,
    plan_seeds: np.ndarray,
) -> DaemonScript:
    """Draw the whole daemon workload up front, as one deterministic pass.

    Draw order (pinned by the shard-invariance test): all inter-arrival
    gaps, then all targets, then the membership event schedule (each tick
    drawing departures, then arrivals, then its next gap — the live
    daemon's per-tick order), then each arrival's entry node against the
    membership alive at that instant.  Events stop at the last arrival:
    later ones could not affect any query's admission or plan.
    """
    gaps = wrng.exponential(spec.mean_interarrival_ms, size=n_queries)
    arrival_ms = np.cumsum(gaps)
    query_targets = wrng.choice(targets, size=n_queries)
    events: list[tuple[float, tuple, tuple]] = []
    live = np.asarray(initial_live, dtype=int).copy()
    pool = list(standby)
    if spec.mean_event_interval_ms is not None:
        t = float(wrng.exponential(spec.mean_event_interval_ms))
        last_arrival = float(arrival_ms[-1])
        while t <= last_arrival:
            departing: list[int] = []
            n_dep = int(wrng.poisson(spec.departure_rate))
            n_dep = min(n_dep, max(0, live.size - spec.min_members))
            if n_dep > 0:
                departing = [
                    int(x) for x in wrng.choice(live, size=n_dep, replace=False)
                ]
                live = live[~np.isin(live, departing)]
                pool.extend(departing)
            n_arr = min(int(wrng.poisson(spec.arrival_rate)), len(pool))
            arriving: list[int] = []
            if n_arr > 0:
                picks = wrng.choice(len(pool), size=n_arr, replace=False)
                arriving = [pool[int(i)] for i in picks]
                for index in sorted((int(i) for i in picks), reverse=True):
                    del pool[index]
                live = np.concatenate([live, np.asarray(arriving, dtype=int)])
            if departing or arriving:
                events.append((t, tuple(arriving), tuple(departing)))
            t += float(wrng.exponential(spec.mean_event_interval_ms))
    entries = np.empty(n_queries, dtype=int)
    live = np.asarray(initial_live, dtype=int).copy()
    cursor = 0
    for i, t_arr in enumerate(arrival_ms.tolist()):
        while cursor < len(events) and events[cursor][0] <= t_arr:
            _t, arr, dep = events[cursor]
            if dep:
                live = live[~np.isin(live, np.asarray(dep, dtype=int))]
            if arr:
                live = np.concatenate([live, np.asarray(arr, dtype=int)])
            cursor += 1
        entries[i] = int(wrng.choice(live))
    return DaemonScript(
        arrival_ms=arrival_ms,
        targets=np.asarray(query_targets, dtype=int),
        entries=entries,
        plan_seeds=plan_seeds,
        own=np.ones(n_queries, dtype=bool),
        events=tuple(events),
    )


def _run_shard(
    algorithm: NearestPeerAlgorithm,
    spec: DaemonSpec,
    targets: np.ndarray,
    script: DaemonScript,
    maintenance_seed: list[int],
    fault_model=None,
    fault_key: tuple[int, ...] | None = None,
    max_sim_ms: float | None = None,
) -> dict:
    """Run one scripted shard and return its picklable partial record."""
    daemon = QueryDaemon(
        algorithm,
        spec,
        targets=targets,
        workload_rng=None,
        algo_rng=np.random.default_rng(maintenance_seed),
        standby=[],
        script=script,
        fault_model=fault_model,
        fault_key=fault_key,
    )
    run = daemon.run(int(np.count_nonzero(script.own)), max_sim_ms=max_sim_ms)
    for job in run.jobs:
        job.plan = None  # generators do not pickle
    stepper = daemon._stepper
    return {
        "jobs": run.jobs,
        "makespan_ms": run.makespan_ms,
        "queue_area": daemon._queue_area,
        "queue_bp_times": _cat(daemon._queue_bp_times),
        "queue_bp_deltas": _cat(daemon._queue_bp_deltas),
        "in_flight_area": stepper.area,
        "in_flight_bp_times": _cat(stepper.bp_times),
        "in_flight_bp_deltas": _cat(stepper.bp_deltas),
        "trailing_maintenance": run.trailing_maintenance_probes,
        "maintenance_by_event": run.maintenance_by_event,
        "maintenance_background": run.maintenance_background_probes,
        "ring_repair": (
            run.ring_repair_passes,
            run.ring_repair_nodes,
            run.ring_repair_probes,
        ),
        "forced_flushes": run.forced_flushes,
        "loop_events": run.loop_events,
        "fault_totals": (
            run.probes_dropped,
            run.probes_retransmitted,
            run.probes_timed_out,
            run.probes_relayed,
            run.relay_extra_ms,
            run.query_retries,
        ),
        "loop_stats": (
            run.loop_pending_at_drain,
            run.loop_queue_peak,
            run.loop_cancelled_events,
        ),
        "spans": run.spans,
        "metrics": run.metrics,
    }


def _cat(chunks: list[np.ndarray]) -> np.ndarray:
    return np.concatenate(chunks) if chunks else np.zeros(0)


def _shard_task(payload: tuple) -> dict:
    """Module-level pool entry point (picklable), mirroring the harness."""
    return _run_shard(*payload)


def run_sharded_daemon(
    algorithm: NearestPeerAlgorithm,
    spec: DaemonSpec,
    *,
    targets: np.ndarray,
    standby: list[int],
    n_queries: int,
    workload_rng: np.random.Generator,
    algo_rng: np.random.Generator,
    fault_model=None,
    fault_key: tuple[int, ...] | None = None,
    max_sim_ms: float | None = None,
) -> DaemonRun:
    """Run one daemon workload across ``spec.shards`` processes and merge.

    Call with the algorithm already *built* and the stream discipline of
    :meth:`~repro.harness.engine.QueryEngine.run_daemon_trial` already
    observed (``workload_rng`` split off first, build consuming
    ``algo_rng``); this function continues both streams — the workload
    stream pre-draws the script, the algorithm stream yields one child
    seed from which per-query plan seeds and the shards' common
    maintenance generator derive.  ``spec.shards == 1`` runs the scripted
    protocol inline (no pool) — the reference the invariance test holds
    higher shard counts to.
    """
    if algorithm._probe_oracle is not algorithm.oracle:
        raise ConfigurationError(
            "sharded daemon runs forbid a separate probe oracle: a stateful "
            "noisy stream shared across queries would depend on the shard "
            "layout"
        )
    if not algorithm._scheduler.eager:
        raise ConfigurationError(
            "sharded daemon runs require eager maintenance: deferred flush "
            "timing is local to a shard's query order"
        )
    targets = np.asarray(targets, dtype=int)
    algo_seed = int(algo_rng.integers(2**63))
    plan_seeds = np.random.default_rng([algo_seed, 1]).integers(
        2**63, size=n_queries
    )
    maintenance_seed = [algo_seed, 0]
    script = _pre_draw_script(
        spec, targets, algorithm.members, standby, n_queries, workload_rng,
        plan_seeds,
    )
    n_nodes = int(algorithm.oracle.n_nodes)
    shard_of_entry = (script.entries.astype(np.int64) * spec.shards) // n_nodes
    populated = [
        s for s in range(spec.shards) if np.any(shard_of_entry == s)
    ]
    tasks = []
    for s in populated:
        own = shard_of_entry == s
        shard_script = DaemonScript(
            arrival_ms=script.arrival_ms,
            targets=script.targets,
            entries=script.entries,
            plan_seeds=script.plan_seeds,
            own=own,
            events=script.events,
        )
        tasks.append(
            (
                algorithm,
                spec,
                targets,
                shard_script,
                maintenance_seed,
                fault_model,
                fault_key,
                max_sim_ms,
            )
        )
    if len(tasks) == 1:
        parts = [_shard_task(tasks[0])]
    else:
        with ProcessPoolExecutor(max_workers=len(tasks)) as pool:
            parts = list(pool.map(_shard_task, tasks))
    return _merge(script, algorithm, parts)


def _merge(
    script: DaemonScript,
    algorithm: NearestPeerAlgorithm,
    parts: list[dict],
) -> DaemonRun:
    """Reunite shard partial records into one global :class:`DaemonRun`."""
    longest = max(parts, key=lambda part: part["makespan_ms"])
    # Maintenance is replicated work, not partitioned work: every replica
    # replays every membership event, so claims from two replicas double
    # count the same logical upkeep.  The merged record reports one
    # replica's worth — the longest-lived one's, whose claims + trailing
    # counter cover its whole timeline — keeping the record's
    # ``total_maintenance_probes`` equal to ``sum(maintenance_by_event)
    # + maintenance_background_probes`` exactly as in unsharded runs.
    for part in parts:
        if part is not longest:
            for job in part["jobs"]:
                job.result.maintenance_probes = 0
    jobs = sorted(
        (job for part in parts for job in part["jobs"]),
        key=lambda job: job.index,
    )
    memberships = MembershipLog(algorithm.members)
    n_events = 0
    for _t, arriving, departing in script.events:
        memberships.append_event(list(arriving), list(departing))
        n_events += (1 if departing else 0) + (1 if arriving else 0)
    makespan = max(part["makespan_ms"] for part in parts)
    queue_area = sum(part["queue_area"] for part in parts)
    in_flight_area = sum(part["in_flight_area"] for part in parts)
    queue_peak = peak_from_breakpoints(
        [part["queue_bp_times"] for part in parts],
        [part["queue_bp_deltas"] for part in parts],
    )
    in_flight_peak = peak_from_breakpoints(
        [part["in_flight_bp_times"] for part in parts],
        [part["in_flight_bp_deltas"] for part in parts],
    )
    spans = metrics = None
    if longest["spans"] is not None:
        # Query spans are partitioned (one shard serves each query) so
        # their union is exact; maintenance spans are replicated work and
        # one replica's stream — the longest-lived one's, matching the
        # counter merge above — is the global stream.
        per_query = [
            span
            for part in parts
            for span in part["spans"]
            if span.query is not None
        ]
        maintenance = [
            span for span in longest["spans"] if span.query is None
        ]
        spans = merge_span_streams(per_query, maintenance)
        metrics = MetricsRegistry.merge([part["metrics"] for part in parts])
    return DaemonRun(
        jobs=jobs,
        memberships=memberships,
        n_events=n_events,
        makespan_ms=makespan,
        queue_depth_time_avg=queue_area / makespan if makespan > 0 else 0.0,
        queue_depth_max=queue_peak,
        in_flight_probes_time_avg=(
            in_flight_area / makespan if makespan > 0 else 0.0
        ),
        in_flight_probes_max=in_flight_peak,
        trailing_maintenance_probes=longest["trailing_maintenance"],
        maintenance_by_event=longest["maintenance_by_event"],
        maintenance_background_probes=longest["maintenance_background"],
        ring_repair_passes=longest["ring_repair"][0],
        ring_repair_nodes=longest["ring_repair"][1],
        ring_repair_probes=longest["ring_repair"][2],
        forced_flushes=longest["forced_flushes"],
        loop_events=sum(part["loop_events"] for part in parts),
        # Fault bills accrue only on a shard's own jobs, so the shard
        # totals are disjoint and sum exactly.
        probes_dropped=sum(part["fault_totals"][0] for part in parts),
        probes_retransmitted=sum(part["fault_totals"][1] for part in parts),
        probes_timed_out=sum(part["fault_totals"][2] for part in parts),
        probes_relayed=sum(part["fault_totals"][3] for part in parts),
        relay_extra_ms=sum(part["fault_totals"][4] for part in parts),
        query_retries=sum(part["fault_totals"][5] for part in parts),
        # Heap peaks are shard-local (the loops are disjoint); report the
        # largest single loop's, and the total cancellation workload.
        loop_pending_at_drain=sum(part["loop_stats"][0] for part in parts),
        loop_queue_peak=max(part["loop_stats"][1] for part in parts),
        loop_cancelled_events=sum(part["loop_stats"][2] for part in parts),
        spans=spans,
        metrics=metrics,
    )
