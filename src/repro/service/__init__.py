"""Simulated-time nearest-peer service.

The paper's title quantity is the *difficulty* of finding the nearest peer
— in a deployed system, the wall-clock time an answer takes, not just the
probe count the offline benchmarks bill.  This package runs any
:class:`~repro.algorithms.base.NearestPeerAlgorithm` as a **daemon** on
the :mod:`repro.netsim` event loop:

* queries arrive as a Poisson process and are answered through the
  stepwise sans-io :meth:`~repro.algorithms.base.NearestPeerAlgorithm.query_plan`
  protocol, so every probe fan-out completes only after its simulated RTT
  and a query's latency is its true critical path;
* entry nodes serve a bounded number of queries concurrently, with FIFO
  queueing behind the cap — queueing delay shows up in time-to-answer
  exactly as it would in production;
* membership events, deferred-maintenance flushes and Meridian's
  continuous gossip ring repair
  (:class:`~repro.meridian.gossip.PeriodicRepair`) fire on the same loop,
  interleaved between query rounds.

The daemon core is vectorised: hot per-node state lives in
struct-of-arrays form (:mod:`repro.service.soa`), probe rounds step as
whole numpy batches (:mod:`repro.service.stepper`), and a run can be
partitioned across a process pool by entry-node range
(:mod:`repro.service.sharded`), which is what carries the simulator to
million-peer populations.

The harness front-end is the ``daemon`` protocol
(:meth:`repro.harness.engine.QueryEngine.run_daemon_trial`), which scores
the run and wraps it in a
:class:`~repro.harness.results.DaemonTrialRecord` carrying time-to-answer
percentiles next to the classic probe bill.
"""

from repro.service.daemon import DaemonRun, DaemonScript, QueryDaemon
from repro.service.sharded import run_sharded_daemon
from repro.service.soa import MemberStateArrays
from repro.service.stepper import PlanBatchStepper, ScalarStepper

__all__ = [
    "DaemonRun",
    "DaemonScript",
    "MemberStateArrays",
    "PlanBatchStepper",
    "QueryDaemon",
    "ScalarStepper",
    "run_sharded_daemon",
]
