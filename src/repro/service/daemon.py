"""The discrete-event nearest-peer query daemon.

One :class:`QueryDaemon` owns an :class:`~repro.netsim.engine.EventLoop`,
a :class:`~repro.netsim.network.Network` and one *built*
:class:`~repro.algorithms.base.NearestPeerAlgorithm`, and serves a batch
of Poisson-arriving queries under latency-faithful timing:

* each query is a stepwise plan
  (:meth:`~repro.algorithms.base.NearestPeerAlgorithm.query_plan`); a
  round's completion is simulated by the configured stepper
  (:mod:`repro.service.stepper`) — the vectorised
  :class:`~repro.service.stepper.PlanBatchStepper` resumes the plan with
  one round event at the slowest probe's RTT, the historical
  :class:`~repro.service.stepper.ScalarStepper` delivers one loop event
  per probe; both produce identical timelines;
* queries are admitted at a random live entry node, at most
  ``per_node_concurrency`` in service per node, the rest FIFO-queued —
  admission counters live in struct-of-arrays form
  (:class:`~repro.service.soa.MemberStateArrays`) so the hot path is
  array indexing, not dict hashing;
* membership events (counted join/leave maintenance), forced
  deferred-maintenance flushes and continuous Meridian ring repair
  (:class:`~repro.meridian.gossip.PeriodicRepair`) fire on the same loop.

The daemon is deterministic: one workload generator drives arrivals,
targets, entry choices and membership draws; one algorithm generator
drives build/query/maintenance randomness.  Same seeds, same timeline.
Alternatively a fully pre-drawn :class:`DaemonScript` replaces the
workload generator — the sharded driver's protocol, where every shard
replays the same script and serves only its own entry-node range.

**Dispatch model.** A probe round completes after its slowest probe's
RTT.  By default the coordination hop (asking member *p* to probe the
target) is not billed in time — the daemon measures the scheme's
*probing* critical path, the quantity the paper's lower bound speaks to.
``DaemonSpec.charge_dispatch`` adds the entry->prober dispatch RTT to
each probe's completion, pricing the hop the real protocol pays.
``zero_delay`` collapses all delays; the loop then serialises queries
and the daemon reproduces blocking ``query()`` results bit for bit.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.algorithms.base import NearestPeerAlgorithm, SearchResult
from repro.harness.results import MembershipLog
from repro.harness.scenario import DaemonSpec
from repro.meridian.gossip import PeriodicRepair
from repro.netsim.engine import EventHandle, EventLoop
from repro.netsim.network import FaultModel, Message, Network, SimNode
from repro.obs.trace import Tracer
from repro.service.soa import MemberStateArrays
from repro.service.stepper import PlanBatchStepper, ScalarStepper
from repro.util.errors import ConfigurationError, SimulationError


@dataclass
class QueryJob:
    """One query's lifecycle on the daemon."""

    index: int
    target: int
    entry: int
    arrival_ms: float
    start_ms: float = -1.0
    finish_ms: float = -1.0
    #: Membership epoch (index into the daemon's log) at service start.
    epoch: int = 0
    membership_size: int = 0
    result: SearchResult | None = None
    #: Probe rounds the plan issued (diagnostic).
    rounds: int = 0
    #: Fault-path bills (all zero without an active fault model).
    probe_drops: int = 0
    probe_retransmits: int = 0
    probe_timeouts: int = 0
    relayed_probes: int = 0
    #: Whole-plan restarts after a fully-faulted attempt.
    retries: int = 0
    plan: Iterator | None = field(default=None, repr=False)
    _outstanding: int = field(default=0, repr=False)
    #: Per-probe answered mask of the round in flight (None = all answered).
    _pending_mask: np.ndarray | None = field(default=None, repr=False)
    #: The job's private fault stream (created lazily; consumed in the
    #: job's own round order, so outcomes are shard- and stepper-invariant).
    _fault_rng: np.random.Generator | None = field(default=None, repr=False)
    #: Probe/maintenance bills carried over from failed plan attempts.
    _carry_probes: int = field(default=0, repr=False)
    _carry_aux: int = field(default=0, repr=False)
    _carry_maintenance: int = field(default=0, repr=False)

    @property
    def time_to_answer_ms(self) -> float:
        return self.finish_ms - self.arrival_ms

    @property
    def queue_wait_ms(self) -> float:
        return self.start_ms - self.arrival_ms


@dataclass(frozen=True)
class DaemonScript:
    """A fully pre-drawn daemon workload, replayable by every shard.

    Arrays are indexed by *global* query index; ``own`` masks the queries
    this daemon instance serves (all of them in the single-shard case).
    ``events`` carries the absolute-time membership schedule — every
    shard applies every event, so all algorithm replicas evolve
    identically, while each query's plan draws from its own independent
    ``plan_seeds`` entry (what makes answers invariant to the shard
    layout).
    """

    arrival_ms: np.ndarray
    targets: np.ndarray
    entries: np.ndarray
    plan_seeds: np.ndarray
    own: np.ndarray
    #: ``(time_ms, arriving tuple, departing tuple)`` in ascending time.
    events: tuple = ()


@dataclass
class DaemonRun:
    """Raw outcome of one daemon run (pre-scoring).

    ``jobs`` are in arrival order.  The time-weighted means integrate the
    queue depth / in-flight probe count over the run's makespan, so an
    idle tail dilutes them exactly as it would a production dashboard's.
    """

    jobs: list[QueryJob]
    memberships: MembershipLog
    #: Non-empty membership events applied (join and leave counted apart).
    n_events: int
    makespan_ms: float
    queue_depth_time_avg: float
    queue_depth_max: int
    in_flight_probes_time_avg: float
    in_flight_probes_max: int
    #: Maintenance accrued after the last answered query (unclaimed by any
    #: job's ``maintenance_probes``).
    trailing_maintenance_probes: int
    ring_repair_passes: int
    ring_repair_nodes: int
    ring_repair_probes: int
    forced_flushes: int
    loop_events: int
    #: Exact per-membership-event maintenance bills from the algorithm's
    #: ledger, indexed by event id in observation order (length
    #: ``n_events``).  Unlike the per-job claims these are invariant to
    #: scheduling order, stepper choice and shard layout.
    maintenance_by_event: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )
    #: Maintenance probes with no membership-event cause (ring repair).
    maintenance_background_probes: int = 0
    #: Fault-path totals (zero without an active fault model).
    probes_dropped: int = 0
    probes_retransmitted: int = 0
    probes_timed_out: int = 0
    probes_relayed: int = 0
    relay_extra_ms: float = 0.0
    query_retries: int = 0
    #: Event-loop internals surfaced for diagnostics: live events still
    #: queued when the loop drained (0 for a clean run), the largest raw
    #: heap ever held, and the lifetime cancellation count (compaction
    #: workload).
    loop_pending_at_drain: int = 0
    loop_queue_peak: int = 0
    loop_cancelled_events: int = 0
    #: Trace stream and metrics registry, populated only when
    #: ``DaemonSpec.trace`` is set (``None`` otherwise — tracing off means
    #: the run carries no observability payload at all).
    spans: list | None = None
    metrics: object | None = None


class _Coordinator(SimNode):
    """The daemon's single attached node: every probe reply lands here."""

    def __init__(self, node_id: int, daemon: "QueryDaemon") -> None:
        super().__init__(node_id)
        self._daemon = daemon

    def on_message(self, message: Message) -> None:
        kind = message.kind
        if kind == "probe-reply":
            self._daemon._on_probe_reply(message.payload)
        elif kind == "round-empty":
            self._daemon._advance(message.payload)
        else:
            raise SimulationError(f"coordinator got unknown message {kind!r}")


class QueryDaemon:
    """Serves nearest-peer queries under concurrent simulated-time load.

    The caller supplies a *built* algorithm plus the workload inputs; the
    engine front-end (:meth:`repro.harness.engine.QueryEngine.run_daemon_trial`)
    handles the member/standby split and build, mirroring the churn
    session's stream discipline so one integer seed replays everything.

    Workload draw order (pinned — the determinism and zero-delay
    equivalence tests replay it): per arrival, *target*, then *entry
    node*, then (while arrivals remain) the next *inter-arrival gap*;
    membership ticks draw departures then arrivals then the next gap.

    With a :class:`DaemonScript` the workload generator is bypassed:
    arrivals, targets, entries, per-query plan seeds and membership
    events are read from the pre-drawn script instead (``workload_rng``
    may then be ``None``), and only the queries in ``script.own`` are
    served here.
    """

    def __init__(
        self,
        algorithm: NearestPeerAlgorithm,
        spec: DaemonSpec,
        targets: np.ndarray,
        workload_rng: np.random.Generator | None,
        algo_rng: np.random.Generator,
        standby: list[int] | None = None,
        script: DaemonScript | None = None,
        fault_model: FaultModel | None = None,
        fault_key: tuple[int, ...] | None = None,
    ) -> None:
        self.algorithm = algorithm
        self.spec = spec
        self.targets = np.asarray(targets, dtype=int)
        if self.targets.size == 0:
            raise ConfigurationError("the daemon needs a non-empty target pool")
        if workload_rng is None and script is None:
            raise ConfigurationError(
                "an unscripted daemon needs a workload generator"
            )
        if fault_model is not None and fault_key is None:
            raise ConfigurationError(
                "a fault model needs a fault_key (the dedicated stream seed)"
            )
        self.workload_rng = workload_rng
        self.algo_rng = algo_rng
        self.standby: list[int] = list(standby) if standby is not None else []
        self.loop = EventLoop()
        self.fault_model = fault_model
        self.fault_key = tuple(int(x) for x in fault_key) if fault_key else None
        self.network = Network(
            self.loop, algorithm.oracle, fault_model=fault_model
        )
        self._coordinator_id = int(algorithm.oracle.n_nodes)  # off host range
        self._coordinator = _Coordinator(self._coordinator_id, self)
        self.network.attach(self._coordinator)
        self.memberships = MembershipLog(algorithm.members)
        self.n_events = 0
        self.jobs: list[QueryJob] = []
        # Hot per-node state, struct-of-arrays (admission + liveness).
        self.state = MemberStateArrays(
            int(algorithm.oracle.n_nodes), algorithm.members
        )
        self._fifo: dict[int, deque[QueryJob]] = {}
        # Time-weighted queue accounting (breakpoints kept for exact
        # cross-shard peak merging).
        self._queued = 0
        self._queue_area = 0.0
        self._queue_last = 0.0
        self.queue_depth_max = 0
        self._queue_bp_times: list[np.ndarray] = []
        self._queue_bp_deltas: list[np.ndarray] = []
        # Round stepping strategy (in-flight accounting lives there).
        self._stepper = (
            PlanBatchStepper(self)
            if spec.stepper == "batch"
            else ScalarStepper(self)
        )
        # Scripted (sharded-protocol) workload state.
        self._script = script
        self._own_indices = (
            np.flatnonzero(script.own) if script is not None else None
        )
        self._script_cursor = 0
        self._event_cursor = 0
        # Run bookkeeping.
        self._n_queries = 0
        self._arrived = 0
        self._answered = 0
        self._done = False
        self._membership_timer: EventHandle | None = None
        self._flush_timer: EventHandle | None = None
        self._repair: PeriodicRepair | None = None
        self.forced_flushes = 0
        self.query_retries = 0
        # Tracing is strictly opt-in: with ``spec.trace`` unset the hot
        # path carries one ``is None`` check per hook and nothing else.
        self.tracer: Tracer | None = (
            Tracer() if spec.trace is not None else None
        )
        if self.tracer is not None:
            algorithm._flush_observer = self._observe_flush

    # -- run ---------------------------------------------------------------

    def run(self, n_queries: int, max_sim_ms: float | None = None) -> DaemonRun:
        """Serve ``n_queries`` queries to completion and collect the run.

        ``max_sim_ms`` arms the event loop's livelock guard: a fault
        configuration whose retries never converge raises at that
        simulated instant instead of spinning forever (the no-hang tests
        run fault scenarios under a generous guard).
        """
        if n_queries < 1:
            raise ConfigurationError(f"n_queries must be >= 1, got {n_queries}")
        if self.jobs:
            raise ConfigurationError("a QueryDaemon instance runs once")
        script = self._script
        if script is not None and n_queries != int(self._own_indices.size):
            raise ConfigurationError(
                f"scripted daemon owns {int(self._own_indices.size)} queries, "
                f"asked to serve {n_queries}"
            )
        self._n_queries = n_queries
        spec = self.spec
        if script is None:
            self.loop.schedule(self._next_gap(), self._arrival)
            if spec.mean_event_interval_ms is not None:
                self._membership_timer = self.loop.schedule(
                    float(
                        self.workload_rng.exponential(spec.mean_event_interval_ms)
                    ),
                    self._membership_tick,
                )
        else:
            self.loop.schedule_at(
                float(script.arrival_ms[self._own_indices[0]]),
                self._script_arrival,
            )
            if script.events:
                self._membership_timer = self.loop.schedule_at(
                    float(script.events[0][0]), self._script_event
                )
        if spec.flush_period_ms is not None:
            self._flush_timer = self.loop.schedule(
                spec.flush_period_ms, self._flush_tick
            )
        repair_fn = getattr(self.algorithm, "repair_rings", None)
        if spec.ring_repair_period_ms is not None and repair_fn is not None:
            self._repair = PeriodicRepair(
                self.loop,
                spec.ring_repair_period_ms,
                lambda: repair_fn(seed=self.algo_rng),
            )
            self._repair.start()
        self.loop.run(max_time_ms=max_sim_ms)
        if self._answered != n_queries:
            raise SimulationError(
                f"daemon drained with {self._answered}/{n_queries} answered"
            )
        # Close the time-weighted integrals at the makespan.
        self._note_queue(0)
        self._stepper.finalize()
        makespan = self.loop.now
        repair = self._repair
        spans = metrics = None
        tracer = self.tracer
        if tracer is not None:
            self.algorithm._flush_observer = None
            metrics = tracer.metrics
            # The load gauges reuse the breakpoints the daemon/stepper
            # already recorded — zero extra hot-path work.
            queue_gauge = metrics.gauge("queue_depth")
            if self._queue_bp_times:
                queue_gauge.extend(
                    np.concatenate(self._queue_bp_times),
                    np.concatenate(self._queue_bp_deltas),
                )
            flight_gauge = metrics.gauge("in_flight_probes")
            if self._stepper.bp_times:
                flight_gauge.extend(
                    np.concatenate(self._stepper.bp_times),
                    np.concatenate(self._stepper.bp_deltas),
                )
            spans = tracer.sorted_spans()
        return DaemonRun(
            jobs=self.jobs,
            memberships=self.memberships,
            n_events=self.n_events,
            makespan_ms=makespan,
            queue_depth_time_avg=(
                self._queue_area / makespan if makespan > 0 else 0.0
            ),
            queue_depth_max=self.queue_depth_max,
            in_flight_probes_time_avg=(
                self._stepper.area / makespan if makespan > 0 else 0.0
            ),
            in_flight_probes_max=self._stepper.peak,
            trailing_maintenance_probes=self.algorithm.unclaimed_maintenance_probes,
            maintenance_by_event=self.algorithm.maintenance_by_event,
            maintenance_background_probes=(
                self.algorithm.maintenance_background_probes
            ),
            ring_repair_passes=repair.passes if repair else 0,
            ring_repair_nodes=repair.nodes_repaired if repair else 0,
            ring_repair_probes=repair.probes_spent if repair else 0,
            forced_flushes=self.forced_flushes,
            loop_events=self.loop.processed,
            probes_dropped=self.network.probes_dropped,
            probes_retransmitted=self.network.probes_retransmitted,
            probes_timed_out=self.network.probes_timed_out,
            probes_relayed=self.network.probes_relayed,
            relay_extra_ms=self.network.relay_extra_ms,
            query_retries=self.query_retries,
            loop_pending_at_drain=self.loop.pending,
            loop_queue_peak=self.loop.peak_queue_size,
            loop_cancelled_events=self.loop.cancelled_total,
            spans=spans,
            metrics=metrics,
        )

    # -- load accounting ---------------------------------------------------

    def _note_queue(self, delta: int) -> None:
        now = self.loop.now
        self._queue_area += self._queued * (now - self._queue_last)
        self._queue_last = now
        self._queued += delta
        if self._queued > self.queue_depth_max:
            self.queue_depth_max = self._queued
        if delta:
            self._queue_bp_times.append(np.array([now]))
            self._queue_bp_deltas.append(np.array([delta]))

    # -- arrivals and admission --------------------------------------------

    def _next_gap(self) -> float:
        return float(
            self.workload_rng.exponential(self.spec.mean_interarrival_ms)
        )

    def _arrival(self) -> None:
        wrng = self.workload_rng
        target = int(wrng.choice(self.targets))
        live = self.algorithm.members
        entry = int(wrng.choice(live))
        job = QueryJob(
            index=self._arrived,
            target=target,
            entry=entry,
            arrival_ms=self.loop.now,
        )
        self._arrived += 1
        self.jobs.append(job)
        if self._arrived < self._n_queries:
            self.loop.schedule(self._next_gap(), self._arrival)
        self._admit(job)

    def _script_arrival(self) -> None:
        script = self._script
        global_index = int(self._own_indices[self._script_cursor])
        self._script_cursor += 1
        job = QueryJob(
            index=global_index,
            target=int(script.targets[global_index]),
            entry=int(script.entries[global_index]),
            arrival_ms=self.loop.now,
        )
        self._arrived += 1
        self.jobs.append(job)
        if self._script_cursor < self._own_indices.size:
            next_at = float(
                script.arrival_ms[self._own_indices[self._script_cursor]]
            )
            self.loop.schedule_at(next_at, self._script_arrival)
        self._admit(job)

    def _admit(self, job: QueryJob) -> None:
        if self.state.active[job.entry] < self.spec.per_node_concurrency:
            self._start(job)
        else:
            self._fifo.setdefault(job.entry, deque()).append(job)
            self.state.enqueue(job.entry)
            self._note_queue(+1)

    def _start(self, job: QueryJob) -> None:
        self.state.admit(job.entry)
        job.start_ms = self.loop.now
        job.epoch = self.memberships.n_epochs - 1
        job.membership_size = int(self.algorithm.members.size)
        tracer = self.tracer
        if tracer is not None:
            tracer.emit("queue_wait", job.index, job.arrival_ms, job.start_ms)
            tracer.emit(
                "dispatch",
                job.index,
                job.start_ms,
                job.start_ms,
                entry=job.entry,
                target=job.target,
                membership_size=job.membership_size,
                epoch=job.epoch,
            )
        seed = (
            self.algo_rng
            if self._script is None
            else int(self._script.plan_seeds[job.index])
        )
        job.plan = self.algorithm.query_plan(job.target, seed=seed)
        self._advance(job)

    # -- plan driving ------------------------------------------------------

    #: Whole-plan retry ceiling: with per-probe loss < 1 and outages that
    #: end by schedule, attempts succeed almost surely long before this;
    #: hitting it means the fault configuration cannot converge.
    MAX_QUERY_RETRIES = 64

    def job_fault_rng(self, job: QueryJob) -> np.random.Generator:
        """The job's private fault stream, keyed ``(*fault_key, index)``.

        Independent per job and consumed strictly in the job's own round
        order — so fault outcomes are invariant to how jobs interleave,
        which stepper runs the rounds, and which shard serves the job.
        """
        if job._fault_rng is None:
            job._fault_rng = np.random.default_rng((*self.fault_key, job.index))
        return job._fault_rng

    def _advance(self, job: QueryJob) -> None:
        """Resume the plan; schedule the next round or finish the job."""
        tracer = self.tracer
        if tracer is not None:
            # The job's previous phase (round or retry gap) ends exactly
            # when this driver event fires — a loop timestamp, so the
            # per-query spans tile [arrival, finish] by construction.
            tracer.close(job.index, self.loop.now)
        mask = job._pending_mask
        job._pending_mask = None
        try:
            batch = job.plan.send(mask)
        except StopIteration as stop:
            result = stop.value
            if not result.answered:
                self._schedule_retry(job, result)
                return
            self._finish(job, result)
            return
        job.rounds += 1
        if not batch:
            if tracer is not None:
                tracer.open(
                    job.index,
                    "probe_round",
                    self.loop.now,
                    probes=0,
                    round=job.rounds,
                    attempt=job.retries,
                )
            # A round with nothing to measure resumes on the next loop turn.
            self.network.deliver_later(
                Message(
                    src=self._coordinator_id,
                    dst=self._coordinator_id,
                    kind="round-empty",
                    payload=job,
                ),
                0.0,
            )
            return
        self._stepper.dispatch_round(job, batch)

    def _on_probe_reply(self, job: QueryJob) -> None:
        self._stepper.on_probe_reply(job)

    # -- whole-plan retry (fault path) ---------------------------------------

    def _schedule_retry(self, job: QueryJob, result: SearchResult) -> None:
        """A plan attempt heard nothing back: bill it, back off, retry.

        The failed attempt's probes were really sent (and really timed
        out), so its probe/aux/maintenance bills are carried onto the
        final result; the retry itself waits ``query_retry_ms`` scaled by
        the fault model's backoff — long enough for a scheduled outage to
        end before the ceiling trips.
        """
        job._carry_probes += result.probes
        job._carry_aux += result.aux_probes
        job._carry_maintenance += result.maintenance_probes
        job.retries += 1
        self.query_retries += 1
        if job.retries > self.MAX_QUERY_RETRIES:
            raise SimulationError(
                f"query {job.index} retried {self.MAX_QUERY_RETRIES} times "
                "without an answer; the fault configuration cannot converge"
            )
        fault_model = self.fault_model
        delay = 0.0
        if not self.spec.zero_delay and fault_model is not None:
            delay = float(
                fault_model.query_retry_ms
                * fault_model.query_retry_backoff ** (job.retries - 1)
            )
        if self.tracer is not None:
            self.tracer.open(
                job.index, "plan_retry", self.loop.now, attempt=job.retries
            )
        self.loop.schedule(delay, self._retry, job)

    def _retry(self, job: QueryJob) -> None:
        """Restart the job with a fresh plan (new randomness per attempt)."""
        seed = (
            self.algo_rng
            if self._script is None
            else np.random.default_rng(
                [int(self._script.plan_seeds[job.index]), job.retries]
            )
        )
        job.plan = self.algorithm.query_plan(job.target, seed=seed)
        job._pending_mask = None
        self._advance(job)

    def _finish(self, job: QueryJob, result: SearchResult) -> None:
        if job._carry_probes or job._carry_aux or job._carry_maintenance:
            result = SearchResult(
                target=result.target,
                found=result.found,
                found_latency_ms=result.found_latency_ms,
                probes=result.probes + job._carry_probes,
                aux_probes=result.aux_probes + job._carry_aux,
                maintenance_probes=(
                    result.maintenance_probes + job._carry_maintenance
                ),
                hops=result.hops,
                path=result.path,
            )
        job.finish_ms = self.loop.now
        job.result = result
        if self.tracer is not None:
            self.tracer.root(
                job.index,
                job.arrival_ms,
                job.finish_ms,
                entry=job.entry,
                target=job.target,
                rounds=job.rounds,
                retries=job.retries,
                probes=int(result.probes),
                found=int(result.found),
            )
        self._answered += 1
        # Release the entry slot; admit the node's next queued query.
        self.state.release(job.entry)
        fifo = self._fifo.get(job.entry)
        if fifo:
            self.state.dequeue(job.entry)
            self._note_queue(-1)
            self._start(fifo.popleft())
        if self._answered == self._n_queries:
            self._shutdown()

    def _shutdown(self) -> None:
        """Cancel the periodic timers so the loop can drain."""
        self._done = True
        if self._membership_timer is not None:
            self._membership_timer.cancel()
        if self._flush_timer is not None:
            self._flush_timer.cancel()
        if self._repair is not None:
            self._repair.stop()

    # -- background processes ----------------------------------------------

    def _observe_flush(self, event_ids, probes, kind) -> None:
        """Deferred-maintenance hook (installed only when tracing).

        The algorithm calls this from inside ``flush_maintenance`` /
        ``touch_region`` after the ledger is charged, so the span carries
        exactly the event ids the flush retired (or, for a partial
        refresh, touched) and the probes it spent.
        """
        now = self.loop.now
        self.tracer.maintenance(
            now,
            now,
            event_ids=[int(i) for i in event_ids],
            probes=int(probes),
            kind=str(kind),
        )

    def _trace_eager_maintenance(
        self, ids_before: int, arriving: list[int], departing: list[int]
    ) -> None:
        """Emit spans for maintenance billed eagerly by one membership event.

        Deferred disciplines bill at flush time instead; their spans come
        through :meth:`_observe_flush`, so nothing is emitted here and
        nothing is double-counted.
        """
        ledger = self.algorithm.maintenance_ledger
        n_after = ledger.n_events
        if (
            n_after <= ids_before
            or self.algorithm.maintenance_discipline != "eager"
        ):
            return
        now = self.loop.now
        self.tracer.maintenance(
            now,
            now,
            event_ids=list(range(ids_before, n_after)),
            probes=ledger.billed_between(ids_before, n_after),
            kind="eager",
            arriving=len(arriving),
            departing=len(departing),
        )

    def _apply_membership(self, arriving: list[int], departing: list[int]) -> None:
        """Log one applied membership event and mirror it into the SoA."""
        self.state.apply_leave(departing)
        self.state.apply_join(arriving)
        if departing or arriving:
            self.memberships.append_event(arriving, departing)
            self.n_events += (1 if departing else 0) + (1 if arriving else 0)
            self.state.epoch = self.memberships.n_epochs - 1

    def _membership_tick(self) -> None:
        if self._done:
            return
        spec = self.spec
        wrng = self.workload_rng
        algorithm = self.algorithm
        tracer = self.tracer
        ids_before = (
            algorithm.maintenance_ledger.n_events if tracer is not None else 0
        )
        current = algorithm.members
        departing: list[int] = []
        n_departures = int(wrng.poisson(spec.departure_rate))
        n_departures = min(n_departures, max(0, current.size - spec.min_members))
        if n_departures > 0:
            departing = [
                int(x)
                for x in wrng.choice(current, size=n_departures, replace=False)
            ]
            algorithm.leave(np.asarray(departing, dtype=int), seed=self.algo_rng)
            self.standby.extend(departing)
        n_arrivals = min(int(wrng.poisson(spec.arrival_rate)), len(self.standby))
        arriving: list[int] = []
        if n_arrivals > 0:
            picks = wrng.choice(len(self.standby), size=n_arrivals, replace=False)
            arriving = [self.standby[int(i)] for i in picks]
            for index in sorted((int(i) for i in picks), reverse=True):
                del self.standby[index]
            algorithm.join(np.asarray(arriving, dtype=int), seed=self.algo_rng)
        self._apply_membership(arriving, departing)
        if tracer is not None:
            self._trace_eager_maintenance(ids_before, arriving, departing)
        self._membership_timer = self.loop.schedule(
            float(wrng.exponential(spec.mean_event_interval_ms)),
            self._membership_tick,
        )

    def _script_event(self) -> None:
        if self._done:
            return
        script = self._script
        _time_ms, arriving, departing = script.events[self._event_cursor]
        self._event_cursor += 1
        algorithm = self.algorithm
        tracer = self.tracer
        ids_before = (
            algorithm.maintenance_ledger.n_events if tracer is not None else 0
        )
        if departing:
            algorithm.leave(np.asarray(departing, dtype=int), seed=self.algo_rng)
        if arriving:
            algorithm.join(np.asarray(arriving, dtype=int), seed=self.algo_rng)
        self._apply_membership(list(arriving), list(departing))
        if tracer is not None:
            self._trace_eager_maintenance(
                ids_before, list(arriving), list(departing)
            )
        if self._event_cursor < len(script.events):
            next_at = float(script.events[self._event_cursor][0])
            self._membership_timer = self.loop.schedule_at(
                next_at, self._script_event
            )
        else:
            self._membership_timer = None

    def _flush_tick(self) -> None:
        if self._done:
            return
        if self.algorithm.has_pending_maintenance:
            self.algorithm.flush_maintenance(seed=self.algo_rng)
            self.forced_flushes += 1
        self._flush_timer = self.loop.schedule(
            self.spec.flush_period_ms, self._flush_tick
        )
