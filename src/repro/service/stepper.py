"""Plan-stepping strategies for the query daemon.

The daemon resumes a query plan when its current probe round completes.
Two interchangeable steppers decide how that completion is simulated:

* :class:`ScalarStepper` — the historical path: one loop event per probe,
  delivered through :meth:`~repro.netsim.network.Network.deliver_many`,
  the plan resuming on the round's last reply.  O(probes) events.
* :class:`PlanBatchStepper` — the vectorised path: a round's delays are
  one numpy array (the :class:`~repro.algorithms.base.ProbeRound` the
  plan yielded already carries them struct-of-arrays), the plan resumes
  on a *single* round-completion event at the slowest probe's arrival,
  and the in-flight integral is accrued analytically.  O(rounds) events.

The two are timeline-identical by construction: the scalar round's reply
events occupy a contiguous sequence-number block on the loop (scheduled
back-to-back by ``deliver_many``), every other event sorts strictly
before or after that whole block, and the plan advances during the last
reply at ``t + max(delays)`` — exactly when the batch stepper's one event
fires.  The equivalence tests compare full run records for all seven
schemes.  Because the timelines match event for event, membership events
fire in the same order under either stepper, so the per-event
maintenance ledger (``DaemonRun.maintenance_by_event``) is
stepper-invariant by construction — unlike the per-job
``maintenance_probes`` claims, which depend on which in-flight plan
finishes first and are exact only in aggregate.

In-flight probe accounting differs only in mechanics.  The scalar path
integrates the count at every ±1 transition; the batch path adds each
round's ``sum(delays)`` to the area (each probe is in flight for exactly
its delay) and reconstructs the peak from the recorded (time, ±k)
breakpoints in one vectorised sort/cumsum at the end.  Same integral —
summed in a different float order, so averages agree to rounding rather
than bit-for-bit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.algorithms.base import ProbeRound
from repro.netsim.network import Message
from repro.util.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.daemon import QueryDaemon, QueryJob


def round_delays(daemon: "QueryDaemon", job: "QueryJob", batch) -> np.ndarray:
    """Per-probe completion delays for one round, as one float array.

    ``zero_delay`` collapses everything; otherwise each probe completes
    after the RTT it measured, plus — when the spec charges the
    coordination hop — the entry->prober dispatch RTT drawn through the
    network's vectorised path draw.
    """
    spec = daemon.spec
    if spec.zero_delay:
        return np.zeros(len(batch))
    if isinstance(batch, ProbeRound):
        rtts, srcs = batch.rtts_ms, batch.srcs
    else:  # legacy list[ProbeOp] rounds from third-party schemes
        rtts = np.array([op.rtt_ms for op in batch], dtype=float)
        srcs = np.array([op.src for op in batch], dtype=int)
    if spec.charge_dispatch:
        rtts = rtts + daemon.network.path_rtts(job.entry, srcs)
    return rtts


def round_outcome(daemon: "QueryDaemon", job: "QueryJob", batch) -> np.ndarray:
    """Per-probe completion delays for one round, faults applied.

    The fault-aware front of :func:`round_delays`: with no fault model (or
    an inert one) it *is* ``round_delays`` — not an extra draw, not a
    changed event — which is what keeps zero-fault daemon timelines
    bit-identical to the fault-free code.  With faults active, the round
    is run through :meth:`~repro.netsim.network.Network.apply_faults` on
    the job's private fault stream: each probe's completion becomes its
    answer arrival (after losses, retransmit waits and relay detours) or
    its timeout exhaustion, the per-probe answered mask is stashed on the
    job for the next plan resume, and the drop/retransmit/timeout/relay
    counters are billed to both the job and the network.

    Both steppers call this at dispatch, so the delays array — and with
    it the round-completion instant — is identical under either stepper;
    and because the job's fault stream is consumed strictly in the job's
    own round order, the outcome is invariant to cross-job interleaving
    and shard layout too.
    """
    delays = round_delays(daemon, job, batch)
    fault_model = daemon.fault_model
    stats = None
    if fault_model is not None and fault_model.active:
        if isinstance(batch, ProbeRound):
            srcs, dsts = batch.srcs, batch.dsts
        else:  # legacy list[ProbeOp] rounds from third-party schemes
            srcs = np.array([op.src for op in batch], dtype=int)
            dsts = np.array([op.dst for op in batch], dtype=int)
        delays, answered, stats = daemon.network.apply_faults(
            daemon.job_fault_rng(job), srcs, dsts, delays
        )
        job.probe_drops += int(stats["dropped"])
        job.probe_retransmits += int(stats["retransmitted"])
        job.probe_timeouts += int(stats["timed_out"])
        job.relayed_probes += int(stats["relayed"])
        job._pending_mask = answered
        if daemon.spec.zero_delay:
            delays = np.zeros_like(delays)
    tracer = daemon.tracer
    if tracer is not None:
        now = daemon.loop.now
        attrs = {
            "probes": len(batch),
            "round": job.rounds,
            "attempt": job.retries,
        }
        if stats is not None:
            metrics = tracer.metrics
            for key, counter_name in (
                ("dropped", "probes_dropped"),
                ("retransmitted", "probes_retransmitted"),
                ("timed_out", "probes_timed_out"),
                ("relayed", "probes_relayed"),
            ):
                count = int(stats[key])
                if count:
                    attrs[key] = count
                    metrics.counter(counter_name).inc(now, count)
        # Open-ended: the span closes when the plan actually resumes, so
        # retransmit ladders and relay detours are inside the interval.
        tracer.open(job.index, "probe_round", now, **attrs)
    return delays


class ScalarStepper:
    """One loop event per probe — the PR 5 reference semantics."""

    def __init__(self, daemon: "QueryDaemon") -> None:
        self.daemon = daemon
        self.area = 0.0
        self.peak = 0
        self._count = 0
        self._last = 0.0
        # (time, ±1) breakpoints for exact cross-shard peak merging.
        self.bp_times: list[np.ndarray] = []
        self.bp_deltas: list[np.ndarray] = []

    def _note(self, delta: int) -> None:
        now = self.daemon.loop.now
        self.area += self._count * (now - self._last)
        self._last = now
        self._count += delta
        if self._count > self.peak:
            self.peak = self._count
        if delta:
            self.bp_times.append(np.array([now]))
            self.bp_deltas.append(np.array([delta]))

    def dispatch_round(self, job: "QueryJob", batch) -> None:
        daemon = self.daemon
        delays = round_outcome(daemon, job, batch)
        job._outstanding = len(batch)
        self._note(+len(batch))
        messages = [
            Message(
                src=op.src,
                dst=daemon._coordinator_id,
                kind="probe-reply",
                payload=job,
            )
            for op in batch
        ]
        daemon.network.deliver_many(messages, delays)

    def on_probe_reply(self, job: "QueryJob") -> None:
        self._note(-1)
        job._outstanding -= 1
        if job._outstanding == 0:
            self.daemon._advance(job)

    def finalize(self) -> None:
        """Close the time-weighted integral at the loop's final time."""
        self._note(0)


class PlanBatchStepper:
    """One loop event per probe *round* — the vectorised path.

    A round of k probes costs one numpy max/sum over its delay array and
    one scheduled event, instead of k message objects, k heap pushes and
    k callback dispatches.  With fan-outs of 32–1000 probes this is what
    makes the event loop's per-step cost independent of both fan-out and
    population.
    """

    def __init__(self, daemon: "QueryDaemon") -> None:
        self.daemon = daemon
        self.area = 0.0
        self.peak = 0
        # (time, delta) breakpoints: +k at each round's issue instant,
        # -1 at each probe's arrival.  Peak in-flight is reconstructed in
        # one vectorised pass at finalize; insertion order doubles as the
        # scalar path's tie-breaking sequence order (rounds append their
        # issue before their arrivals, in issue order).
        self.bp_times: list[np.ndarray] = []
        self.bp_deltas: list[np.ndarray] = []

    def dispatch_round(self, job: "QueryJob", batch) -> None:
        daemon = self.daemon
        delays = round_outcome(daemon, job, batch)
        now = daemon.loop.now
        k = delays.size
        # Each probe is in flight for exactly its delay.
        self.area += float(delays.sum())
        self.bp_times.append(np.array([now]))
        self.bp_deltas.append(np.array([k]))
        self.bp_times.append(now + delays)
        self.bp_deltas.append(np.full(k, -1))
        # The round completes with its slowest probe.
        daemon.loop.schedule(float(delays.max()), daemon._advance, job)

    def on_probe_reply(self, job: "QueryJob") -> None:
        raise SimulationError(
            "the batch stepper delivers no per-probe replies"
        )

    def finalize(self) -> None:
        self.peak = peak_from_breakpoints(self.bp_times, self.bp_deltas)


def peak_from_breakpoints(
    times: list[np.ndarray], deltas: list[np.ndarray]
) -> int:
    """Max running sum of ±k deltas ordered by time (stable on ties)."""
    if not times:
        return 0
    order = np.argsort(np.concatenate(times), kind="stable")
    running = np.cumsum(np.concatenate(deltas)[order])
    return int(running.max()) if running.size else 0
