"""Struct-of-arrays storage for the daemon's hot per-member state.

The scalar daemon kept per-node admission state in dicts keyed by node id
— fine at n=2,000, ruinous at n=1,000,000 where every query pays hashing
and boxing on the hot path.  :class:`MemberStateArrays` flattens that
state into parallel numpy arrays over the oracle's id space: liveness,
the membership epoch, and per-node in-service / queued counters, each
updated in O(1) per admission event and O(changes) per membership event.

The arrays are bookkeeping only — admission *decisions* read them, but
the values mirror what the historical dict bookkeeping would hold at
every instant (the SoA regression test reconstructs the dict from job
timelines and compares).
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ConfigurationError


class MemberStateArrays:
    """Flat per-node daemon state over the oracle id space ``0..n_nodes-1``.

    ``alive`` mirrors the algorithm's member set (maintained by the daemon
    on build and on every membership tick); ``active`` / ``queued`` count
    each entry node's in-service and FIFO-queued queries; the ``*_peak``
    arrays record each node's high-water marks.  ``epoch`` mirrors the
    latest membership-log epoch.
    """

    __slots__ = (
        "n_nodes",
        "alive",
        "n_live",
        "epoch",
        "active",
        "active_peak",
        "queued",
        "queued_peak",
    )

    def __init__(self, n_nodes: int, members: np.ndarray) -> None:
        members = np.asarray(members, dtype=int)
        if members.size and (members.min() < 0 or members.max() >= n_nodes):
            raise ConfigurationError(
                f"member ids outside oracle range [0, {n_nodes})"
            )
        self.n_nodes = int(n_nodes)
        self.alive = np.zeros(self.n_nodes, dtype=bool)
        self.alive[members] = True
        self.n_live = int(members.size)
        self.epoch = 0
        self.active = np.zeros(self.n_nodes, dtype=np.int32)
        self.active_peak = np.zeros(self.n_nodes, dtype=np.int32)
        self.queued = np.zeros(self.n_nodes, dtype=np.int32)
        self.queued_peak = np.zeros(self.n_nodes, dtype=np.int32)

    # -- membership ---------------------------------------------------------

    def apply_join(self, node_ids: np.ndarray | list[int]) -> None:
        """Mark arrivals live (O(changes))."""
        ids = np.asarray(node_ids, dtype=int)
        if ids.size:
            self.alive[ids] = True
            self.n_live += int(ids.size)

    def apply_leave(self, node_ids: np.ndarray | list[int]) -> None:
        """Mark departures dead (O(changes))."""
        ids = np.asarray(node_ids, dtype=int)
        if ids.size:
            self.alive[ids] = False
            self.n_live -= int(ids.size)

    # -- admission ----------------------------------------------------------

    def admit(self, entry: int) -> None:
        """One query entered service at ``entry``."""
        count = self.active[entry] + 1
        self.active[entry] = count
        if count > self.active_peak[entry]:
            self.active_peak[entry] = count

    def release(self, entry: int) -> None:
        """One query at ``entry`` finished."""
        self.active[entry] -= 1

    def enqueue(self, entry: int) -> None:
        """One query joined ``entry``'s FIFO queue."""
        count = self.queued[entry] + 1
        self.queued[entry] = count
        if count > self.queued_peak[entry]:
            self.queued_peak[entry] = count

    def dequeue(self, entry: int) -> None:
        """One query left ``entry``'s FIFO queue for service."""
        self.queued[entry] -= 1
