"""Beacon-based nearest-peer search (Kommareddy et al., ICNP 2001).

A fixed set of beacon servers tracks its latency to every member offline.
A query measures the target against every beacon; each beacon returns the
members whose recorded latency is within a tolerance band of the target's,
and the candidates are ranked by the Hotz metric (the triangulation lower
bound ``max_b |d(b, t) - d(b, m)|``) before a bounded probing pass.

Under the clustering condition "most peers in the same cluster but
different end-networks [have] almost identical latencies to all the beacon
servers ... all such peers are impossible to tell apart" — the candidate
sets blow up to the whole cluster and the probe budget decides.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import NearestPeerAlgorithm, SearchResult
from repro.util.validate import require_positive


class BeaconSearch(NearestPeerAlgorithm):
    """Triangulation from a fixed beacon set.

    Maintenance policy: ``incremental``.  A join measures each beacon
    against every arrival (``n_beacons × |J|`` maintenance probes) and
    appends columns to the beacon-distance table; a leave drops the
    departed columns for free, and when a *beacon* departs a replacement
    is recruited and measures the whole membership (``|M|`` probes per
    recruit).
    """

    name = "beaconing"
    maintenance_policy = "incremental"
    plan_native = True

    def __init__(
        self,
        n_beacons: int = 10,
        band_fraction: float = 0.15,
        probe_budget: int = 16,
        maintenance=None,
    ) -> None:
        super().__init__(maintenance=maintenance)
        require_positive(n_beacons, "n_beacons")
        self._n_beacons = n_beacons
        self._band_fraction = band_fraction
        self._probe_budget = probe_budget
        self._beacons: np.ndarray | None = None
        self._beacon_to_member: np.ndarray | None = None  # (B, N)

    def _build(self, rng: np.random.Generator) -> None:
        members = self.members
        count = min(self._n_beacons, members.size)
        self._beacons = rng.choice(members, size=count, replace=False)
        self._beacon_to_member = np.stack(
            [self.offline_distances_from(int(b)) for b in self._beacons]
        )

    def _recruit_beacons(self, rng: np.random.Generator) -> None:
        """Top the beacon set back up to ``n_beacons`` (counted probes)."""
        assert self._beacons is not None and self._beacon_to_member is not None
        want = min(self._n_beacons, self.members.size)
        while self._beacons.size < want:
            pool = self.members[~np.isin(self.members, self._beacons)]
            if pool.size == 0:
                break
            recruit = int(rng.choice(pool))
            row = self.maintenance_probe_many(recruit, self.members)
            self._beacons = np.append(self._beacons, recruit)
            self._beacon_to_member = np.vstack([self._beacon_to_member, row])

    def _join(self, joined: np.ndarray, rng: np.random.Generator) -> None:
        assert self._beacons is not None and self._beacon_to_member is not None
        # New columns first (beacon -> arrival RTTs), then top up beacons if
        # the initial build was starved for members.
        block = self.maintenance_probe_block(self._beacons, joined)
        self._beacon_to_member = np.hstack([self._beacon_to_member, block])
        self._recruit_beacons(rng)

    def _leave(
        self, left: np.ndarray, kept_mask: np.ndarray, rng: np.random.Generator
    ) -> None:
        assert self._beacons is not None and self._beacon_to_member is not None
        beacon_kept = ~np.isin(self._beacons, left)
        self._beacons = self._beacons[beacon_kept]
        self._beacon_to_member = self._beacon_to_member[beacon_kept][:, kept_mask]
        self._recruit_beacons(rng)

    def _plan(self, target: int, rng: np.random.Generator):
        assert self._beacons is not None and self._beacon_to_member is not None
        members = self.members
        # Snapshot the beacon state alongside the member view: churn
        # applied between this plan's rounds *rebinds* the beacon set and
        # the distance table (its columns track the live membership), so
        # the Hotz ranking below must use the capture-time table — the one
        # whose columns align with ``members``.  Maintenance never mutates
        # the captured arrays in place.
        beacons = self._beacons
        table = self._beacon_to_member
        # Round 1: the target measures itself against every beacon.
        target_to_beacons = self.probe_many(beacons, target)
        _, heard, rows_alive = yield from self._offer_round(
            beacons, target, target_to_beacons
        )
        if rows_alive.size:
            # Triangulate from the beacons that actually answered: the
            # Hotz bound and the bands use only the surviving table rows,
            # so a lossy beacon round degrades the ranking instead of
            # poisoning it with unmeasured gaps.  With every probe
            # answered (any fault-free driver) this is the full table.
            gaps = np.abs(table[rows_alive] - heard[:, None])
            hotz = gaps.max(axis=0)
            bands = gaps <= self._band_fraction * np.maximum(
                heard[:, None], 1e-3
            )
            in_any_band = bands.any(axis=0)
            candidate_rows = np.flatnonzero(in_any_band)
            if candidate_rows.size == 0:
                candidate_rows = np.arange(members.size)
            ranked = candidate_rows[np.argsort(hotz[candidate_rows])]
        else:
            # Every beacon probe was lost: no triangulation signal at all.
            # Fall back to an unranked shortlist drawn from the snapshot.
            ranked = rng.permutation(members.size)
        shortlist = [
            m
            for m in (int(members[row]) for row in ranked[: self._probe_budget])
            if m != target
        ]
        measured: dict[int, float] = {}
        if shortlist:
            # Round 2: the shortlisted candidates probe the target.
            values = self.probe_many(shortlist, target)
            kept, values, _ = yield from self._offer_round(
                shortlist, target, values
            )
            measured = dict(zip(kept, values.tolist()))
        if not measured:  # degenerate: every candidate was the target
            fallback = int(rng.choice(members[members != target]))
            value = self.probe(fallback, target)
            kept, values, _ = yield from self._offer_round(
                [fallback], target, [value]
            )
            measured = dict(zip(kept, values.tolist()))
        if not measured:  # shortlist and fallback both fully lost
            return self.no_answer(target)
        return self.result(target, measured, hops=1)

    def _query(self, target: int, rng: np.random.Generator) -> SearchResult:
        return self._query_via_plan(target, rng)
