"""Coordinate-driven nearest-peer search: PIC and a Vivaldi variant.

PIC (Costa et al., ICDCS 2004): every peer carries a Euclidean coordinate;
a joining node computes its own coordinate from probes to a few members,
then launches multiple greedy walks — each hop moves to the neighbour whose
*coordinates* are closest to the target's coordinates — and finally probes
the walks' end candidates to pick the answer.

``PicSearch`` embeds with GNP-style landmarks (PIC's fixed-landmark
variant); ``VivaldiGreedySearch`` reuses the same machinery over Vivaldi
coordinates.  Under the clustering condition the embedding collapses every
cluster to "almost the same coordinates", so the greedy walks cannot find
the right end-network — the failure mode of Section 2.3.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import NearestPeerAlgorithm, SearchResult
from repro.coords.gnp import GnpConfig, GnpEmbedding, _solve_point
from repro.coords.vivaldi import VivaldiConfig, VivaldiSystem
from repro.util.validate import require_positive


class _CoordinateGreedyBase(NearestPeerAlgorithm):
    """Shared machinery: neighbour graph + greedy walks + final probing.

    Maintenance policy: ``incremental``.  A join places each arrival in
    coordinate space from a handful of counted maintenance probes
    (landmarks for PIC, random anchors for Vivaldi) and splices it into
    the neighbour graph both ways; a leave purges the departed node from
    coordinates and neighbour lists for free.  PIC escalates to a counted
    full re-embedding only when departures eat into the landmark set
    faster than trimming can absorb (fewer than ``dimensions + 1``
    landmarks left).
    """

    maintenance_policy = "incremental"
    plan_native = True

    def __init__(
        self,
        neighbors_per_node: int = 16,
        n_walks: int = 4,
        placement_probes: int = 12,
        final_probe_count: int = 8,
        max_steps: int = 64,
        maintenance=None,
    ) -> None:
        super().__init__(maintenance=maintenance)
        require_positive(neighbors_per_node, "neighbors_per_node")
        require_positive(n_walks, "n_walks")
        self._neighbors_per_node = neighbors_per_node
        self._n_walks = n_walks
        self._placement_probes = placement_probes
        self._final_probe_count = final_probe_count
        self._max_steps = max_steps
        self._neighbors: dict[int, np.ndarray] = {}
        self._positions: dict[int, np.ndarray] = {}

    # -- subclass hooks -------------------------------------------------------

    def _embed_members(self, rng: np.random.Generator) -> dict[int, np.ndarray]:
        raise NotImplementedError

    def _target_anchor_probes(
        self, target: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Placement fan-out: (anchor ids, measured anchor->target RTTs).

        The probe half of target placement — issued as the plan's first
        round, so a latency-faithful driver times it like any other
        fan-out.
        """
        raise NotImplementedError

    def _target_position(
        self,
        anchors: np.ndarray,
        rtts: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Solve the target's coordinate from the placement measurements."""
        raise NotImplementedError

    def _place_member(self, node: int, rng: np.random.Generator) -> np.ndarray:
        """Coordinate for a joining *member* (counted maintenance probes)."""
        raise NotImplementedError

    # -- shared build/query -----------------------------------------------------

    def _build(self, rng: np.random.Generator) -> None:
        self._positions = self._embed_members(rng)
        self._neighbors = {}
        members = self.members
        for node in members:
            node = int(node)
            others = members[members != node]
            count = min(self._neighbors_per_node, others.size)
            self._neighbors[node] = rng.choice(others, size=count, replace=False)

    # -- incremental maintenance ---------------------------------------------

    def _join(self, joined: np.ndarray, rng: np.random.Generator) -> None:
        members = self.members
        # Nodes whose index entries already exist (pre-event members, then
        # each arrival as it is placed) — splice hosts must come from here.
        placed = members[~np.isin(members, joined)]
        for node in joined:
            node = int(node)
            self._positions[node] = self._place_member(node, rng)
            others = members[members != node]
            count = min(self._neighbors_per_node, others.size)
            self._neighbors[node] = rng.choice(others, size=count, replace=False)
            # Splice the arrival into existing out-lists so greedy walks
            # can reach it (build-time graphs have the same in-degree on
            # average: every node appears in ~neighbors_per_node lists).
            hosts = rng.choice(
                placed, size=min(count, placed.size), replace=False
            )
            for host in hosts:
                self._neighbors[int(host)] = np.append(
                    self._neighbors[int(host)], node
                )
            placed = np.append(placed, node)

    def _leave(
        self, left: np.ndarray, kept_mask: np.ndarray, rng: np.random.Generator
    ) -> None:
        for node in left:
            node = int(node)
            self._positions.pop(node, None)
            self._neighbors.pop(node, None)
        members = self.members
        for node, neighbours in self._neighbors.items():
            pruned = neighbours[~np.isin(neighbours, left)]
            if pruned.size == 0:  # re-draw: a walk node must have somewhere to go
                others = members[members != node]
                count = min(self._neighbors_per_node, others.size)
                pruned = rng.choice(others, size=count, replace=False)
            self._neighbors[node] = pruned

    def _coordinate_distance(self, node: int, point: np.ndarray) -> float:
        position = self._positions.get(int(node))
        if position is None:
            # The node departed while this plan's probe round was in
            # flight (plans see a membership snapshot, the coordinate
            # index is live): infinitely far, so walks steer away.
            return float("inf")
        return float(np.linalg.norm(position - point))

    def _plan(self, target: int, rng: np.random.Generator):
        # Round 1: placement — the target measures a few anchors so its
        # coordinate can be solved.
        anchors, anchor_rtts = self._target_anchor_probes(target, rng)
        survivors, heard = anchors, anchor_rtts
        if anchors.size:
            _, _, alive = yield from self._offer_round(
                anchors, target, anchor_rtts
            )
            survivors, heard = anchors[alive], anchor_rtts[alive]
        if anchors.size and survivors.size == 0:
            # Every placement probe was lost: solve from nothing is worse
            # than any stored coordinate, so aim the walks at an arbitrary
            # member's position and let the final probe round sort it out.
            target_position = next(iter(self._positions.values())).copy()
        else:
            target_position = self._target_position(survivors, heard, rng)
        visited: set[int] = set()
        end_candidates: dict[int, float] = {}  # node -> coord distance
        hops = 0
        for _ in range(self._n_walks):
            current = int(rng.choice(self.members))
            current_cd = self._coordinate_distance(current, target_position)
            for _ in range(self._max_steps):
                visited.add(current)
                neighbours = self._neighbors.get(current)
                if neighbours is None or len(neighbours) == 0:
                    break  # walk node departed mid-flight; end the walk here
                neighbour_cds = {
                    int(nb): self._coordinate_distance(int(nb), target_position)
                    for nb in neighbours
                }
                best = min(neighbour_cds, key=neighbour_cds.get)
                if neighbour_cds[best] >= current_cd:
                    break
                current, current_cd = best, neighbour_cds[best]
                hops += 1
            end_candidates[current] = current_cd
        # Round 2: probe the best few candidates by coordinate distance
        # (the walks themselves are coordinate-only — no measurements).
        ranked = sorted(end_candidates, key=end_candidates.get)
        finalists = [
            node for node in ranked[: self._final_probe_count] if node != target
        ]
        measured: dict[int, float] = {}
        if finalists:
            values = self.probe_many(finalists, target)
            kept, values, _ = yield from self._offer_round(
                finalists, target, values
            )
            measured = dict(zip(kept, values.tolist()))
        if not measured and finalists:  # every finalist probe was lost
            return self.no_answer(target)
        return self.result(target, measured, hops=hops, path=ranked)

    def _query(self, target: int, rng: np.random.Generator) -> SearchResult:
        return self._query_via_plan(target, rng)


class PicSearch(_CoordinateGreedyBase):
    """PIC: landmark (GNP-style) embedding + greedy walks.

    Maintenance: joins probe the landmarks (``n_landmarks`` maintenance
    probes each) and solve the arrival's coordinate against the fixed
    landmark positions; leaves are free unless they deplete the landmark
    set below ``dimensions + 1``, which triggers one counted re-embedding.
    """

    name = "pic"

    def __init__(self, gnp_config: GnpConfig | None = None, **kwargs) -> None:
        super().__init__(**kwargs)
        self._gnp_config = gnp_config or GnpConfig()
        self._embedding: GnpEmbedding | None = None

    def _embed_members(self, rng: np.random.Generator) -> dict[int, np.ndarray]:
        self._embedding = GnpEmbedding.build(
            self.oracle, self.members, config=self._gnp_config, seed=rng
        )
        return {int(m): self._embedding.position(int(m)) for m in self.members}

    def _target_anchor_probes(
        self, target: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        assert self._embedding is not None
        anchors = np.asarray(self._embedding.landmark_ids, dtype=int)
        return anchors, self.probe_many(anchors, target)

    def _target_position(
        self,
        anchors: np.ndarray,
        rtts: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        embedding = self._embedding
        assert embedding is not None
        current = np.asarray(embedding.landmark_ids, dtype=int)
        if anchors.size == current.size and np.array_equal(anchors, current):
            return embedding.place_external(rtts)
        # The landmark set changed while the anchor round was in flight
        # (a departure trimmed or rebuilt it): solve against whichever
        # probed anchors are still landmarks, at their current positions.
        index = {int(l): i for i, l in enumerate(current)}
        keep = np.array([int(a) in index for a in anchors], dtype=bool)
        if not keep.any():
            return embedding.landmark_positions.mean(axis=0)
        rows = [index[int(a)] for a in anchors[keep]]
        positions = embedding.landmark_positions[rows]
        if len(rows) < positions.shape[1]:
            # Too few surviving anchors to pin a coordinate (loss or churn
            # thinned the round below the embedding dimension): place the
            # target at its closest-measured anchor and let the walks and
            # the final probe round correct from there.
            return positions[int(np.argmin(rtts[keep]))].copy()
        return _solve_point(positions, rtts[keep], positions.mean(axis=0))

    def _place_member(self, node: int, rng: np.random.Generator) -> np.ndarray:
        assert self._embedding is not None
        rtts = self.maintenance_probe_block(self._embedding.landmark_ids, [node])[
            :, 0
        ]
        return self._embedding.place_external(rtts)

    def _leave(
        self, left: np.ndarray, kept_mask: np.ndarray, rng: np.random.Generator
    ) -> None:
        super()._leave(left, kept_mask, rng)
        assert self._embedding is not None
        keep = ~np.isin(self._embedding.landmark_ids, left)
        if keep.all():
            return
        if int(keep.sum()) > self._gnp_config.dimensions:
            # Trim the departed landmarks; remaining positions stay valid.
            self._embedding = GnpEmbedding(
                config=self._embedding.config,
                landmark_ids=self._embedding.landmark_ids[keep],
                landmark_positions=self._embedding.landmark_positions[keep],
                positions={
                    int(m): self._positions[int(m)] for m in self.members
                },
            )
            return
        # Landmark set depleted: one counted full re-embedding.  GNP
        # measures every landmark pair plus each other member against the
        # landmarks — billed up front, since the embedding itself probes
        # through the raw oracle.  Extreme churn can shrink the membership
        # below the configured landmark count; the embedding then degrades
        # to what the survivors can support rather than crashing
        # mid-trial: fewer landmarks, and a dimensionality capped at
        # ``(L - 1) // 2`` so the joint landmark solve keeps at least as
        # many residuals (L(L-1)/2 pairs) as variables (L·d).
        if self.members.size == 2:
            # Two survivors: the exact 1-D embedding (0 and their RTT).
            a, b = (int(m) for m in self.members)
            rtt = self.maintenance_probe(a, b)
            self._gnp_config = GnpConfig(dimensions=1, n_landmarks=2)
            self._embedding = GnpEmbedding(
                config=self._gnp_config,
                landmark_ids=np.array([a, b]),
                landmark_positions=np.array([[0.0], [rtt]]),
                positions={a: np.array([0.0]), b: np.array([rtt])},
            )
            self._positions = {a: np.array([0.0]), b: np.array([rtt])}
            self.rebuild_count += 1
            return
        n_landmarks = min(self._gnp_config.n_landmarks, self.members.size)
        dimensions = min(
            self._gnp_config.dimensions, max(1, (n_landmarks - 1) // 2)
        )
        if (n_landmarks, dimensions) != (
            self._gnp_config.n_landmarks,
            self._gnp_config.dimensions,
        ):
            self._gnp_config = GnpConfig(
                dimensions=dimensions, n_landmarks=n_landmarks
            )
        self._maintenance_probe_count += n_landmarks * n_landmarks + (
            self.members.size - n_landmarks
        ) * n_landmarks
        self.rebuild_count += 1
        self._build(rng)


class VivaldiGreedySearch(_CoordinateGreedyBase):
    """Vivaldi coordinates + greedy walks.

    Maintenance: joins probe ``placement_probes`` random anchors and
    spring-relax the arrival against the anchors' fixed coordinates;
    leaves purge coordinates and shrink the anchor pool for free (the
    embedded system never needs a rebuild — coordinates are per-node).
    """

    name = "vivaldi-greedy"

    def __init__(
        self,
        vivaldi_config: VivaldiConfig | None = None,
        vivaldi_rounds: int = 24,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self._vivaldi_config = vivaldi_config or VivaldiConfig(use_height=False)
        self._vivaldi_rounds = vivaldi_rounds
        self._system: VivaldiSystem | None = None
        # Members the embedded system can place external nodes against
        # (build-time members still present; joiners are placed against
        # these but never enter the system itself).
        self._anchor_pool: np.ndarray | None = None

    def _embed_members(self, rng: np.random.Generator) -> dict[int, np.ndarray]:
        self._system = VivaldiSystem(
            self.members, config=self._vivaldi_config, seed=rng
        )
        self._system.run(self.oracle, rounds=self._vivaldi_rounds)
        self._anchor_pool = self.members.copy()
        return {
            int(m): self._system.positions[i].copy()
            for i, m in enumerate(self.members)
        }

    def _target_anchor_probes(
        self, target: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        assert self._anchor_pool is not None
        anchors = rng.choice(
            self._anchor_pool,
            size=min(self._placement_probes, self._anchor_pool.size),
            replace=False,
        )
        return anchors, self.probe_many(anchors, target)

    def _target_position(
        self,
        anchors: np.ndarray,
        rtts: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        if self._system is not None:
            # The system retains every build-time member's coordinate,
            # so even anchors that departed mid-flight still resolve.
            measured = {int(a): float(v) for a, v in zip(anchors, rtts)}
            position, _height = self._system.place_external(measured)
            return position
        # Spring relaxation needs stored coordinates; drop anchors whose
        # coordinates were purged by a mid-flight departure.
        keep = np.array(
            [int(a) in self._positions for a in anchors], dtype=bool
        )
        if not keep.any():
            return self._positions[int(self.members[0])].copy()
        if not keep.all():
            anchors, rtts = anchors[keep], rtts[keep]
        return self._spring_fit(anchors, rtts, rng)

    def _place_member(self, node: int, rng: np.random.Generator) -> np.ndarray:
        assert self._anchor_pool is not None
        anchors = rng.choice(
            self._anchor_pool,
            size=min(self._placement_probes, self._anchor_pool.size),
            replace=False,
        )
        rtts = self.maintenance_probe_block(anchors, [node])[:, 0]
        return self._spring_fit(anchors, rtts, rng)

    def _spring_fit(
        self,
        anchors: np.ndarray,
        rtts: np.ndarray,
        rng: np.random.Generator,
        iterations: int = 64,
    ) -> np.ndarray:
        """Spring-relax a position against fixed anchor coordinates."""
        anchor_positions = np.stack([self._positions[int(a)] for a in anchors])
        position = anchor_positions.mean(axis=0) + rng.normal(
            0.0, 0.01, size=anchor_positions.shape[1]
        )
        for _ in range(iterations):
            i = int(rng.integers(anchors.size))
            if rtts[i] <= 0:
                continue
            delta = position - anchor_positions[i]
            euclid = float(np.linalg.norm(delta))
            direction = (
                delta / euclid
                if euclid > 1e-9
                else rng.normal(size=position.size)
            )
            position = position + 0.25 * (rtts[i] - euclid) * direction
        return position

    def _leave(
        self, left: np.ndarray, kept_mask: np.ndarray, rng: np.random.Generator
    ) -> None:
        super()._leave(left, kept_mask, rng)
        assert self._anchor_pool is not None
        self._anchor_pool = self._anchor_pool[~np.isin(self._anchor_pool, left)]
        if self._anchor_pool.size == 0:
            # Every build-time member departed: fall back to placing
            # against any current member's stored coordinate.
            self._anchor_pool = self.members.copy()
            self._system = None
