"""Coordinate-driven nearest-peer search: PIC and a Vivaldi variant.

PIC (Costa et al., ICDCS 2004): every peer carries a Euclidean coordinate;
a joining node computes its own coordinate from probes to a few members,
then launches multiple greedy walks — each hop moves to the neighbour whose
*coordinates* are closest to the target's coordinates — and finally probes
the walks' end candidates to pick the answer.

``PicSearch`` embeds with GNP-style landmarks (PIC's fixed-landmark
variant); ``VivaldiGreedySearch`` reuses the same machinery over Vivaldi
coordinates.  Under the clustering condition the embedding collapses every
cluster to "almost the same coordinates", so the greedy walks cannot find
the right end-network — the failure mode of Section 2.3.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import NearestPeerAlgorithm, SearchResult
from repro.coords.gnp import GnpConfig, GnpEmbedding
from repro.coords.vivaldi import VivaldiConfig, VivaldiSystem
from repro.util.validate import require_positive


class _CoordinateGreedyBase(NearestPeerAlgorithm):
    """Shared machinery: neighbour graph + greedy walks + final probing."""

    def __init__(
        self,
        neighbors_per_node: int = 16,
        n_walks: int = 4,
        placement_probes: int = 12,
        final_probe_count: int = 8,
        max_steps: int = 64,
    ) -> None:
        super().__init__()
        require_positive(neighbors_per_node, "neighbors_per_node")
        require_positive(n_walks, "n_walks")
        self._neighbors_per_node = neighbors_per_node
        self._n_walks = n_walks
        self._placement_probes = placement_probes
        self._final_probe_count = final_probe_count
        self._max_steps = max_steps
        self._neighbors: dict[int, np.ndarray] = {}
        self._positions: dict[int, np.ndarray] = {}

    # -- subclass hooks -------------------------------------------------------

    def _embed_members(self, rng: np.random.Generator) -> dict[int, np.ndarray]:
        raise NotImplementedError

    def _place_target(
        self, target: int, rng: np.random.Generator
    ) -> np.ndarray:
        raise NotImplementedError

    # -- shared build/query -----------------------------------------------------

    def _build(self, rng: np.random.Generator) -> None:
        self._positions = self._embed_members(rng)
        members = self.members
        for node in members:
            node = int(node)
            others = members[members != node]
            count = min(self._neighbors_per_node, others.size)
            self._neighbors[node] = rng.choice(others, size=count, replace=False)

    def _coordinate_distance(self, node: int, point: np.ndarray) -> float:
        return float(np.linalg.norm(self._positions[int(node)] - point))

    def _query(self, target: int, rng: np.random.Generator) -> SearchResult:
        target_position = self._place_target(target, rng)
        visited: set[int] = set()
        end_candidates: dict[int, float] = {}  # node -> coord distance
        hops = 0
        for _ in range(self._n_walks):
            current = int(rng.choice(self.members))
            current_cd = self._coordinate_distance(current, target_position)
            for _ in range(self._max_steps):
                visited.add(current)
                neighbour_cds = {
                    int(nb): self._coordinate_distance(int(nb), target_position)
                    for nb in self._neighbors[current]
                }
                best = min(neighbour_cds, key=neighbour_cds.get)
                if neighbour_cds[best] >= current_cd:
                    break
                current, current_cd = best, neighbour_cds[best]
                hops += 1
            end_candidates[current] = current_cd
        # Probe the best few candidates by coordinate distance (actual
        # latency measurements happen only here and at placement), as one
        # batched measurement.
        ranked = sorted(end_candidates, key=end_candidates.get)
        finalists = [
            node for node in ranked[: self._final_probe_count] if node != target
        ]
        measured = dict(
            zip(finalists, self.probe_many(finalists, target).tolist())
        )
        return self.result(target, measured, hops=hops, path=ranked)


class PicSearch(_CoordinateGreedyBase):
    """PIC: landmark (GNP-style) embedding + greedy walks."""

    name = "pic"

    def __init__(self, gnp_config: GnpConfig | None = None, **kwargs) -> None:
        super().__init__(**kwargs)
        self._gnp_config = gnp_config or GnpConfig()
        self._embedding: GnpEmbedding | None = None

    def _embed_members(self, rng: np.random.Generator) -> dict[int, np.ndarray]:
        self._embedding = GnpEmbedding.build(
            self.oracle, self.members, config=self._gnp_config, seed=rng
        )
        return {int(m): self._embedding.position(int(m)) for m in self.members}

    def _place_target(self, target: int, rng: np.random.Generator) -> np.ndarray:
        assert self._embedding is not None
        rtts = self.probe_many(self._embedding.landmark_ids, target)
        return self._embedding.place_external(rtts)


class VivaldiGreedySearch(_CoordinateGreedyBase):
    """Vivaldi coordinates + greedy walks."""

    name = "vivaldi-greedy"

    def __init__(
        self,
        vivaldi_config: VivaldiConfig | None = None,
        vivaldi_rounds: int = 24,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self._vivaldi_config = vivaldi_config or VivaldiConfig(use_height=False)
        self._vivaldi_rounds = vivaldi_rounds
        self._system: VivaldiSystem | None = None

    def _embed_members(self, rng: np.random.Generator) -> dict[int, np.ndarray]:
        self._system = VivaldiSystem(
            self.members, config=self._vivaldi_config, seed=rng
        )
        self._system.run(self.oracle, rounds=self._vivaldi_rounds)
        return {
            int(m): self._system.positions[i].copy()
            for i, m in enumerate(self.members)
        }

    def _place_target(self, target: int, rng: np.random.Generator) -> np.ndarray:
        assert self._system is not None
        anchors = rng.choice(
            self.members,
            size=min(self._placement_probes, self.members.size),
            replace=False,
        )
        values = self.probe_many(anchors, target)
        rtts = {int(a): float(v) for a, v in zip(anchors, values)}
        position, _height = self._system.place_external(rtts)
        return position
