"""Meridian behind the common search interface."""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import NearestPeerAlgorithm, SearchResult
from repro.meridian.gossip import repair_overlay_rings
from repro.meridian.overlay import (
    MeridianConfig,
    MeridianNode,
    MeridianOverlay,
    insert_with_cap,
    populate_node_rings,
)
from repro.util.errors import ConfigurationError
from repro.util.rng import make_rng


class MeridianSearch(NearestPeerAlgorithm):
    """Adapter: build a Meridian overlay, answer queries with it.

    Maintenance policy: ``incremental``, via ring insert/evict.  A join
    populates the arrival's rings from a bounded knowledge sample (one
    counted probe per acquaintance plus the pairwise diversity-selection
    blocks for over-full rings) and advertises the arrival to ``ring_size``
    existing nodes, each of which probes it once and files it with random
    eviction on ring overflow — Meridian's incremental gossip behaviour.
    A leave removes the node and evicts its id from every survivor's rings
    for free, then (with ``ring_repair`` on, the default) runs the gossip
    ring-repair pass: nodes whose rings underflowed pull candidate samples
    from ring neighbours and re-fatten their rings with counted
    maintenance probes (see
    :func:`repro.meridian.gossip.repair_overlay_rings`), instead of
    waiting for fresh arrivals to do it.
    """

    name = "meridian"
    maintenance_policy = "incremental"
    plan_native = True

    def __init__(
        self,
        config: MeridianConfig | None = None,
        maintenance=None,
        ring_repair: bool = True,
        repair_exchange_size: int = 16,
    ) -> None:
        super().__init__(maintenance=maintenance)
        self._config = config or MeridianConfig()
        self._ring_repair = ring_repair
        self._repair_exchange_size = repair_exchange_size
        self._overlay: MeridianOverlay | None = None

    def _build(self, rng: np.random.Generator) -> None:
        # Probe through the counted offline channel so a build re-run
        # inside a flush bills its measurements as maintenance.
        self._overlay = MeridianOverlay.build(
            self.oracle,
            self.members,
            config=self._config,
            seed=rng,
            probe_many=self.offline_probe_many,
            pairwise=lambda c: self.offline_probe_block(c, c),
        )

    # -- incremental maintenance ---------------------------------------------

    def _join(self, joined: np.ndarray, rng: np.random.Generator) -> None:
        assert self._overlay is not None
        config = self._overlay.config
        members = self.members
        for node_id in joined:
            node_id = int(node_id)
            node = MeridianNode(node_id, config)
            others = members[members != node_id]
            knowledge = config.knowledge_size(members.size)
            if knowledge is not None and knowledge < others.size:
                others = rng.choice(others, size=knowledge, replace=False)
            # Same bucketing/selection as the converged build, with every
            # measurement billed as maintenance.
            populate_node_rings(
                node,
                others,
                self.maintenance_probe_many(node_id, others),
                rng,
                lambda c: self.maintenance_probe_block(c, c),
            )
            # Advertise the arrival to a bounded set of existing nodes
            # (drawn before admission, so every host has a node object).
            pool = self._overlay.member_ids
            hosts = rng.choice(
                pool, size=min(config.ring_size, pool.size), replace=False
            )
            self._overlay.add_node(node)
            host_lat = self.maintenance_probe_block(hosts, [node_id])[:, 0]
            for host, lat in zip(hosts, host_lat):
                insert_with_cap(
                    self._overlay.node(int(host)), node_id, float(lat), rng
                )

    def _leave(
        self, left: np.ndarray, kept_mask: np.ndarray, rng: np.random.Generator
    ) -> None:
        assert self._overlay is not None
        for node_id in left:
            self._overlay.remove_node(int(node_id))
        self._overlay.evict_everywhere(left)
        if self._ring_repair:
            repair_overlay_rings(
                self._overlay,
                self.maintenance_probe_many,
                rng,
                exchange_size=self._repair_exchange_size,
            )

    def repair_rings(
        self, seed: int | np.random.Generator | None = None
    ) -> tuple[int, int]:
        """One gossip ring-repair pass over the live overlay, counted.

        The entry point the simulated-time daemon re-drives continuously
        (see :class:`repro.meridian.gossip.PeriodicRepair`): every repair
        measurement is billed as maintenance, exactly as the leave-time
        pass bills.  Returns ``(nodes_repaired, probes_spent)``.
        """
        if self._overlay is None:
            raise ConfigurationError(f"{self.name}: repair_rings() before build()")
        before = self._maintenance_probe_count
        repaired = repair_overlay_rings(
            self._overlay,
            self.maintenance_probe_many,
            make_rng(seed),
            exchange_size=self._repair_exchange_size,
        )
        spent = self._maintenance_probe_count - before
        # Continuous upkeep has no membership-event cause: the ledger
        # books it as background so per-event bills stay exact.
        self._scheduler.ledger.charge_background(spent)
        self._maintenance_since_query += spent
        return repaired, spent

    def _plan(self, target: int, rng: np.random.Generator):
        """Native stepwise plan: one round per ring-descent hop.

        Replays :func:`repro.meridian.query.closest_node_query` probe for
        probe (same rng draw for the start node, same scalar first probe,
        same batched ring sweeps through the counted channel), with a
        ``yield`` between hops so a latency-faithful driver can hold each
        hop until its slowest candidate probe completes.
        """
        assert self._overlay is not None
        overlay = self._overlay
        beta = overlay.config.beta
        current = int(rng.choice(overlay.member_ids))
        current_d = self.probe(current, target)
        kept, _, _ = yield from self._offer_round(
            [current], target, [current_d]
        )
        if not kept:  # the entry probe was lost: no ring to descend
            return self.no_answer(target)
        best, best_d = current, current_d
        measured: dict[int, float] = {current: current_d}
        path = [current]
        for _hop in range(overlay.config.max_hops):
            node = overlay.nodes.get(current)
            if node is None:  # departed mid-flight under daemon churn
                break
            low = (1.0 - beta) * current_d
            high = (1.0 + beta) * current_d
            candidates = node.members_within(low, high)
            fresh = list(
                dict.fromkeys(
                    m for m in candidates if m != target and m not in measured
                )
            )
            if fresh:
                values = self.probe_block(fresh, [target])[:, 0]
                fresh, values, _ = yield from self._offer_round(
                    fresh, target, values
                )
                measured.update(zip(fresh, values.tolist()))
            if measured:
                round_best = min(measured, key=measured.get)
                if measured[round_best] < best_d:
                    best, best_d = round_best, measured[round_best]
            # Forward only on a beta-fraction improvement; otherwise finish.
            if best_d <= beta * current_d and best != current:
                current, current_d = best, best_d
                path.append(current)
                continue
            break
        return SearchResult(
            target=target,
            found=best,
            found_latency_ms=best_d,
            probes=0,  # replaced by the base class from the counter
            hops=len(path) - 1,
            path=path,
        )

    def _query(self, target: int, rng: np.random.Generator) -> SearchResult:
        return self._query_via_plan(target, rng)
