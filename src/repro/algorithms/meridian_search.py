"""Meridian behind the common search interface."""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import NearestPeerAlgorithm, SearchResult
from repro.meridian.gossip import repair_overlay_rings
from repro.meridian.overlay import (
    MeridianConfig,
    MeridianNode,
    MeridianOverlay,
    insert_with_cap,
    populate_node_rings,
)
from repro.meridian.query import closest_node_query


class MeridianSearch(NearestPeerAlgorithm):
    """Adapter: build a Meridian overlay, answer queries with it.

    Maintenance policy: ``incremental``, via ring insert/evict.  A join
    populates the arrival's rings from a bounded knowledge sample (one
    counted probe per acquaintance plus the pairwise diversity-selection
    blocks for over-full rings) and advertises the arrival to ``ring_size``
    existing nodes, each of which probes it once and files it with random
    eviction on ring overflow — Meridian's incremental gossip behaviour.
    A leave removes the node and evicts its id from every survivor's rings
    for free, then (with ``ring_repair`` on, the default) runs the gossip
    ring-repair pass: nodes whose rings underflowed pull candidate samples
    from ring neighbours and re-fatten their rings with counted
    maintenance probes (see
    :func:`repro.meridian.gossip.repair_overlay_rings`), instead of
    waiting for fresh arrivals to do it.
    """

    name = "meridian"
    maintenance_policy = "incremental"

    def __init__(
        self,
        config: MeridianConfig | None = None,
        maintenance=None,
        ring_repair: bool = True,
        repair_exchange_size: int = 16,
    ) -> None:
        super().__init__(maintenance=maintenance)
        self._config = config or MeridianConfig()
        self._ring_repair = ring_repair
        self._repair_exchange_size = repair_exchange_size
        self._overlay: MeridianOverlay | None = None

    def _build(self, rng: np.random.Generator) -> None:
        self._overlay = MeridianOverlay.build(
            self.oracle, self.members, config=self._config, seed=rng
        )

    # -- incremental maintenance ---------------------------------------------

    def _join(self, joined: np.ndarray, rng: np.random.Generator) -> None:
        assert self._overlay is not None
        config = self._overlay.config
        members = self.members
        for node_id in joined:
            node_id = int(node_id)
            node = MeridianNode(node_id, config)
            others = members[members != node_id]
            knowledge = config.knowledge_size(members.size)
            if knowledge is not None and knowledge < others.size:
                others = rng.choice(others, size=knowledge, replace=False)
            # Same bucketing/selection as the converged build, with every
            # measurement billed as maintenance.
            populate_node_rings(
                node,
                others,
                self.maintenance_probe_many(node_id, others),
                rng,
                lambda c: self.maintenance_probe_block(c, c),
            )
            # Advertise the arrival to a bounded set of existing nodes
            # (drawn before admission, so every host has a node object).
            pool = self._overlay.member_ids
            hosts = rng.choice(
                pool, size=min(config.ring_size, pool.size), replace=False
            )
            self._overlay.add_node(node)
            host_lat = self.maintenance_probe_block(hosts, [node_id])[:, 0]
            for host, lat in zip(hosts, host_lat):
                insert_with_cap(
                    self._overlay.node(int(host)), node_id, float(lat), rng
                )

    def _leave(
        self, left: np.ndarray, kept_mask: np.ndarray, rng: np.random.Generator
    ) -> None:
        assert self._overlay is not None
        for node_id in left:
            self._overlay.remove_node(int(node_id))
        self._overlay.evict_everywhere(left)
        if self._ring_repair:
            repair_overlay_rings(
                self._overlay,
                self.maintenance_probe_many,
                rng,
                exchange_size=self._repair_exchange_size,
            )

    def _query(self, target: int, rng: np.random.Generator) -> SearchResult:
        assert self._overlay is not None
        outcome = closest_node_query(
            self._overlay, _CountingProxy(self), target, seed=rng
        )
        return SearchResult(
            target=target,
            found=outcome.found,
            found_latency_ms=outcome.found_latency_ms,
            probes=0,  # replaced by the base class from the counter
            hops=outcome.hops,
            path=outcome.path,
        )


class _CountingProxy:
    """LatencyOracle view that routes probes through the algorithm counter.

    Exposes the batch fast path too, so the query's ring sweeps stay
    vectorised end-to-end while every probe is still counted exactly once.
    """

    def __init__(self, algorithm: MeridianSearch) -> None:
        self._algorithm = algorithm

    @property
    def n_nodes(self) -> int:
        return self._algorithm.oracle.n_nodes

    def latency_ms(self, a: int, b: int) -> float:
        return self._algorithm.probe(a, b)

    def latency_block(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        return self._algorithm.probe_block(rows, cols)
