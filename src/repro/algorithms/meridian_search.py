"""Meridian behind the common search interface."""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import NearestPeerAlgorithm, SearchResult
from repro.meridian.overlay import MeridianConfig, MeridianOverlay
from repro.meridian.query import closest_node_query


class MeridianSearch(NearestPeerAlgorithm):
    """Adapter: build a Meridian overlay, answer queries with it."""

    name = "meridian"

    def __init__(self, config: MeridianConfig | None = None) -> None:
        super().__init__()
        self._config = config or MeridianConfig()
        self._overlay: MeridianOverlay | None = None

    def _build(self, rng: np.random.Generator) -> None:
        self._overlay = MeridianOverlay.build(
            self.oracle, self.members, config=self._config, seed=rng
        )

    def _query(self, target: int, rng: np.random.Generator) -> SearchResult:
        assert self._overlay is not None
        outcome = closest_node_query(
            self._overlay, _CountingProxy(self), target, seed=rng
        )
        return SearchResult(
            target=target,
            found=outcome.found,
            found_latency_ms=outcome.found_latency_ms,
            probes=0,  # replaced by the base class from the counter
            hops=outcome.hops,
            path=outcome.path,
        )


class _CountingProxy:
    """LatencyOracle view that routes probes through the algorithm counter.

    Exposes the batch fast path too, so the query's ring sweeps stay
    vectorised end-to-end while every probe is still counted exactly once.
    """

    def __init__(self, algorithm: MeridianSearch) -> None:
        self._algorithm = algorithm

    @property
    def n_nodes(self) -> int:
        return self._algorithm.oracle.n_nodes

    def latency_ms(self, a: int, b: int) -> float:
        return self._algorithm.probe(a, b)

    def latency_block(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        return self._algorithm.probe_block(rows, cols)
