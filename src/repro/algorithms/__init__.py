"""Nearest-peer search algorithms behind one interface.

Every scheme the paper analyses (Section 2.3 and Related Work) is
implemented here against the same :class:`NearestPeerAlgorithm` API so the
benchmarks can run them head-to-head on identical clustered worlds:

========================  ==================================================
``MeridianSearch``        distance-based sampling with rings (Section 2.3)
``KargerRuhlSearch``      growth-restricted metric sampling (Karger-Ruhl)
``TapestrySearch``        identifier-prefix levels with PNS (Tapestry)
``PicSearch``             coordinates + greedy walks (PIC / Mithos style)
``VivaldiGreedySearch``   Vivaldi coordinates + greedy walks
``TiersSearch``           hierarchical clustering descent (Tiers)
``BeaconSearch``          beacon triangulation (Beaconing / Hotz metric)
``RandomProbeSearch``     brute-force random probing (the lower bound)
========================  ==================================================

All of them consume latency probes only — which is precisely why all of
them degrade under the clustering condition (the library's mechanisms
package holds the fixes that use extra information).
"""

from repro.algorithms.base import (
    MaintenanceScheduler,
    NearestPeerAlgorithm,
    ProbeOp,
    ProbeRound,
    SearchResult,
    probe_round,
)
from repro.algorithms.beaconing import BeaconSearch
from repro.algorithms.karger_ruhl import KargerRuhlSearch
from repro.algorithms.meridian_search import MeridianSearch
from repro.algorithms.pic import PicSearch, VivaldiGreedySearch
from repro.algorithms.random_probe import RandomProbeSearch
from repro.algorithms.tapestry import TapestrySearch
from repro.algorithms.tiers import TiersSearch

__all__ = [
    "MaintenanceScheduler",
    "NearestPeerAlgorithm",
    "ProbeOp",
    "ProbeRound",
    "SearchResult",
    "probe_round",
    "MeridianSearch",
    "KargerRuhlSearch",
    "TapestrySearch",
    "PicSearch",
    "VivaldiGreedySearch",
    "TiersSearch",
    "BeaconSearch",
    "RandomProbeSearch",
]
