"""Tiers-style hierarchical nearest-peer search (Banerjee et al., 2002).

A proximity hierarchy: level 0 holds all members grouped into latency-based
clusters; each cluster elects its representative into the level above; the
top level is a single cluster.  A query starts at the top, probes the
members of the current cluster, picks the closest, and descends into that
member's cluster one level down — "the nearest peer in the [lowest-level]
cluster is chosen as the nearest peer overall".

Clusters are formed by greedy leader election (farthest-point leaders,
members join the nearest leader), the standard Tiers construction.  Under
the clustering condition the descent "essentially reduces to random choices
at each step" because sibling representatives are equidistant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.base import NearestPeerAlgorithm, SearchResult
from repro.util.validate import require_positive


@dataclass
class _Level:
    """One level of the hierarchy."""

    # cluster id -> member node ids at this level
    clusters: dict[int, np.ndarray] = field(default_factory=dict)
    # representative node id -> cluster id it represents (one level down)
    represents: dict[int, int] = field(default_factory=dict)


class TiersSearch(NearestPeerAlgorithm):
    """Hierarchical cluster descent.

    Maintenance policy: ``incremental``.  A join descends the hierarchy
    like a query — probing the current cluster's members at each level
    (``O(branching × depth)`` maintenance probes) — and files the arrival
    into the chosen level-0 cluster; a leave removes the node and, where
    it was a cluster representative, promotes a random cluster mate in its
    place (no probes).  Clusters drift from the greedy leader-election
    optimum under sustained churn; only a fresh :meth:`build` re-balances.
    """

    name = "tiers"
    maintenance_policy = "incremental"
    plan_native = True

    def __init__(
        self, branching: int = 12, max_levels: int = 12, maintenance=None
    ) -> None:
        super().__init__(maintenance=maintenance)
        require_positive(branching, "branching")
        self._branching = branching
        self._max_levels = max_levels
        self._levels: list[_Level] = []

    def _cluster_nodes(
        self, nodes: np.ndarray, rng: np.random.Generator
    ) -> dict[int, np.ndarray]:
        """Greedy leader election + nearest-leader assignment."""
        n_clusters = max(1, int(np.ceil(nodes.size / self._branching)))
        if n_clusters == 1:
            return {0: nodes}
        # Farthest-point leader selection over build-time distances.
        leaders = [int(rng.choice(nodes))]
        leader_distances = [self.offline_distances_from(leaders[0])]
        node_index = {int(m): i for i, m in enumerate(self.members)}
        rows = np.array([node_index[int(n)] for n in nodes])
        while len(leaders) < n_clusters:
            min_dist = np.min(
                np.stack([d[rows] for d in leader_distances]), axis=0
            )
            next_leader = int(nodes[int(np.argmax(min_dist))])
            if next_leader in leaders:
                break
            leaders.append(next_leader)
            leader_distances.append(self.offline_distances_from(next_leader))
        assignment = np.argmin(
            np.stack([d[rows] for d in leader_distances]), axis=0
        )
        return {
            c: nodes[assignment == c]
            for c in range(len(leaders))
            if np.any(assignment == c)
        }

    def _build(self, rng: np.random.Generator) -> None:
        self._levels = []
        current_nodes = self.members.copy()
        for _ in range(self._max_levels):
            level = _Level(clusters=self._cluster_nodes(current_nodes, rng))
            representatives = []
            for cluster_id, nodes in level.clusters.items():
                representative = int(rng.choice(nodes))
                level.represents[representative] = cluster_id
                representatives.append(representative)
            self._levels.append(level)
            if len(level.clusters) == 1:
                break
            current_nodes = np.asarray(representatives, dtype=int)

    # -- incremental maintenance ---------------------------------------------

    @staticmethod
    def _cluster_containing(level: _Level, node: int) -> int | None:
        for cluster_id, nodes in level.clusters.items():
            if node in nodes:
                return cluster_id
        return None

    def _join(self, joined: np.ndarray, rng: np.random.Generator) -> None:
        for node in joined:
            self._insert_node(int(node), rng)

    def _insert_node(self, node: int, rng: np.random.Generator) -> None:
        """Descend the hierarchy by measured latency; file into level 0."""
        level_index = len(self._levels) - 1
        cluster_id = next(iter(self._levels[level_index].clusters))
        while level_index > 0:
            members = self._levels[level_index].clusters[cluster_id]
            distances = self.maintenance_probe_many(node, members)
            best = int(members[int(np.argmin(distances))])
            below = self._levels[level_index - 1].represents.get(best)
            if below is None:  # stale representative: fall back to any cluster
                below = next(iter(self._levels[level_index - 1].clusters))
            cluster_id = below
            level_index -= 1
        level0 = self._levels[0]
        level0.clusters[cluster_id] = np.append(level0.clusters[cluster_id], node)

    def _leave(
        self, left: np.ndarray, kept_mask: np.ndarray, rng: np.random.Generator
    ) -> None:
        for node in left:
            self._remove_from_level(0, int(node), rng)

    def _remove_from_level(
        self, index: int, node: int, rng: np.random.Generator
    ) -> None:
        """Remove ``node`` from level ``index``, repairing representatives.

        If the node represented its cluster, a random cluster mate is
        promoted in its place (and substituted for it up the hierarchy);
        if the cluster empties, it is deleted and the removal cascades to
        the level above.
        """
        if index >= len(self._levels):
            return
        level = self._levels[index]
        cluster_id = self._cluster_containing(level, node)
        if cluster_id is None:
            return
        remaining = level.clusters[cluster_id]
        remaining = remaining[remaining != node]
        represented = level.represents.pop(node, None)
        if remaining.size == 0:
            del level.clusters[cluster_id]
            self._remove_from_level(index + 1, node, rng)
            return
        level.clusters[cluster_id] = remaining
        if represented is not None:
            promoted = int(rng.choice(remaining))
            level.represents[promoted] = represented
            self._substitute_upward(index + 1, node, promoted)

    def _substitute_upward(self, index: int, old: int, new: int) -> None:
        """Replace a promoted representative in every level above."""
        if index >= len(self._levels):
            return
        level = self._levels[index]
        cluster_id = self._cluster_containing(level, old)
        if cluster_id is not None:
            nodes = level.clusters[cluster_id].copy()
            nodes[nodes == old] = new
            level.clusters[cluster_id] = nodes
        represented = level.represents.pop(old, None)
        if represented is not None:
            level.represents[new] = represented
            self._substitute_upward(index + 1, old, new)

    def _plan(self, target: int, rng: np.random.Generator):
        """Stepwise search: one round per hierarchy level (native plan)."""
        measured: dict[int, float] = {}
        path: list[int] = []
        # Start at the single top-level cluster and descend.
        level_index = len(self._levels) - 1
        cluster_id = next(iter(self._levels[level_index].clusters))
        while level_index >= 0:
            level = self._levels[level_index]
            nodes = level.clusters.get(cluster_id)
            if nodes is None:  # cluster dissolved mid-flight under churn
                break
            fresh = [
                n
                for n in (int(node) for node in nodes)
                if n not in measured and n != target
            ]
            values = self.probe_many(fresh, target)
            if fresh:
                fresh, values, _ = yield from self._offer_round(
                    fresh, target, values
                )
            measured.update(zip(fresh, values.tolist()))
            in_cluster = {
                int(n): measured[int(n)] for n in nodes if int(n) in measured
            }
            if not in_cluster:
                break
            best = min(in_cluster, key=in_cluster.get)
            path.append(best)
            if level_index == 0:
                break
            # Descend into the cluster the chosen representative leads.
            cluster_id = self._levels[level_index - 1].represents.get(best)
            if cluster_id is None:
                break
            level_index -= 1
        if not measured:  # every probe of the descent was lost
            return self.no_answer(target)
        return self.result(target, measured, hops=len(path), path=path)

    def _query(self, target: int, rng: np.random.Generator) -> SearchResult:
        return self._query_via_plan(target, rng)
