"""Brute-force random probing: the baseline every scheme must beat.

Probes ``budget`` uniformly random members and returns the closest.  Under
the clustering condition the *informed* algorithms converge to exactly this
behaviour once the query enters the cluster — which is the paper's thesis —
so this baseline calibrates how much (or little) their intelligence buys.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import NearestPeerAlgorithm, SearchResult
from repro.util.validate import require_positive


class RandomProbeSearch(NearestPeerAlgorithm):
    """Uniform random probing with a fixed budget.

    Maintenance policy: ``incremental`` at zero cost — there is no index,
    so :meth:`join` / :meth:`leave` only update the member set (0
    maintenance probes per event).  The stepwise plan is a single round:
    the whole budget fans out in parallel.
    """

    name = "random-probe"
    maintenance_policy = "incremental"
    plan_native = True

    def __init__(self, budget: int = 32, maintenance=None) -> None:
        super().__init__(maintenance=maintenance)
        require_positive(budget, "budget")
        self._budget = budget

    def _build(self, rng: np.random.Generator) -> None:
        pass  # nothing to index

    def _join(self, joined: np.ndarray, rng: np.random.Generator) -> None:
        pass  # nothing to maintain: queries read ``self.members`` directly

    def _leave(
        self, left: np.ndarray, kept_mask: np.ndarray, rng: np.random.Generator
    ) -> None:
        pass  # nothing to maintain

    def _plan(self, target: int, rng: np.random.Generator):
        members = self.members
        if self.view_contains(target) is not False:
            # The target is a member, or the view is a stale snapshot the
            # liveness mask cannot answer for: filter with the O(n) scan.
            # When the mask proves the target absent the filter would be
            # the identity, so skipping it draws bit-identical picks while
            # keeping each query O(budget) — the 1M-peer fast path.
            members = members[members != target]
        count = min(self._budget, members.size)
        picks = rng.choice(members, size=count, replace=False)
        values = self.probe_many(picks, target)
        picks, values, _ = yield from self._offer_round(picks, target, values)
        measured = dict(zip(picks, values.tolist()))
        if not measured:  # every probe lost under an active fault model
            return self.no_answer(target)
        return self.result(target, measured, hops=0)

    def _query(self, target: int, rng: np.random.Generator) -> SearchResult:
        return self._query_via_plan(target, rng)
