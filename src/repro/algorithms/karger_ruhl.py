"""Karger-Ruhl style distance-based sampling (STOC 2002).

Each member keeps, for every distance scale ``2^i``, a bounded sample of
other members inside the ball of that radius.  A nearest-neighbour query
repeatedly asks the current node for its samples at the scale of the
current distance to the target, probes them, and moves to any member that
halves the distance.  In growth-restricted metrics each such round succeeds
with constant probability; under the clustering condition the ball at the
cluster scale contains a constant fraction of the whole cluster, so the
"halving" step stalls exactly as the paper describes.
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms.base import NearestPeerAlgorithm, SearchResult
from repro.util.validate import require_positive


class KargerRuhlSearch(NearestPeerAlgorithm):
    """Metric-sampling nearest-neighbour search.

    Maintenance policy: ``rebuild``.  The per-scale ball samples of every
    member shift when the membership changes (a ball's occupancy is a
    global property of the metric), so there is no cheap splice: each
    :meth:`join` / :meth:`leave` re-runs the full sample construction with
    every measurement billed as maintenance — ``|M|²`` probes per event,
    which is exactly the honesty the paper demands of probe accounting.
    A deferred discipline (``maintenance="coalesce:8"`` or ``"lazy"``)
    amortises the bill: events buffer and one counted rebuild covers the
    whole batch, which is how real deployments schedule repair.

    The index is *region-keyed*: node ``v``'s sample hierarchy at index
    generation ``g`` (the count of observed membership events) is drawn
    from its own rng stream seeded ``(region_base, g, v)``, where
    ``region_base`` is a single draw at initial build.  Rebuilds and
    flushes therefore consume nothing from the caller's rng, and a region
    refreshed *on demand* holds bit-identical content to the same region
    inside a full rebuild at the same generation — which is what lets the
    ``lazy-partial`` discipline (``supports_partial_flush``) refresh only
    the ``|touched| * |M|`` regions a query's descent reads while
    returning exactly the answers a full ``lazy`` flush would.
    """

    name = "karger-ruhl"
    maintenance_policy = "rebuild"
    plan_native = True
    supports_partial_flush = True

    def __init__(
        self,
        samples_per_scale: int = 8,
        min_scale_ms: float = 0.05,
        max_scale_ms: float = 512.0,
        max_rounds: int = 48,
        maintenance=None,
    ) -> None:
        super().__init__(maintenance=maintenance)
        require_positive(samples_per_scale, "samples_per_scale")
        self._samples_per_scale = samples_per_scale
        self._min_scale_ms = min_scale_ms
        self._max_scale_ms = max_scale_ms
        self._max_rounds = max_rounds
        self._scales: list[float] = []
        # member -> scale index -> sampled member ids
        self._samples: dict[int, list[np.ndarray]] = {}
        # Partial-freshness bookkeeping: the seed of every region stream,
        # the generation the full index reflects, and per-region overrides
        # for regions refreshed on demand since then.
        self._region_base: int | None = None
        self._index_gen = 0
        self._region_gen: dict[int, int] = {}

    def _scale_index(self, distance_ms: float) -> int:
        clamped = min(max(distance_ms, self._min_scale_ms), self._max_scale_ms)
        return int(
            round(math.log2(clamped / self._min_scale_ms))
        )

    def _partial_reset(self) -> None:
        self._region_base = None
        self._index_gen = 0
        self._region_gen = {}

    def _build(self, rng: np.random.Generator) -> None:
        n_scales = self._scale_index(self._max_scale_ms) + 1
        self._scales = [self._min_scale_ms * 2**i for i in range(n_scales)]
        if self._region_base is None:
            # One draw pins every region stream; rebuilds consume nothing.
            self._region_base = int(rng.integers(2**63))
        self._samples = {}
        for node in self.members:
            self._build_region(int(node))
        self._note_index_current()

    def _build_region(self, node: int) -> None:
        """(Re)draw ``node``'s sample hierarchy from its keyed region stream."""
        members = self.members
        rng = np.random.default_rng(
            (self._region_base, self.maintenance_generation, node)
        )
        distances = self.offline_distances_from(node)
        per_scale: list[np.ndarray] = []
        for radius in self._scales:
            inside = members[(distances <= radius) & (members != node)]
            if inside.size > self._samples_per_scale:
                inside = rng.choice(
                    inside, size=self._samples_per_scale, replace=False
                )
            per_scale.append(inside)
        self._samples[node] = per_scale

    # -- partial freshness -----------------------------------------------------

    def _region_is_fresh(self, node: int) -> bool:
        return (
            self._region_gen.get(node, self._index_gen)
            == self.maintenance_generation
        )

    def _refresh_region(self, node: int) -> None:
        self._build_region(node)
        self._region_gen[node] = self.maintenance_generation

    def _note_index_current(self) -> None:
        self._index_gen = self.maintenance_generation
        self._region_gen = {}
        if len(self._samples) != self.members.size:
            live = set(int(m) for m in self.members)
            for node in [n for n in self._samples if n not in live]:
                del self._samples[node]

    def _plan(self, target: int, rng: np.random.Generator):
        """Stepwise search: one round per sampling hop (native plan)."""
        current = int(rng.choice(self.members))
        first = self.probe(current, target)
        kept, vals, _ = yield from self._offer_round([current], target, [first])
        if not kept:  # the seed probe was lost: nothing to descend from
            return self.no_answer(target)
        measured = dict(zip(kept, vals.tolist()))
        path = [current]
        for _ in range(self._max_rounds):
            d = measured[current]
            scale = self._scale_index(2.0 * d)
            # Region-aware freshness: refresh the ball hierarchy this hop
            # reads (a no-op outside lazy-partial / when already fresh).
            self.touch_region(current)
            per_scale = self._samples.get(current)
            if per_scale is None:  # departed mid-flight under daemon churn
                break
            candidates = per_scale[min(scale, len(self._scales) - 1)]
            fresh = [
                m
                for m in (int(c) for c in candidates)
                if m not in measured and m != target
            ]
            values = self.probe_many(fresh, target)
            if fresh:
                fresh, values, _ = yield from self._offer_round(
                    fresh, target, values
                )
            measured.update(zip(fresh, values.tolist()))
            best = min(measured, key=measured.get)
            # Move only on a halving, the Karger-Ruhl progress criterion.
            if measured[best] <= d / 2.0 and best != current:
                current = best
                path.append(current)
            else:
                break
        return self.result(target, measured, hops=len(path) - 1, path=path)

    def _query(self, target: int, rng: np.random.Generator) -> SearchResult:
        return self._query_via_plan(target, rng)
