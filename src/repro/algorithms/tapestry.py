"""Tapestry-style identifier-based sampling with proximity neighbour selection.

Each member gets a random hex identifier.  Level ``l`` of a node's routing
table holds, for each hex digit, the latency-closest members whose ids share
an ``l``-digit prefix with the node — built top-down as in Hildrum et al.'s
construction, assuming a growth-restricted metric.  The nearest-neighbour
search walks down the levels, at each level probing the current candidate
set and keeping the closest; in a growth-restricted space the candidate at
the last level is the true nearest neighbour.

Under the clustering condition the level structure is uninformative: the
cluster's peers are spread uniformly over identifier space, so the search's
per-level candidate sets are effectively random cluster samples — the paper:
"the only way the new peer would select the correct peer is by first picking
as its neighbor a peer that has the desired peer as a neighbor in the
appropriate level, and the likelihood of this latter event ... is small".
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import NearestPeerAlgorithm, SearchResult
from repro.util.validate import require_positive

_HEX_DIGITS = 16


class TapestrySearch(NearestPeerAlgorithm):
    """Prefix-routing nearest-neighbour search.

    Maintenance policy: ``rebuild``.  Hildrum-style routing tables are
    built top-down from global prefix groups; an arrival can enter (and a
    departure can vacate) any entry of any level of any node's table, so
    membership events re-run the full construction with every measurement
    billed as maintenance (``|M|²`` probes per event).  Real Tapestry
    deployments amortise this with background repair; the counted rebuild
    keeps the cost explicit instead of hiding it, and a deferred
    discipline (``maintenance="coalesce:8"`` or ``"lazy"``) models the
    amortisation — one counted rebuild per buffered event batch.

    Identifiers are *stable*: each member's hex id is drawn from its own
    keyed rng stream (seeded off a single ``region_base`` draw at initial
    build), like the static node hashes of a real Tapestry — rejoining
    peers keep their id and rebuilds consume nothing from the caller's
    rng.  Table construction itself is deterministic given ids and
    distances, so one node's routing table (its *region*) can be rebuilt
    on demand against the current membership at region cost ``|M|``.
    That is the ``lazy-partial`` discipline (``supports_partial_flush``):
    a query refreshes only the prefix neighborhoods on its walked path
    and returns exactly the answers a full ``lazy`` flush would.
    """

    name = "tapestry"
    maintenance_policy = "rebuild"
    plan_native = True
    supports_partial_flush = True

    def __init__(
        self,
        id_digits: int = 8,
        neighbors_per_entry: int = 3,
        probe_budget_per_level: int = 16,
        maintenance=None,
    ) -> None:
        super().__init__(maintenance=maintenance)
        require_positive(id_digits, "id_digits")
        self._id_digits = id_digits
        self._neighbors_per_entry = neighbors_per_entry
        self._probe_budget_per_level = probe_budget_per_level
        self._ids: dict[int, tuple[int, ...]] = {}
        # node -> level -> list of neighbour member ids (all digits merged)
        self._tables: dict[int, list[np.ndarray]] = {}
        # Partial-freshness bookkeeping (see KargerRuhlSearch): id-stream
        # seed, the generation the full index reflects, per-region
        # overrides, and the id matrix cached per member-array identity.
        self._region_base: int | None = None
        self._index_gen = 0
        self._region_gen: dict[int, int] = {}
        self._id_matrix: np.ndarray | None = None
        self._id_matrix_for: np.ndarray | None = None

    def _partial_reset(self) -> None:
        self._region_base = None
        self._index_gen = 0
        self._region_gen = {}
        self._ids = {}
        self._id_matrix = None
        self._id_matrix_for = None

    def _id_of(self, m: int) -> tuple[int, ...]:
        """The member's stable hex id, drawn lazily from its keyed stream."""
        cached = self._ids.get(m)
        if cached is None:
            id_rng = np.random.default_rng((self._region_base, 1, m))
            cached = tuple(
                int(d) for d in id_rng.integers(0, _HEX_DIGITS, size=self._id_digits)
            )
            self._ids[m] = cached
        return cached

    def _ids_matrix(self, members: np.ndarray) -> np.ndarray:
        """Id digits as an ``(n_members, id_digits)`` array, identity-cached."""
        if self._id_matrix_for is not members:
            self._id_matrix = np.array(
                [self._id_of(int(m)) for m in members], dtype=np.int8
            )
            self._id_matrix_for = members
        return self._id_matrix

    def _build(self, rng: np.random.Generator) -> None:
        if self._region_base is None:
            # One draw pins every id stream; rebuilds consume nothing.
            self._region_base = int(rng.integers(2**63))
        self._tables = {}
        for node in self.members:
            self._build_region(int(node))
        self._note_index_current()

    def _build_region(self, node: int) -> None:
        """Rebuild one node's routing table against the current membership.

        Vectorised Hildrum construction: members sharing an ``l``-digit
        prefix with the node, grouped by their next digit, keeping the
        latency-closest few per digit (proximity neighbour selection).
        """
        members = self.members
        ids = self._ids_matrix(members)
        node_id = np.asarray(self._id_of(node), dtype=np.int8)
        distances = self.offline_distances_from(node)
        not_self = members != node
        # Length of the common prefix with the node, for every member at
        # once: digit-wise equality, zeroed from the first mismatch on.
        shared = np.cumprod(ids == node_id, axis=1).sum(axis=1)
        levels: list[np.ndarray] = []
        for level in range(self._id_digits):
            eligible = not_self & (shared >= level)
            digits_here = ids[:, level]
            chosen: list[int] = []
            for digit in range(_HEX_DIGITS):
                idx = np.flatnonzero(eligible & (digits_here == digit))
                if idx.size == 0:
                    continue
                order = np.argsort(distances[idx], kind="stable")
                chosen.extend(
                    int(members[i])
                    for i in idx[order[: self._neighbors_per_entry]]
                )
            levels.append(np.asarray(chosen, dtype=int))
            if not chosen:
                break
        self._tables[node] = levels

    # -- partial freshness -----------------------------------------------------

    def _region_is_fresh(self, node: int) -> bool:
        return (
            self._region_gen.get(node, self._index_gen)
            == self.maintenance_generation
        )

    def _refresh_region(self, node: int) -> None:
        self._build_region(node)
        self._region_gen[node] = self.maintenance_generation

    def _note_index_current(self) -> None:
        self._index_gen = self.maintenance_generation
        self._region_gen = {}
        if len(self._tables) != self.members.size:
            live = set(int(m) for m in self.members)
            for node in [n for n in self._tables if n not in live]:
                del self._tables[node]

    def _plan(self, target: int, rng: np.random.Generator):
        """Stepwise search: one round per routing level (native plan)."""
        current = int(rng.choice(self.members))
        first = self.probe(current, target)
        kept, vals, _ = yield from self._offer_round([current], target, [first])
        if not kept:  # the seed probe was lost: nothing to route from
            return self.no_answer(target)
        measured = dict(zip(kept, vals.tolist()))
        path = [current]
        for level in range(self._id_digits):
            # Region-aware freshness: refresh the routing table this level
            # reads (a no-op outside lazy-partial / when already fresh).
            self.touch_region(current)
            table = self._tables.get(current)
            if table is None:  # departed mid-flight under daemon churn
                break
            if level >= len(table) or table[level].size == 0:
                break
            candidates = table[level]
            if candidates.size > self._probe_budget_per_level:
                candidates = rng.choice(
                    candidates, size=self._probe_budget_per_level, replace=False
                )
            fresh = [
                m
                for m in (int(c) for c in candidates)
                if m not in measured and m != target
            ]
            values = self.probe_many(fresh, target)
            if fresh:
                fresh, values, _ = yield from self._offer_round(
                    fresh, target, values
                )
            measured.update(zip(fresh, values.tolist()))
            best = min(measured, key=measured.get)
            if best != current:
                current = best
                path.append(current)
        return self.result(target, measured, hops=len(path) - 1, path=path)

    def _query(self, target: int, rng: np.random.Generator) -> SearchResult:
        return self._query_via_plan(target, rng)
