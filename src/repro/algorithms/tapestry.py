"""Tapestry-style identifier-based sampling with proximity neighbour selection.

Each member gets a random hex identifier.  Level ``l`` of a node's routing
table holds, for each hex digit, the latency-closest members whose ids share
an ``l``-digit prefix with the node — built top-down as in Hildrum et al.'s
construction, assuming a growth-restricted metric.  The nearest-neighbour
search walks down the levels, at each level probing the current candidate
set and keeping the closest; in a growth-restricted space the candidate at
the last level is the true nearest neighbour.

Under the clustering condition the level structure is uninformative: the
cluster's peers are spread uniformly over identifier space, so the search's
per-level candidate sets are effectively random cluster samples — the paper:
"the only way the new peer would select the correct peer is by first picking
as its neighbor a peer that has the desired peer as a neighbor in the
appropriate level, and the likelihood of this latter event ... is small".
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import NearestPeerAlgorithm, SearchResult
from repro.util.validate import require_positive

_HEX_DIGITS = 16


class TapestrySearch(NearestPeerAlgorithm):
    """Prefix-routing nearest-neighbour search.

    Maintenance policy: ``rebuild``.  Hildrum-style routing tables are
    built top-down from global prefix groups; an arrival can enter (and a
    departure can vacate) any entry of any level of any node's table, so
    membership events re-run the full construction with every measurement
    billed as maintenance (``|M|²`` probes per event).  Real Tapestry
    deployments amortise this with background repair; the counted rebuild
    keeps the cost explicit instead of hiding it, and a deferred
    discipline (``maintenance="coalesce:8"`` or ``"lazy"``) models the
    amortisation — one counted rebuild per buffered event batch.
    """

    name = "tapestry"
    maintenance_policy = "rebuild"
    plan_native = True

    def __init__(
        self,
        id_digits: int = 8,
        neighbors_per_entry: int = 3,
        probe_budget_per_level: int = 16,
        maintenance=None,
    ) -> None:
        super().__init__(maintenance=maintenance)
        require_positive(id_digits, "id_digits")
        self._id_digits = id_digits
        self._neighbors_per_entry = neighbors_per_entry
        self._probe_budget_per_level = probe_budget_per_level
        self._ids: dict[int, tuple[int, ...]] = {}
        # node -> level -> list of neighbour member ids (all digits merged)
        self._tables: dict[int, list[np.ndarray]] = {}

    def _shared_prefix(self, a: tuple[int, ...], b: tuple[int, ...]) -> int:
        shared = 0
        for da, db in zip(a, b):
            if da != db:
                break
            shared += 1
        return shared

    def _build(self, rng: np.random.Generator) -> None:
        members = self.members
        self._ids = {
            int(m): tuple(rng.integers(0, _HEX_DIGITS, size=self._id_digits))
            for m in members
        }
        self._tables = {}
        for node in members:
            node = int(node)
            distances = self.offline_distances_from(node)
            node_id = self._ids[node]
            levels: list[np.ndarray] = []
            for level in range(self._id_digits):
                # Members sharing an `level`-digit prefix, grouped by their
                # next digit; keep the latency-closest few per digit (PNS).
                chosen: list[int] = []
                for digit in range(_HEX_DIGITS):
                    eligible = [
                        i
                        for i, m in enumerate(members)
                        if int(m) != node
                        and self._shared_prefix(node_id, self._ids[int(m)]) >= level
                        and self._ids[int(m)][level] == digit
                    ]
                    if not eligible:
                        continue
                    eligible.sort(key=lambda i: distances[i])
                    chosen.extend(
                        int(members[i])
                        for i in eligible[: self._neighbors_per_entry]
                    )
                levels.append(np.asarray(chosen, dtype=int))
                if not chosen:
                    break
            self._tables[node] = levels
        self._members_by_prefix_built = True

    def _plan(self, target: int, rng: np.random.Generator):
        """Stepwise search: one round per routing level (native plan)."""
        current = int(rng.choice(self.members))
        first = self.probe(current, target)
        kept, vals, _ = yield from self._offer_round([current], target, [first])
        if not kept:  # the seed probe was lost: nothing to route from
            return self.no_answer(target)
        measured = dict(zip(kept, vals.tolist()))
        path = [current]
        for level in range(self._id_digits):
            table = self._tables.get(current)
            if table is None:  # departed mid-flight under daemon churn
                break
            if level >= len(table) or table[level].size == 0:
                break
            candidates = table[level]
            if candidates.size > self._probe_budget_per_level:
                candidates = rng.choice(
                    candidates, size=self._probe_budget_per_level, replace=False
                )
            fresh = [
                m
                for m in (int(c) for c in candidates)
                if m not in measured and m != target
            ]
            values = self.probe_many(fresh, target)
            if fresh:
                fresh, values, _ = yield from self._offer_round(
                    fresh, target, values
                )
            measured.update(zip(fresh, values.tolist()))
            best = min(measured, key=measured.get)
            if best != current:
                current = best
                path.append(current)
        return self.result(target, measured, hops=len(path) - 1, path=path)

    def _query(self, target: int, rng: np.random.Generator) -> SearchResult:
        return self._query_via_plan(target, rng)
