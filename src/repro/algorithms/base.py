"""The common interface all nearest-peer algorithms implement."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Generator, Iterable

import numpy as np

from repro.topology.oracle import (
    LatencyOracle,
    batch_latencies_from,
    batch_latency_block,
)
from repro.util.errors import ConfigurationError
from repro.util.rng import make_rng


#: Membership-maintenance policies a scheme can declare (class attribute
#: ``NearestPeerAlgorithm.maintenance_policy``).  ``incremental`` means
#: :meth:`NearestPeerAlgorithm.join` / :meth:`~NearestPeerAlgorithm.leave`
#: patch the existing index in place (cost proportional to the event);
#: ``rebuild`` means every membership event re-runs the full offline build
#: with its probes counted, so the maintenance bill is honest the same way
#: the query probe bill is.
MAINTENANCE_POLICIES = ("incremental", "rebuild")

#: Maintenance-scheduling disciplines (see :class:`MaintenanceScheduler`).
#: ``eager`` applies every membership event to the index the moment it is
#: observed (the historical behaviour, bit-identical).  ``coalesce`` buffers
#: events and applies their *net* effect once per ``window`` events, so a
#: rebuild-policy scheme pays one reconstruction per window instead of one
#: per event (queries between flushes run against the bounded-staleness
#: index).  ``lazy`` buffers events until the next query touches the stale
#: index, so event-only phases cost nothing and the whole deferred bill
#: lands on the query that finally needs the index fresh.  ``lazy-partial``
#: is the region-aware refinement of ``lazy``: a query refreshes only the
#: index *regions* it actually reads (a region-sized rebuild per touched
#: node instead of a full |M|^2 flush), answering from a partially fresh
#: index; schemes that do not declare
#: :attr:`NearestPeerAlgorithm.supports_partial_flush` fall back to the
#: full flush and behave exactly like ``lazy``.
MAINTENANCE_DISCIPLINES = ("eager", "coalesce", "lazy", "lazy-partial")


class MaintenanceLedger:
    """Exact per-cause attribution of maintenance probes.

    Every non-empty membership event observed after :meth:`build` gets a
    monotonically increasing *event id* (:meth:`new_event`), and every
    maintenance probe is charged to the event(s) that caused it: an eager
    event's bill lands on its own id, a flush's bill is split over the
    buffered ids it applied (:meth:`charge_spread`), and a partial-flush
    region refresh is split over the ids still pending.  Probes with no
    membership-event cause (continuous overlay upkeep such as Meridian
    ring repair) accrue on the :attr:`background` bucket.

    The invariant ``sum(bills) + background == maintenance_probes_total``
    holds at every flush boundary, independent of scheduling order,
    stepper choice or shard layout — which is what replaces the daemon's
    racy first-finisher claim with exact per-event accounting.
    """

    def __init__(self) -> None:
        self._bills: list[int] = []
        #: Maintenance probes with no membership-event cause.
        self.background = 0

    @property
    def n_events(self) -> int:
        """Membership events observed so far (== index *generation*)."""
        return len(self._bills)

    def new_event(self) -> int:
        """Allocate the next event id (one per non-empty join/leave)."""
        self._bills.append(0)
        return len(self._bills) - 1

    def charge(self, event_id: int, probes: int) -> None:
        """Bill ``probes`` to one event (the eager path)."""
        self._bills[event_id] += int(probes)

    def charge_spread(self, event_ids: list[int], probes: int) -> None:
        """Split ``probes`` over ``event_ids`` deterministically.

        Each id gets ``probes // len(ids)``; the remainder goes to the
        earliest ids, one probe each — a fixed rule so bills are replayable
        regardless of which query triggered the flush.  With no ids on the
        books the probes fall to :attr:`background` (cannot happen from a
        flush, which by construction has pending ids).
        """
        probes = int(probes)
        if probes <= 0:
            return
        if not event_ids:
            self.background += probes
            return
        share, remainder = divmod(probes, len(event_ids))
        for rank, event_id in enumerate(event_ids):
            self._bills[event_id] += share + (1 if rank < remainder else 0)

    def charge_background(self, probes: int) -> None:
        self.background += int(probes)

    def bills(self) -> np.ndarray:
        """Per-event bills as an int64 array indexed by event id."""
        return np.asarray(self._bills, dtype=np.int64)

    def billed_between(self, start: int, stop: int) -> int:
        """Total probes billed to event ids ``start..stop-1``.

        O(stop - start), unlike slicing :meth:`bills`, which materialises
        the whole ledger — this is the per-event read the tracer makes
        after every membership tick.
        """
        return sum(self._bills[start:stop])

    @property
    def total(self) -> int:
        return sum(self._bills) + self.background

    def reset(self) -> None:
        self._bills = []
        self.background = 0


class MaintenanceScheduler:
    """Decides *when* observed membership events are applied to the index.

    The scheduler decouples observing a join/leave from paying for it: the
    member set is always updated the moment an event is observed (the
    overlay knows who is alive), but the scheme's *index* — ring sets,
    routing tables, beacon columns — is only re-aligned when the scheduler
    says so.  Deferred probes are still honestly billed when they fire: a
    flush runs under the same counted-maintenance accounting as an eager
    event, and its bill is reported on the next query's
    :attr:`SearchResult.maintenance_probes`.

    Disciplines (:data:`MAINTENANCE_DISCIPLINES`):

    * ``eager`` — flush on every event.  Bit-identical to the pre-scheduler
      code path: same draws, same probes, same results.
    * ``coalesce`` — flush after every ``window`` buffered events.  Queries
      between flushes answer from the stale index (staleness bounded by the
      window), which is how real deployments batch repairs.
    * ``lazy`` — flush only when a query arrives and the index is stale, so
      the index is always fresh at query time but event-only stretches
      (e.g. a churn warmup, or many events between sparse queries) coalesce
      into a single application.
    * ``lazy-partial`` — like ``lazy``, but a query refreshes only the index
      regions its descent actually reads (see
      :meth:`NearestPeerAlgorithm.partial_flush`); schemes without
      :attr:`~NearestPeerAlgorithm.supports_partial_flush` degrade to the
      full flush, i.e. behave exactly like ``lazy``.

    The scheduler itself holds only the *decision* state (discipline,
    window, pending-event count) plus the :class:`MaintenanceLedger` that
    attributes every maintenance probe to the membership event that caused
    it; the mechanics of applying buffered events live in
    :meth:`NearestPeerAlgorithm._flush`.
    """

    def __init__(self, discipline: str = "eager", window: int = 8) -> None:
        if discipline not in MAINTENANCE_DISCIPLINES:
            raise ConfigurationError(
                f"unknown maintenance discipline {discipline!r}; "
                f"choose from {MAINTENANCE_DISCIPLINES}"
            )
        if discipline == "coalesce" and window < 1:
            raise ConfigurationError(f"coalesce window must be >= 1, got {window}")
        self.discipline = discipline
        self.window = window
        #: Events buffered since the last flush.
        self.pending_events = 0
        #: Flushes performed since :meth:`reset` (diagnostic).
        self.flush_count = 0
        #: Exact per-cause probe attribution (event id -> probes).
        self.ledger = MaintenanceLedger()

    @classmethod
    def from_spec(
        cls, spec: "str | MaintenanceScheduler | None"
    ) -> "MaintenanceScheduler":
        """Coerce a user-facing spec into a scheduler.

        Accepts ``None`` (eager), a ready-made scheduler (its
        *configuration* is copied into a fresh instance — schedulers
        carry per-algorithm runtime state, so sharing one object between
        algorithms would tangle their buffers), or a string: ``"eager"``,
        ``"lazy"``, ``"lazy-partial"``, ``"coalesce"`` (default window) or
        ``"coalesce:<k>"``.
        """
        if spec is None:
            return cls()
        if isinstance(spec, MaintenanceScheduler):
            return cls(spec.discipline, window=spec.window)
        if not isinstance(spec, str):
            raise ConfigurationError(
                f"maintenance spec must be a string or MaintenanceScheduler, "
                f"got {type(spec).__name__}"
            )
        name, _, arg = spec.partition(":")
        if arg:
            if name != "coalesce":
                raise ConfigurationError(
                    f"only the coalesce discipline takes a window, got {spec!r}"
                )
            try:
                window = int(arg)
            except ValueError:
                raise ConfigurationError(
                    f"bad coalesce window in {spec!r}"
                ) from None
            return cls("coalesce", window=window)
        return cls(name)

    @property
    def eager(self) -> bool:
        return self.discipline == "eager"

    @property
    def flush_on_query(self) -> bool:
        """Whether a stale index must be *fully* refreshed before answering."""
        return self.discipline == "lazy"

    @property
    def partial_on_query(self) -> bool:
        """Whether queries refresh only the index regions they read."""
        return self.discipline == "lazy-partial"

    def note_event(self) -> bool:
        """Record one buffered event; True when the flush is due now."""
        self.pending_events += 1
        return self.discipline == "coalesce" and self.pending_events >= self.window

    def note_flush(self) -> None:
        self.pending_events = 0
        self.flush_count += 1

    def reset(self) -> None:
        """Forget all scheduling state (a fresh :meth:`~NearestPeerAlgorithm.build`)."""
        self.pending_events = 0
        self.flush_count = 0
        self.ledger.reset()

    def describe(self) -> str:
        if self.discipline == "coalesce":
            return f"coalesce:{self.window}"
        return self.discipline


@dataclass(frozen=True)
class ProbeOp:
    """One already-measured probe whose *completion* a plan driver times.

    The stepwise query protocol (:meth:`NearestPeerAlgorithm.query_plan`)
    yields batches of these.  The measurement itself has already happened
    through the algorithm's counted probe channel when the batch is
    yielded — accounting, noise-stream order and rng consumption are
    therefore identical to the blocking :meth:`~NearestPeerAlgorithm.query`
    by construction — but the *plan generator does not act on the values
    until the driver resumes it*, so a latency-faithful driver (the
    simulated-time daemon) simply holds the resume until every probe's
    ``rtt_ms`` has elapsed on its clock.  An instantaneous driver resumes
    immediately and reproduces the blocking query bit for bit.
    """

    #: The member issuing the measurement.
    src: int
    #: The node measured (the query target for ``kind="probe"``).
    dst: int
    #: The RTT the probe observed — also its completion time.
    rtt_ms: float
    #: ``"probe"`` (counts against the target-probe bill) or ``"aux"``.
    kind: str = "probe"


class ProbeRound:
    """One probe fan-out in struct-of-arrays form.

    Sequence-compatible with the historical ``list[ProbeOp]`` round —
    ``len``, iteration and indexing materialise :class:`ProbeOp` views on
    demand — while keeping the parallel ``srcs`` / ``dsts`` / ``rtts_ms``
    arrays the vectorised daemon stepper reads directly, so a round of a
    thousand probes costs one numpy slice instead of a thousand dataclass
    instances.
    """

    __slots__ = ("srcs", "dsts", "rtts_ms", "kind")

    def __init__(
        self,
        srcs: np.ndarray | Iterable[int],
        dsts: np.ndarray | Iterable[int] | int,
        rtts_ms: np.ndarray | Iterable[float],
        kind: str = "probe",
    ) -> None:
        self.srcs = np.asarray(srcs, dtype=int)
        dst_arr = np.asarray(dsts, dtype=int)
        if dst_arr.ndim == 0:
            dst_arr = np.full(self.srcs.shape, int(dst_arr))
        self.dsts = dst_arr
        self.rtts_ms = np.asarray(rtts_ms, dtype=float)
        self.kind = kind

    def __len__(self) -> int:
        return int(self.srcs.size)

    def __bool__(self) -> bool:
        return self.srcs.size > 0

    def __getitem__(self, index: int) -> ProbeOp:
        return ProbeOp(
            int(self.srcs[index]),
            int(self.dsts[index]),
            float(self.rtts_ms[index]),
            self.kind,
        )

    def __iter__(self):
        kind = self.kind
        for s, d, r in zip(
            self.srcs.tolist(), self.dsts.tolist(), self.rtts_ms.tolist()
        ):
            yield ProbeOp(int(s), int(d), float(r), kind)

    def __repr__(self) -> str:
        return f"ProbeRound(n={len(self)}, kind={self.kind!r})"


#: The stepwise query protocol: a generator yielding probe rounds (each a
#: :class:`ProbeRound` fan-out that completes when its slowest probe does;
#: rounds are sequential) and returning the final :class:`SearchResult`
#: via ``StopIteration.value``.  Drive it with ``plan.send(None)``.
QueryPlan = Generator  # Generator[ProbeRound, None, SearchResult]


def probe_round(
    nodes: Iterable[int],
    target: int,
    values: Iterable[float],
    kind: str = "probe",
) -> ProbeRound:
    """Package one fan-out (``nodes`` each probing ``target``) as a round."""
    return ProbeRound(nodes, int(target), values, kind)


@dataclass
class SearchResult:
    """Outcome of one nearest-peer search.

    ``probes`` counts latency measurements involving the target — the
    paper's cost metric ("this translates to a lower bound on the number of
    latency probes performed").  ``aux_probes`` counts other measurements
    the query triggered (e.g. beacon-to-beacon).  ``maintenance_probes``
    counts the membership-maintenance measurements (join/leave index
    updates or counted rebuilds) accrued since the previous query — zero
    under a static membership.
    """

    target: int
    found: int
    found_latency_ms: float
    probes: int
    aux_probes: int = 0
    maintenance_probes: int = 0
    hops: int = 0
    path: list[int] = field(default_factory=list)

    @property
    def answered(self) -> bool:
        """False for the no-answer sentinel a fully-faulted plan returns."""
        return self.found >= 0


class NearestPeerAlgorithm(abc.ABC):
    """A nearest-peer search scheme over a dynamic member population.

    Lifecycle: construct with parameters, :meth:`build` once over the
    initial member set (this may take offline measurements — ring
    construction, coordinate embedding, hierarchy building), then
    :meth:`query` many times, interleaved with :meth:`join` /
    :meth:`leave` membership events.  Queries must only learn about the
    target through ``self.probe`` so the probe accounting is honest;
    membership maintenance must measure only through the maintenance
    helpers (:meth:`maintenance_probe_many` and friends, or — for
    rebuild-policy schemes — the flagged :meth:`offline_distances_from`)
    so maintenance cost is honest too.

    Each scheme declares its ``maintenance_policy`` (see
    :data:`MAINTENANCE_POLICIES`): ``incremental`` schemes patch their
    index per event, ``rebuild`` schemes re-run the full build per event
    with every probe counted (``rebuild_count`` tracks how often).

    *When* maintenance fires is the :class:`MaintenanceScheduler`'s call
    (the ``maintenance`` constructor argument): under the default
    ``eager`` discipline events are applied immediately (bit-identical to
    the pre-scheduler code), while ``coalesce``/``lazy`` buffer events and
    apply their net effect later — see :meth:`_flush`.

    Every scheme also answers *stepwise* through :meth:`query_plan` — the
    sans-io protocol the simulated-time daemon drives, where each probe
    fan-out is a round whose completion the driver times.  Schemes with
    ``plan_native = True`` implement the rounds directly in :meth:`_plan`
    (and derive ``_query`` from it); the rest go through the generic
    record-and-replay adapter.
    """

    #: Human-readable scheme name (class attribute).
    name: str = "abstract"
    #: Declared membership-maintenance policy (class attribute).
    maintenance_policy: str = "rebuild"
    #: Whether the scheme implements a native multi-round :meth:`_plan`
    #: (class attribute).  Schemes without one still serve
    #: :meth:`query_plan` through the generic record-and-replay adapter.
    plan_native: bool = False
    #: Whether the scheme can refresh single index *regions* on demand
    #: (class attribute) — the ``lazy-partial`` discipline's fast path.
    #: Declaring True requires implementing :meth:`_region_is_fresh`,
    #: :meth:`_refresh_region` and :meth:`_note_index_current`.
    supports_partial_flush: bool = False

    def __init__(
        self, maintenance: "str | MaintenanceScheduler | None" = None
    ) -> None:
        self._oracle: LatencyOracle | None = None
        self._probe_oracle: LatencyOracle | None = None
        self._members: np.ndarray | None = None
        self._probe_count = 0
        self._aux_probe_count = 0
        self._maintenance_probe_count = 0
        self._maintenance_since_query = 0
        self._in_maintenance = False
        self._plan_recorder: list[ProbeRound] | None = None
        self.rebuild_count = 0
        self._scheduler = MaintenanceScheduler.from_spec(maintenance)
        # Event ids buffered since the last flush (ledger attribution).
        self._pending_event_ids: list[int] = []
        # The membership the *index* currently reflects, or None when the
        # index is in sync with ``self._members``.  Member arrays are
        # replaced (never mutated in place), so holding the pre-event
        # reference is a free snapshot.
        self._indexed_members: np.ndarray | None = None
        # Struct-of-arrays liveness: a boolean mask over the oracle's id
        # space, maintained in O(changes) per membership event, plus the
        # identity of the member array it reflects (member arrays are
        # replaced, never mutated, so identity pins the mask's validity).
        self._member_mask: np.ndarray | None = None
        self._member_mask_for: np.ndarray | None = None
        # Observability hook, called as ``(event_ids, probes, kind)``
        # right after a deferred flush (kind="flush") or an on-demand
        # region refresh (kind="partial") charges the ledger.  The
        # daemon's tracer installs it; ``None`` (the default) costs one
        # attribute check on the flush path and nothing on queries.
        self._flush_observer = None

    # -- lifecycle -----------------------------------------------------------

    def build(
        self,
        oracle: LatencyOracle,
        member_ids: np.ndarray | list[int],
        seed: int | np.random.Generator | None = None,
        probe_oracle: LatencyOracle | None = None,
    ) -> None:
        """Index the member population (may probe freely: offline phase).

        ``probe_oracle`` supplies *query-time* measurements; pass a
        :class:`~repro.topology.oracle.NoisyOracle` to model the fact that
        real probes cannot resolve sub-millisecond differences — the honest
        setting for comparing schemes under the clustering condition
        (beacon triangulation, for one, is unrealistically sharp on exact
        latencies).
        """
        self._oracle = oracle
        self._probe_oracle = probe_oracle or oracle
        self._members = np.asarray(member_ids, dtype=int)
        self._indexed_members = None
        self._reset_member_mask()
        self._scheduler.reset()
        self._pending_event_ids = []
        self._partial_reset()
        self._build(make_rng(seed))

    def _reset_member_mask(self) -> None:
        """(Re)build the liveness mask from ``self._members``."""
        assert self._oracle is not None and self._members is not None
        mask = np.zeros(self._oracle.n_nodes, dtype=bool)
        mask[self._members] = True
        self._member_mask = mask
        self._member_mask_for = self._members

    def _update_member_mask(
        self,
        add: np.ndarray | None = None,
        remove: np.ndarray | None = None,
    ) -> None:
        """O(changes) mask maintenance after a membership event."""
        if self._member_mask is None:
            return
        if remove is not None and remove.size:
            self._member_mask[remove] = False
        if add is not None and add.size:
            self._member_mask[add] = True
        self._member_mask_for = self._members

    def view_contains(self, node: int) -> bool | None:
        """O(1) membership test against the current query view, or ``None``.

        Answers only when the view a query reads (``self._members``,
        possibly a plan's swapped-in snapshot) is the very array the mask
        reflects; a stale indexed view under a deferred discipline returns
        ``None`` and callers take their O(n) slow path.  Queries use this
        to skip full-membership scans — the difference between O(n) and
        O(budget) per query at a million peers.
        """
        members = self._members
        if (
            members is None
            or self._member_mask is None
            or members is not self._member_mask_for
        ):
            return None
        if not 0 <= node < self._member_mask.size:
            return False
        return bool(self._member_mask[node])

    @abc.abstractmethod
    def _build(self, rng: np.random.Generator) -> None:
        """Subclass hook: construct internal structures."""

    def join(
        self,
        node_ids: np.ndarray | list[int],
        seed: int | np.random.Generator | None = None,
    ) -> int:
        """Admit ``node_ids`` into the membership; returns probes spent.

        The new ids must not already be members.  Maintenance follows the
        scheme's declared :attr:`maintenance_policy`: incremental schemes
        splice the arrivals into the existing index, rebuild schemes
        re-run the offline build over the grown membership with every
        probe counted.  The returned count (also accumulated on
        :attr:`maintenance_probes_total` and reported on the next query's
        :attr:`SearchResult.maintenance_probes`) is the event's
        measurement bill.

        Under a deferred discipline (``coalesce``/``lazy``) the member set
        is updated immediately but the index is not: the event is buffered
        and the call returns 0 unless it triggers a coalesced
        :meth:`_flush`, whose bill it then returns.
        """
        if self._oracle is None or self._members is None:
            raise ConfigurationError(f"{self.name}: join() before build()")
        joined = np.unique(np.asarray(node_ids, dtype=int))
        if joined.size == 0:
            return 0
        in_range = joined.min() >= 0 and joined.max() < self._oracle.n_nodes
        if (
            in_range
            and self._member_mask is not None
            and self._members is self._member_mask_for
        ):
            # O(|J|) duplicate check off the liveness mask.
            dup_hits = self._member_mask[joined]
            if dup_hits.any():
                raise ConfigurationError(
                    f"{self.name}: join() ids already members: "
                    f"{joined[dup_hits].tolist()[:8]}"
                )
        else:
            if np.isin(joined, self._members).any():
                dup = joined[np.isin(joined, self._members)]
                raise ConfigurationError(
                    f"{self.name}: join() ids already members: {dup.tolist()[:8]}"
                )
        if not in_range:
            raise ConfigurationError(
                f"{self.name}: join() ids outside oracle range "
                f"[0, {self._oracle.n_nodes})"
            )
        if not self._scheduler.eager:
            return self._defer_event(
                np.concatenate([self._members, joined]), seed, joined=joined
            )
        event_id = self._scheduler.ledger.new_event()
        before = self._maintenance_probe_count
        self._members = np.concatenate([self._members, joined])
        self._update_member_mask(add=joined)
        self._in_maintenance = True
        try:
            self._join(joined, make_rng(seed))
        finally:
            self._in_maintenance = False
        spent = self._maintenance_probe_count - before
        self._scheduler.ledger.charge(event_id, spent)
        self._maintenance_since_query += spent
        return spent

    def leave(
        self,
        node_ids: np.ndarray | list[int],
        seed: int | np.random.Generator | None = None,
    ) -> int:
        """Remove ``node_ids`` from the membership; returns probes spent.

        Every id must currently be a member, and at least two members must
        remain (schemes like Meridian need a non-degenerate overlay).  The
        per-policy maintenance and accounting mirror :meth:`join`.
        """
        if self._oracle is None or self._members is None:
            raise ConfigurationError(f"{self.name}: leave() before build()")
        left = np.unique(np.asarray(node_ids, dtype=int))
        if left.size == 0:
            return 0
        if (
            self._member_mask is not None
            and self._members is self._member_mask_for
            and left.min() >= 0
            and left.max() < self._member_mask.size
        ):
            missing = left[~self._member_mask[left]]
        else:
            missing = left[~np.isin(left, self._members)]
        if missing.size:
            raise ConfigurationError(
                f"{self.name}: leave() ids not members: {missing.tolist()[:8]}"
            )
        kept_mask = ~np.isin(self._members, left)
        if int(kept_mask.sum()) < 2:
            raise ConfigurationError(
                f"{self.name}: leave() would drop membership below 2 "
                f"({int(kept_mask.sum())} would remain)"
            )
        if not self._scheduler.eager:
            return self._defer_event(self._members[kept_mask], seed, left=left)
        event_id = self._scheduler.ledger.new_event()
        before = self._maintenance_probe_count
        self._members = self._members[kept_mask]
        self._update_member_mask(remove=left)
        self._in_maintenance = True
        try:
            self._leave(left, kept_mask, make_rng(seed))
        finally:
            self._in_maintenance = False
        spent = self._maintenance_probe_count - before
        self._scheduler.ledger.charge(event_id, spent)
        self._maintenance_since_query += spent
        return spent

    # -- deferred maintenance (non-eager disciplines) --------------------------

    def _defer_event(
        self,
        members_after: np.ndarray,
        seed: int | np.random.Generator | None,
        joined: np.ndarray | None = None,
        left: np.ndarray | None = None,
    ) -> int:
        """Buffer one observed membership event; flush if the window fills."""
        if self._indexed_members is None:
            self._indexed_members = self._members
        self._pending_event_ids.append(self._scheduler.ledger.new_event())
        self._members = members_after
        self._update_member_mask(add=joined, remove=left)
        if self._scheduler.note_event():
            return self._flush(make_rng(seed))
        return 0

    @property
    def maintenance_discipline(self) -> str:
        """The scheduling discipline in force (``eager``/``coalesce``/``lazy``)."""
        return self._scheduler.discipline

    @property
    def has_pending_maintenance(self) -> bool:
        """Whether buffered events have yet to be applied to the index."""
        return self._indexed_members is not None

    @property
    def pending_maintenance_events(self) -> int:
        """Buffered events since the last flush."""
        return self._scheduler.pending_events

    def flush_maintenance(
        self, seed: int | np.random.Generator | None = None
    ) -> int:
        """Apply all buffered events to the index now; returns probes spent.

        A no-op (0) when the index is already in sync.  The harness's
        churn session drains through here at every phase/trial boundary
        (so an unfilled coalesce window cannot leave its bill off the
        books); tests use it to force a deterministic application point.
        """
        if self._indexed_members is None:
            return 0
        return self._flush(make_rng(seed))

    def _flush(self, rng: np.random.Generator) -> int:
        """Apply the *net* buffered membership change to the index.

        Rebuild-policy schemes pay one counted reconstruction over the
        current membership, however many events were buffered — that is
        the whole point of coalescing.  Incremental schemes replay the net
        change through their own :meth:`_leave` / :meth:`_join` hooks:
        departures first (with ``kept_mask`` relative to the indexed
        member order the hooks' per-member arrays are aligned to), then
        arrivals appended behind the survivors.  A node that left and
        rejoined inside the buffer window nets out to nothing — its index
        entries are still valid — and a join-then-leave never touches the
        index at all.  After the flush the member array is the survivors
        (in indexed order) followed by the net arrivals, which keeps
        per-member index arrays aligned with :attr:`members`.
        """
        flushed = self._indexed_members
        assert flushed is not None
        current = self._members
        assert current is not None
        before = self._maintenance_probe_count
        self._in_maintenance = True
        try:
            kept_mask = np.isin(flushed, current)
            survivors = flushed[kept_mask]
            net_left = flushed[~kept_mask]
            net_joined = current[~np.isin(current, flushed)]
            if net_left.size == 0 and net_joined.size == 0:
                # Every buffered event netted out (join-then-leave,
                # leave-then-rejoin): the index is already consistent —
                # pay nothing.  Incremental schemes restore the indexed
                # member order (their per-member arrays are aligned to
                # it); rebuild schemes key their index by node id, so the
                # live order stays — which keeps full and partial flushes
                # on the same member order, hence the same query draws.
                if self.maintenance_policy == "incremental":
                    self._members = flushed
                elif self.supports_partial_flush:
                    self._note_index_current()
            elif self.maintenance_policy == "rebuild":
                if self.supports_partial_flush and self._scheduler.partial_on_query:
                    # Forced flush under lazy-partial: bring only the
                    # still-stale regions up to date — regions a query
                    # already refreshed at this generation are not
                    # rebuilt (or billed) twice.
                    self._refresh_stale_regions()
                else:
                    self.rebuild_count += 1
                    self._build(rng)
            else:
                if net_left.size:
                    self._members = survivors
                    self._leave(net_left, kept_mask, rng)
                if net_joined.size:
                    self._members = np.concatenate([survivors, net_joined])
                    self._join(net_joined, rng)
                else:
                    self._members = survivors
        finally:
            self._in_maintenance = False
        self._indexed_members = None
        # A flush reorders the member array but never changes the member
        # *set* (deferred events updated mask and members in lock-step), so
        # the mask contents stay valid — only re-pin its identity anchor.
        self._member_mask_for = self._members
        self._scheduler.note_flush()
        spent = self._maintenance_probe_count - before
        self._scheduler.ledger.charge_spread(self._pending_event_ids, spent)
        if self._flush_observer is not None and self._pending_event_ids:
            self._flush_observer(tuple(self._pending_event_ids), spent, "flush")
        self._pending_event_ids = []
        self._maintenance_since_query += spent
        return spent

    def _join(self, joined: np.ndarray, rng: np.random.Generator) -> None:
        """Subclass hook: maintain the index after ``joined`` were appended.

        Called with ``self.members`` already updated (arrivals appended at
        the end, in sorted id order).  The default is the counted-rebuild
        fallback: re-run :meth:`_build` with offline probes billed as
        maintenance.
        """
        self.rebuild_count += 1
        self._build(rng)

    def _leave(
        self,
        left: np.ndarray,
        kept_mask: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """Subclass hook: maintain the index after ``left`` were removed.

        ``kept_mask`` is boolean over the *pre-event* member order (order
        is preserved for survivors), so incremental schemes can realign
        per-member arrays.  The default is the counted-rebuild fallback.
        """
        self.rebuild_count += 1
        self._build(rng)

    # -- partial freshness (region-aware lazy maintenance) ---------------------

    @property
    def maintenance_generation(self) -> int:
        """Membership events observed since :meth:`build` (the ledger length).

        Region-keyed schemes derive per-region rng streams from this, so a
        region refreshed on demand at generation ``g`` holds bit-identical
        content to the same region inside a full rebuild at ``g``.
        """
        return self._scheduler.ledger.n_events

    @property
    def partial_mode(self) -> bool:
        """Whether this scheme answers queries from a partially fresh index."""
        return self.supports_partial_flush and self._scheduler.partial_on_query

    @property
    def _partial_pending(self) -> bool:
        return self.partial_mode and self._indexed_members is not None

    def _partial_reset(self) -> None:
        """Hook: forget partial-freshness bookkeeping (called by :meth:`build`)."""

    def _region_is_fresh(self, node: int) -> bool:
        """Hook: whether ``node``'s index region reflects the live membership."""
        raise ConfigurationError(
            f"{self.name} does not support partial flushes"
        )

    def _refresh_region(self, node: int) -> None:
        """Hook: rebuild ``node``'s index region against the current view.

        Called under maintenance accounting; implementations measure
        through :meth:`offline_distances_from` (or the counted maintenance
        helpers) so the region-sized bill is honest.
        """
        raise ConfigurationError(
            f"{self.name} does not support partial flushes"
        )

    def _note_index_current(self) -> None:
        """Hook: declare the whole index fresh without touching content."""
        raise ConfigurationError(
            f"{self.name} does not support partial flushes"
        )

    def _refresh_stale_regions(self) -> None:
        """Region-wise full flush: refresh every stale region, skip fresh ones."""
        for node in self.members:
            node = int(node)
            if not self._region_is_fresh(node):
                self._refresh_region(node)
        self._note_index_current()

    def touch_region(self, node: int) -> int:
        """Refresh one region on demand (the partial-freshness read path).

        Native plans call this immediately before reading a node's region
        (karger-ruhl: its sampled ball hierarchy; tapestry: its routing
        table).  Outside ``lazy-partial`` — or when the region is already
        fresh — this is a cheap no-op.  The region-sized bill is split
        over the pending event ids *without* retiring them: later touches
        (or the eventual full flush) keep charging the same causes until
        the whole index is fresh and the buffer drains.
        """
        if not self._partial_pending or self._region_is_fresh(int(node)):
            return 0
        before = self._maintenance_probe_count
        self._in_maintenance = True
        try:
            self._refresh_region(int(node))
        finally:
            self._in_maintenance = False
        spent = self._maintenance_probe_count - before
        self._scheduler.ledger.charge_spread(self._pending_event_ids, spent)
        if self._flush_observer is not None and spent:
            self._flush_observer(
                tuple(self._pending_event_ids), spent, "partial"
            )
        self._maintenance_since_query += spent
        return spent

    def partial_flush(
        self,
        touched: np.ndarray | Iterable[int],
        seed: int | np.random.Generator | None = None,
    ) -> int:
        """Refresh only the regions of ``touched`` nodes; returns probes spent.

        The public face of the region-aware path: under ``lazy-partial``
        on a supporting scheme this refreshes exactly the stale regions
        among ``touched`` (each a region-sized counted rebuild).  On any
        other discipline — or a scheme without
        :attr:`supports_partial_flush` — it falls back to the full
        :meth:`_flush`, so callers can always use it as "make these reads
        safe now".
        """
        if self._indexed_members is None:
            return 0
        if not self.partial_mode:
            return self._flush(make_rng(seed))
        return sum(self.touch_region(int(node)) for node in touched)

    def query(
        self,
        target: int,
        seed: int | np.random.Generator | None = None,
    ) -> SearchResult:
        """Find the nearest member to ``target`` (not itself a member).

        Under the ``lazy`` discipline a stale index is flushed first (the
        deferred bill lands on this query's ``maintenance_probes``); under
        ``coalesce`` the query answers from the bounded-staleness index —
        it may return a recently departed member or miss a very recent
        arrival, exactly the trade real batched-repair deployments make.
        Under ``lazy-partial`` (on a supporting scheme) nothing is flushed
        up front: the plan refreshes each region as it reads it
        (:meth:`touch_region`), answering from a partially fresh index at
        a region-sized bill instead of a full one.
        """
        if self._oracle is None or self._members is None:
            raise ConfigurationError(f"{self.name}: query() before build()")
        rng = make_rng(seed)
        if self._indexed_members is not None and self._must_flush_on_query:
            self._flush(rng)
        self._probe_count = 0
        self._aux_probe_count = 0
        stale_view = None if self.partial_mode else self._indexed_members
        if stale_view is not None:
            # Answer from the membership the index actually reflects.
            live = self._members
            self._members = stale_view
            try:
                result = self._query(int(target), rng)
            finally:
                self._members = live
        else:
            result = self._query(int(target), rng)
        result.probes = self._probe_count
        result.aux_probes = self._aux_probe_count
        result.maintenance_probes = self._maintenance_since_query
        self._maintenance_since_query = 0
        return result

    @property
    def _must_flush_on_query(self) -> bool:
        """Full flush needed before answering (lazy, or unsupported partial)."""
        return self._scheduler.flush_on_query or (
            self._scheduler.partial_on_query and not self.supports_partial_flush
        )

    @abc.abstractmethod
    def _query(self, target: int, rng: np.random.Generator) -> SearchResult:
        """Subclass hook: the actual search."""

    # -- stepwise query protocol (sans-io) -------------------------------------

    def query_plan(
        self,
        target: int,
        seed: int | np.random.Generator | None = None,
    ) -> QueryPlan:
        """The stepwise counterpart of :meth:`query`.

        Returns a generator that yields probe rounds (``list[ProbeOp]``)
        and finally returns the :class:`SearchResult` through
        ``StopIteration.value``.  Each round is a parallel fan-out whose
        measurements have *already been taken* through the counted probe
        channel; the driver decides when the round "completes" — after the
        simulated RTTs on the daemon's event loop, or immediately for an
        instantaneous driver.  Driving a fresh plan to exhaustion with no
        delay reproduces :meth:`query` bit for bit (same rng draws, same
        probes, same result) — the daemon's zero-delay regression anchors
        on this.

        Lazy-discipline flushes fire when the plan *starts* (its first
        ``send(None)``), mirroring the blocking query; under ``coalesce``
        the plan answers from the bounded-staleness indexed view.  The
        plan snapshots that member view once and re-presents it on every
        step, so a daemon whose membership churns mid-flight gives each
        in-flight query a consistent membership.
        """
        if self._oracle is None or self._members is None:
            raise ConfigurationError(f"{self.name}: query_plan() before build()")
        return self._drive_plan(int(target), make_rng(seed))

    def _drive_plan(self, target: int, rng: np.random.Generator) -> QueryPlan:
        """Wrap :meth:`_plan` with the bookkeeping :meth:`query` performs.

        Per-plan probe counters are swapped into the shared slots around
        every generator step, so concurrently in-flight plans (the daemon
        interleaves them on one event loop) each keep an exact private
        bill; likewise the plan's member view is swapped in so a step
        never sees a membership newer than its snapshot.
        """
        if self._indexed_members is not None and self._must_flush_on_query:
            self._flush(rng)
        if self.partial_mode:
            # Partial freshness answers from the *live* membership — the
            # regions the plan touches are refreshed against it on demand.
            view = self._members
        else:
            view = (
                self._indexed_members
                if self._indexed_members is not None
                else self._members
            )
        inner = self._plan(target, rng)
        probes = 0
        aux = 0
        result: SearchResult | None = None
        sent = None
        while True:
            live = self._members
            saved_probes, saved_aux = self._probe_count, self._aux_probe_count
            self._members = view
            self._probe_count, self._aux_probe_count = probes, aux
            try:
                batch = inner.send(sent)
            except StopIteration as stop:
                result = stop.value
                break
            finally:
                probes, aux = self._probe_count, self._aux_probe_count
                self._members = live
                self._probe_count, self._aux_probe_count = saved_probes, saved_aux
            # A fault-aware driver answers each round with a per-probe
            # outcome mask (None means every probe was answered); forward
            # it into the plan so schemes can degrade to the survivors.
            sent = yield batch
        if result is None:
            raise ConfigurationError(
                f"{self.name}: query plan finished without a SearchResult"
            )
        result.probes = probes
        result.aux_probes = aux
        result.maintenance_probes = self._maintenance_since_query
        self._maintenance_since_query = 0
        return result

    def _plan(self, target: int, rng: np.random.Generator) -> QueryPlan:
        """Subclass hook: the stepwise search (generator).

        Converted schemes override this with a native multi-round plan —
        one ``yield`` per probe fan-out, issuing the *same* probe calls in
        the same order as the blocking search — and derive ``_query`` from
        it via :meth:`_query_via_plan`, so the two code paths cannot
        drift.

        The default is the generic record-and-replay adapter for
        unconverted schemes: it runs the blocking :meth:`_query` eagerly
        (probes/noise/rng consumed exactly as a direct query would), with
        every probe-channel call recorded as one round, then replays the
        recorded rounds stepwise.  The timing a driver derives from the
        replay is faithful — each blocking ``probe_many`` *was* one
        parallel fan-out — but all measurements are taken at plan start
        rather than spread over the rounds, so a stateful noisy oracle is
        consumed up front.  Native plans interleave measurement with the
        rounds and should be preferred for schemes whose round structure
        matters.
        """
        recorder: list[ProbeRound] = []
        if self._plan_recorder is not None:
            raise ConfigurationError(
                f"{self.name}: recording plans cannot nest"
            )
        self._plan_recorder = recorder
        try:
            result = self._query(target, rng)
        finally:
            self._plan_recorder = None
        for batch in recorder:
            yield batch
        return result

    def _query_via_plan(
        self, target: int, rng: np.random.Generator
    ) -> SearchResult:
        """Run a native :meth:`_plan` to completion with no delays.

        Converted schemes implement ``_query`` as exactly this call, which
        is what makes zero-delay plan driving bit-identical to the
        blocking query: they are the same code.
        """
        plan = self._plan(target, rng)
        try:
            while True:
                plan.send(None)
        except StopIteration as stop:
            return stop.value

    # -- probing --------------------------------------------------------------

    @property
    def members(self) -> np.ndarray:
        if self._members is None:
            raise ConfigurationError(f"{self.name}: not built yet")
        return self._members

    @property
    def oracle(self) -> LatencyOracle:
        if self._oracle is None:
            raise ConfigurationError(f"{self.name}: not built yet")
        return self._oracle

    def probe(self, node: int, target: int) -> float:
        """Measure RTT between a member and the target (counted, noisy)."""
        self._probe_count += 1
        assert self._probe_oracle is not None
        value = self._probe_oracle.latency_ms(node, target)
        if self._plan_recorder is not None:
            self._plan_recorder.append(
                ProbeRound([int(node)], int(target), [float(value)])
            )
        return value

    def probe_many(
        self, nodes: np.ndarray | list[int], target: int
    ) -> np.ndarray:
        """Measure RTTs from each of ``nodes`` to the target, batched.

        Accounting and measurement direction are exact: one probe per
        element, measured as ``latency_ms(node, target)`` — identical to
        calling :meth:`probe` in a loop even for asymmetric oracles.  Uses
        the oracle's vectorised fast path when available, with the scalar
        fallback otherwise.
        """
        nodes = np.asarray(nodes, dtype=int)
        if nodes.size == 0:
            return np.empty(0, dtype=float)
        return self.probe_block(nodes, [int(target)])[:, 0]

    def probe_block(
        self, rows: np.ndarray | list[int], cols: np.ndarray | list[int]
    ) -> np.ndarray:
        """Counted batched block of query-time measurements.

        The single batch analogue of :meth:`probe`: every probe-counting
        batch path (including the Meridian proxy oracle) funnels through
        here, so the accounting rule lives in one place.
        """
        rows = np.asarray(rows, dtype=int)
        cols = np.asarray(cols, dtype=int)
        if rows.size == 0 or cols.size == 0:
            return np.empty((rows.size, cols.size), dtype=float)
        self._probe_count += int(rows.size * cols.size)
        assert self._probe_oracle is not None
        block = batch_latency_block(self._probe_oracle, rows, cols)
        if self._plan_recorder is not None:
            # Row-major flattening matches the historical per-op order.
            self._plan_recorder.append(
                ProbeRound(
                    np.repeat(rows, cols.size),
                    np.tile(cols, rows.size),
                    block.ravel(),
                )
            )
        return block

    def aux_probe(self, a: int, b: int) -> float:
        """Measure RTT between two non-target nodes at query time.

        Counted separately from target probes (the paper's lower bound is
        about target measurements), e.g. beacon-to-beacon traffic a query
        triggers.
        """
        self._aux_probe_count += 1
        assert self._probe_oracle is not None
        value = self._probe_oracle.latency_ms(a, b)
        if self._plan_recorder is not None:
            self._plan_recorder.append(
                ProbeRound([int(a)], [int(b)], [float(value)], kind="aux")
            )
        return value

    def aux_probe_many(
        self, a: int, nodes: np.ndarray | list[int]
    ) -> np.ndarray:
        """Measure RTTs from ``a`` to each of ``nodes``, batched.

        The aux counterpart of :meth:`probe_many`: one aux probe counted
        per element.
        """
        nodes = np.asarray(nodes, dtype=int)
        if nodes.size == 0:
            return np.empty(0, dtype=float)
        self._aux_probe_count += int(nodes.size)
        assert self._probe_oracle is not None
        values = batch_latencies_from(self._probe_oracle, int(a), nodes)
        if self._plan_recorder is not None:
            self._plan_recorder.append(
                ProbeRound(np.full(nodes.size, int(a)), nodes, values, kind="aux")
            )
        return values

    def offline_distances_from(self, node: int) -> np.ndarray:
        """RTTs from ``node`` to every member, for *build/maintenance* use.

        Uses the oracle's vectorised fast path when it exposes one.  Not
        counted as query probes — index construction is the offline phase.
        During a :meth:`join` / :meth:`leave` event the same measurements
        are billed as maintenance, which is how the counted-rebuild
        fallback prices a full rebuild.
        """
        if self._in_maintenance:
            self._maintenance_probe_count += int(self.members.size)
        return batch_latencies_from(self.oracle, int(node), self.members)

    def offline_probe_many(
        self, node: int, nodes: np.ndarray | list[int]
    ) -> np.ndarray:
        """Build/maintenance RTTs from ``node`` to arbitrary ``nodes``.

        The free-target sibling of :meth:`offline_distances_from`: offline
        during :meth:`build`, billed as maintenance when the same code
        re-runs inside a join/leave/flush.  Build-path helpers (e.g. the
        Meridian overlay constructor) take this as their probe callable so
        their measurements stay on the books.
        """
        nodes = np.asarray(nodes, dtype=int)
        if nodes.size == 0:
            return np.empty(0, dtype=float)
        if self._in_maintenance:
            self._maintenance_probe_count += int(nodes.size)
        return batch_latencies_from(self.oracle, int(node), nodes)

    def offline_probe_block(
        self, rows: np.ndarray | list[int], cols: np.ndarray | list[int]
    ) -> np.ndarray:
        """Build/maintenance RTT block — the batched form of
        :meth:`offline_probe_many`, billed under the same rule."""
        rows = np.asarray(rows, dtype=int)
        cols = np.asarray(cols, dtype=int)
        if rows.size == 0 or cols.size == 0:
            return np.empty((rows.size, cols.size), dtype=float)
        if self._in_maintenance:
            self._maintenance_probe_count += int(rows.size * cols.size)
        return batch_latency_block(self.oracle, rows, cols)

    # -- maintenance accounting ----------------------------------------------

    @property
    def maintenance_probes_total(self) -> int:
        """All maintenance measurements since :meth:`build` (cumulative)."""
        return self._maintenance_probe_count

    @property
    def unclaimed_maintenance_probes(self) -> int:
        """Maintenance accrued since the last query claimed its bill.

        The next :meth:`query` / finished :meth:`query_plan` reports this
        on its ``maintenance_probes`` and zeroes it; the daemon reads it
        at shutdown so maintenance that lands after the final answer stays
        on the books.
        """
        return self._maintenance_since_query

    @property
    def maintenance_ledger(self) -> MaintenanceLedger:
        """The exact per-cause probe ledger (see :class:`MaintenanceLedger`)."""
        return self._scheduler.ledger

    @property
    def maintenance_by_event(self) -> np.ndarray:
        """Exact per-membership-event maintenance bills, indexed by event id.

        Event ids are allocated in observation order (one per non-empty
        :meth:`join` / :meth:`leave` since :meth:`build`), so this array
        lines up 1:1 with the daemon's membership-event sequence.  Unlike
        the per-query ``maintenance_probes`` claim — which depends on
        which in-flight query finishes first — these bills are invariant
        to scheduling order, stepper choice and shard layout.
        """
        return self._scheduler.ledger.bills()

    @property
    def maintenance_background_probes(self) -> int:
        """Maintenance probes with no membership-event cause (e.g. ring repair)."""
        return self._scheduler.ledger.background

    def maintenance_probe(self, a: int, b: int) -> float:
        """One counted maintenance measurement (overlay-internal RTT).

        Maintenance measures through the *build* oracle — ring repair and
        index splicing are overlay-internal traffic, like construction —
        but unlike construction every measurement is billed, because churn
        maintenance is an online, recurring cost.
        """
        self._maintenance_probe_count += 1
        return self.oracle.latency_ms(int(a), int(b))

    def maintenance_probe_many(
        self, a: int, nodes: np.ndarray | list[int]
    ) -> np.ndarray:
        """Counted maintenance RTTs from ``a`` to each of ``nodes``, batched."""
        nodes = np.asarray(nodes, dtype=int)
        if nodes.size == 0:
            return np.empty(0, dtype=float)
        self._maintenance_probe_count += int(nodes.size)
        return batch_latencies_from(self.oracle, int(a), nodes)

    def maintenance_probe_block(
        self, rows: np.ndarray | list[int], cols: np.ndarray | list[int]
    ) -> np.ndarray:
        """Counted maintenance RTT block (one probe per element)."""
        rows = np.asarray(rows, dtype=int)
        cols = np.asarray(cols, dtype=int)
        if rows.size == 0 or cols.size == 0:
            return np.empty((rows.size, cols.size), dtype=float)
        self._maintenance_probe_count += int(rows.size * cols.size)
        return batch_latency_block(self.oracle, rows, cols)

    def _offer_round(
        self,
        nodes,
        target: int,
        values,
        kind: str = "probe",
    ):
        """Yield one probe fan-out and apply the driver's outcome mask.

        Native plans use this as
        ``kept, vals, idx = yield from self._offer_round(nodes, t, vals)``.
        The driver may answer the ``yield`` with a boolean mask saying
        which probes were actually answered (``None`` — every blocking
        query and every fault-free daemon round — means all of them).
        Returns the surviving ``(nodes, values, indices)``: the node ids
        whose measurements arrived, their values, and their positions in
        the offered round — so a scheme can keep aligned side tables
        (e.g. beaconing's distance-table rows) consistent with what it
        actually learned.
        """
        values = np.asarray(values, dtype=float)
        mask = yield probe_round(nodes, target, values, kind)
        node_list = [int(n) for n in nodes]
        if mask is None:
            return node_list, values, np.arange(len(node_list))
        mask = np.asarray(mask, dtype=bool)
        if mask.size != len(node_list):
            raise ConfigurationError(
                f"{self.name}: round mask size {mask.size} != "
                f"{len(node_list)} probes"
            )
        kept = [n for n, ok in zip(node_list, mask.tolist()) if ok]
        return kept, values[mask], np.flatnonzero(mask)

    def no_answer(self, target: int) -> SearchResult:
        """The failure sentinel: every probe this plan issued was lost.

        Only reachable under an active fault model (a blocking query's
        rounds are never masked).  The daemon treats it as "retry this
        query after a backoff" and keeps the failed attempt's probe bill.
        """
        return SearchResult(
            target=target,
            found=-1,
            found_latency_ms=float("inf"),
            probes=self._probe_count,
            aux_probes=self._aux_probe_count,
        )

    def result(
        self,
        target: int,
        measured: dict[int, float],
        hops: int = 0,
        path: list[int] | None = None,
    ) -> SearchResult:
        """Build a result from the probe log (found = argmin)."""
        if not measured:
            raise ConfigurationError(f"{self.name}: query probed nothing")
        found = min(measured, key=measured.get)
        return SearchResult(
            target=target,
            found=found,
            found_latency_ms=measured[found],
            probes=self._probe_count,
            aux_probes=self._aux_probe_count,
            hops=hops,
            path=path or [],
        )
