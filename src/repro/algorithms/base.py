"""The common interface all nearest-peer algorithms implement."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.topology.oracle import (
    LatencyOracle,
    batch_latencies_from,
    batch_latency_block,
)
from repro.util.errors import ConfigurationError
from repro.util.rng import make_rng


#: Membership-maintenance policies a scheme can declare (class attribute
#: ``NearestPeerAlgorithm.maintenance_policy``).  ``incremental`` means
#: :meth:`NearestPeerAlgorithm.join` / :meth:`~NearestPeerAlgorithm.leave`
#: patch the existing index in place (cost proportional to the event);
#: ``rebuild`` means every membership event re-runs the full offline build
#: with its probes counted, so the maintenance bill is honest the same way
#: the query probe bill is.
MAINTENANCE_POLICIES = ("incremental", "rebuild")


@dataclass
class SearchResult:
    """Outcome of one nearest-peer search.

    ``probes`` counts latency measurements involving the target — the
    paper's cost metric ("this translates to a lower bound on the number of
    latency probes performed").  ``aux_probes`` counts other measurements
    the query triggered (e.g. beacon-to-beacon).  ``maintenance_probes``
    counts the membership-maintenance measurements (join/leave index
    updates or counted rebuilds) accrued since the previous query — zero
    under a static membership.
    """

    target: int
    found: int
    found_latency_ms: float
    probes: int
    aux_probes: int = 0
    maintenance_probes: int = 0
    hops: int = 0
    path: list[int] = field(default_factory=list)


class NearestPeerAlgorithm(abc.ABC):
    """A nearest-peer search scheme over a dynamic member population.

    Lifecycle: construct with parameters, :meth:`build` once over the
    initial member set (this may take offline measurements — ring
    construction, coordinate embedding, hierarchy building), then
    :meth:`query` many times, interleaved with :meth:`join` /
    :meth:`leave` membership events.  Queries must only learn about the
    target through ``self.probe`` so the probe accounting is honest;
    membership maintenance must measure only through the maintenance
    helpers (:meth:`maintenance_probe_many` and friends, or — for
    rebuild-policy schemes — the flagged :meth:`offline_distances_from`)
    so maintenance cost is honest too.

    Each scheme declares its ``maintenance_policy`` (see
    :data:`MAINTENANCE_POLICIES`): ``incremental`` schemes patch their
    index per event, ``rebuild`` schemes re-run the full build per event
    with every probe counted (``rebuild_count`` tracks how often).
    """

    #: Human-readable scheme name (class attribute).
    name: str = "abstract"
    #: Declared membership-maintenance policy (class attribute).
    maintenance_policy: str = "rebuild"

    def __init__(self) -> None:
        self._oracle: LatencyOracle | None = None
        self._probe_oracle: LatencyOracle | None = None
        self._members: np.ndarray | None = None
        self._probe_count = 0
        self._aux_probe_count = 0
        self._maintenance_probe_count = 0
        self._maintenance_since_query = 0
        self._in_maintenance = False
        self.rebuild_count = 0

    # -- lifecycle -----------------------------------------------------------

    def build(
        self,
        oracle: LatencyOracle,
        member_ids: np.ndarray | list[int],
        seed: int | np.random.Generator | None = None,
        probe_oracle: LatencyOracle | None = None,
    ) -> None:
        """Index the member population (may probe freely: offline phase).

        ``probe_oracle`` supplies *query-time* measurements; pass a
        :class:`~repro.topology.oracle.NoisyOracle` to model the fact that
        real probes cannot resolve sub-millisecond differences — the honest
        setting for comparing schemes under the clustering condition
        (beacon triangulation, for one, is unrealistically sharp on exact
        latencies).
        """
        self._oracle = oracle
        self._probe_oracle = probe_oracle or oracle
        self._members = np.asarray(member_ids, dtype=int)
        self._build(make_rng(seed))

    @abc.abstractmethod
    def _build(self, rng: np.random.Generator) -> None:
        """Subclass hook: construct internal structures."""

    def join(
        self,
        node_ids: np.ndarray | list[int],
        seed: int | np.random.Generator | None = None,
    ) -> int:
        """Admit ``node_ids`` into the membership; returns probes spent.

        The new ids must not already be members.  Maintenance follows the
        scheme's declared :attr:`maintenance_policy`: incremental schemes
        splice the arrivals into the existing index, rebuild schemes
        re-run the offline build over the grown membership with every
        probe counted.  The returned count (also accumulated on
        :attr:`maintenance_probes_total` and reported on the next query's
        :attr:`SearchResult.maintenance_probes`) is the event's
        measurement bill.
        """
        if self._oracle is None or self._members is None:
            raise ConfigurationError(f"{self.name}: join() before build()")
        joined = np.unique(np.asarray(node_ids, dtype=int))
        if joined.size == 0:
            return 0
        if np.isin(joined, self._members).any():
            dup = joined[np.isin(joined, self._members)]
            raise ConfigurationError(
                f"{self.name}: join() ids already members: {dup.tolist()[:8]}"
            )
        if joined.min() < 0 or joined.max() >= self._oracle.n_nodes:
            raise ConfigurationError(
                f"{self.name}: join() ids outside oracle range "
                f"[0, {self._oracle.n_nodes})"
            )
        before = self._maintenance_probe_count
        self._members = np.concatenate([self._members, joined])
        self._in_maintenance = True
        try:
            self._join(joined, make_rng(seed))
        finally:
            self._in_maintenance = False
        spent = self._maintenance_probe_count - before
        self._maintenance_since_query += spent
        return spent

    def leave(
        self,
        node_ids: np.ndarray | list[int],
        seed: int | np.random.Generator | None = None,
    ) -> int:
        """Remove ``node_ids`` from the membership; returns probes spent.

        Every id must currently be a member, and at least two members must
        remain (schemes like Meridian need a non-degenerate overlay).  The
        per-policy maintenance and accounting mirror :meth:`join`.
        """
        if self._oracle is None or self._members is None:
            raise ConfigurationError(f"{self.name}: leave() before build()")
        left = np.unique(np.asarray(node_ids, dtype=int))
        if left.size == 0:
            return 0
        missing = left[~np.isin(left, self._members)]
        if missing.size:
            raise ConfigurationError(
                f"{self.name}: leave() ids not members: {missing.tolist()[:8]}"
            )
        kept_mask = ~np.isin(self._members, left)
        if int(kept_mask.sum()) < 2:
            raise ConfigurationError(
                f"{self.name}: leave() would drop membership below 2 "
                f"({int(kept_mask.sum())} would remain)"
            )
        before = self._maintenance_probe_count
        self._members = self._members[kept_mask]
        self._in_maintenance = True
        try:
            self._leave(left, kept_mask, make_rng(seed))
        finally:
            self._in_maintenance = False
        spent = self._maintenance_probe_count - before
        self._maintenance_since_query += spent
        return spent

    def _join(self, joined: np.ndarray, rng: np.random.Generator) -> None:
        """Subclass hook: maintain the index after ``joined`` were appended.

        Called with ``self.members`` already updated (arrivals appended at
        the end, in sorted id order).  The default is the counted-rebuild
        fallback: re-run :meth:`_build` with offline probes billed as
        maintenance.
        """
        self.rebuild_count += 1
        self._build(rng)

    def _leave(
        self,
        left: np.ndarray,
        kept_mask: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """Subclass hook: maintain the index after ``left`` were removed.

        ``kept_mask`` is boolean over the *pre-event* member order (order
        is preserved for survivors), so incremental schemes can realign
        per-member arrays.  The default is the counted-rebuild fallback.
        """
        self.rebuild_count += 1
        self._build(rng)

    def query(
        self,
        target: int,
        seed: int | np.random.Generator | None = None,
    ) -> SearchResult:
        """Find the nearest member to ``target`` (not itself a member)."""
        if self._oracle is None or self._members is None:
            raise ConfigurationError(f"{self.name}: query() before build()")
        self._probe_count = 0
        self._aux_probe_count = 0
        rng = make_rng(seed)
        result = self._query(int(target), rng)
        result.probes = self._probe_count
        result.aux_probes = self._aux_probe_count
        result.maintenance_probes = self._maintenance_since_query
        self._maintenance_since_query = 0
        return result

    @abc.abstractmethod
    def _query(self, target: int, rng: np.random.Generator) -> SearchResult:
        """Subclass hook: the actual search."""

    # -- probing --------------------------------------------------------------

    @property
    def members(self) -> np.ndarray:
        if self._members is None:
            raise ConfigurationError(f"{self.name}: not built yet")
        return self._members

    @property
    def oracle(self) -> LatencyOracle:
        if self._oracle is None:
            raise ConfigurationError(f"{self.name}: not built yet")
        return self._oracle

    def probe(self, node: int, target: int) -> float:
        """Measure RTT between a member and the target (counted, noisy)."""
        self._probe_count += 1
        assert self._probe_oracle is not None
        return self._probe_oracle.latency_ms(node, target)

    def probe_many(
        self, nodes: np.ndarray | list[int], target: int
    ) -> np.ndarray:
        """Measure RTTs from each of ``nodes`` to the target, batched.

        Accounting and measurement direction are exact: one probe per
        element, measured as ``latency_ms(node, target)`` — identical to
        calling :meth:`probe` in a loop even for asymmetric oracles.  Uses
        the oracle's vectorised fast path when available, with the scalar
        fallback otherwise.
        """
        nodes = np.asarray(nodes, dtype=int)
        if nodes.size == 0:
            return np.empty(0, dtype=float)
        return self.probe_block(nodes, [int(target)])[:, 0]

    def probe_block(
        self, rows: np.ndarray | list[int], cols: np.ndarray | list[int]
    ) -> np.ndarray:
        """Counted batched block of query-time measurements.

        The single batch analogue of :meth:`probe`: every probe-counting
        batch path (including the Meridian proxy oracle) funnels through
        here, so the accounting rule lives in one place.
        """
        rows = np.asarray(rows, dtype=int)
        cols = np.asarray(cols, dtype=int)
        if rows.size == 0 or cols.size == 0:
            return np.empty((rows.size, cols.size), dtype=float)
        self._probe_count += int(rows.size * cols.size)
        assert self._probe_oracle is not None
        return batch_latency_block(self._probe_oracle, rows, cols)

    def aux_probe(self, a: int, b: int) -> float:
        """Measure RTT between two non-target nodes at query time.

        Counted separately from target probes (the paper's lower bound is
        about target measurements), e.g. beacon-to-beacon traffic a query
        triggers.
        """
        self._aux_probe_count += 1
        assert self._probe_oracle is not None
        return self._probe_oracle.latency_ms(a, b)

    def aux_probe_many(
        self, a: int, nodes: np.ndarray | list[int]
    ) -> np.ndarray:
        """Measure RTTs from ``a`` to each of ``nodes``, batched.

        The aux counterpart of :meth:`probe_many`: one aux probe counted
        per element.
        """
        nodes = np.asarray(nodes, dtype=int)
        if nodes.size == 0:
            return np.empty(0, dtype=float)
        self._aux_probe_count += int(nodes.size)
        assert self._probe_oracle is not None
        return batch_latencies_from(self._probe_oracle, int(a), nodes)

    def offline_distances_from(self, node: int) -> np.ndarray:
        """RTTs from ``node`` to every member, for *build/maintenance* use.

        Uses the oracle's vectorised fast path when it exposes one.  Not
        counted as query probes — index construction is the offline phase.
        During a :meth:`join` / :meth:`leave` event the same measurements
        are billed as maintenance, which is how the counted-rebuild
        fallback prices a full rebuild.
        """
        if self._in_maintenance:
            self._maintenance_probe_count += int(self.members.size)
        return batch_latencies_from(self.oracle, int(node), self.members)

    # -- maintenance accounting ----------------------------------------------

    @property
    def maintenance_probes_total(self) -> int:
        """All maintenance measurements since :meth:`build` (cumulative)."""
        return self._maintenance_probe_count

    def maintenance_probe(self, a: int, b: int) -> float:
        """One counted maintenance measurement (overlay-internal RTT).

        Maintenance measures through the *build* oracle — ring repair and
        index splicing are overlay-internal traffic, like construction —
        but unlike construction every measurement is billed, because churn
        maintenance is an online, recurring cost.
        """
        self._maintenance_probe_count += 1
        return self.oracle.latency_ms(int(a), int(b))

    def maintenance_probe_many(
        self, a: int, nodes: np.ndarray | list[int]
    ) -> np.ndarray:
        """Counted maintenance RTTs from ``a`` to each of ``nodes``, batched."""
        nodes = np.asarray(nodes, dtype=int)
        if nodes.size == 0:
            return np.empty(0, dtype=float)
        self._maintenance_probe_count += int(nodes.size)
        return batch_latencies_from(self.oracle, int(a), nodes)

    def maintenance_probe_block(
        self, rows: np.ndarray | list[int], cols: np.ndarray | list[int]
    ) -> np.ndarray:
        """Counted maintenance RTT block (one probe per element)."""
        rows = np.asarray(rows, dtype=int)
        cols = np.asarray(cols, dtype=int)
        if rows.size == 0 or cols.size == 0:
            return np.empty((rows.size, cols.size), dtype=float)
        self._maintenance_probe_count += int(rows.size * cols.size)
        return batch_latency_block(self.oracle, rows, cols)

    def result(
        self,
        target: int,
        measured: dict[int, float],
        hops: int = 0,
        path: list[int] | None = None,
    ) -> SearchResult:
        """Build a result from the probe log (found = argmin)."""
        if not measured:
            raise ConfigurationError(f"{self.name}: query probed nothing")
        found = min(measured, key=measured.get)
        return SearchResult(
            target=target,
            found=found,
            found_latency_ms=measured[found],
            probes=self._probe_count,
            aux_probes=self._aux_probe_count,
            hops=hops,
            path=path or [],
        )
