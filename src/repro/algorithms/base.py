"""The common interface all nearest-peer algorithms implement."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.topology.oracle import (
    LatencyOracle,
    batch_latencies_from,
    batch_latency_block,
)
from repro.util.errors import ConfigurationError
from repro.util.rng import make_rng


@dataclass
class SearchResult:
    """Outcome of one nearest-peer search.

    ``probes`` counts latency measurements involving the target — the
    paper's cost metric ("this translates to a lower bound on the number of
    latency probes performed").  ``aux_probes`` counts other measurements
    the query triggered (e.g. beacon-to-beacon).
    """

    target: int
    found: int
    found_latency_ms: float
    probes: int
    aux_probes: int = 0
    hops: int = 0
    path: list[int] = field(default_factory=list)


class NearestPeerAlgorithm(abc.ABC):
    """A nearest-peer search scheme over a fixed member population.

    Lifecycle: construct with parameters, :meth:`build` once over the member
    set (this may take offline measurements — ring construction, coordinate
    embedding, hierarchy building), then :meth:`query` many times.  Queries
    must only learn about the target through ``self.probe`` so the probe
    accounting is honest.
    """

    #: Human-readable scheme name (class attribute).
    name: str = "abstract"

    def __init__(self) -> None:
        self._oracle: LatencyOracle | None = None
        self._probe_oracle: LatencyOracle | None = None
        self._members: np.ndarray | None = None
        self._probe_count = 0
        self._aux_probe_count = 0

    # -- lifecycle -----------------------------------------------------------

    def build(
        self,
        oracle: LatencyOracle,
        member_ids: np.ndarray | list[int],
        seed: int | np.random.Generator | None = None,
        probe_oracle: LatencyOracle | None = None,
    ) -> None:
        """Index the member population (may probe freely: offline phase).

        ``probe_oracle`` supplies *query-time* measurements; pass a
        :class:`~repro.topology.oracle.NoisyOracle` to model the fact that
        real probes cannot resolve sub-millisecond differences — the honest
        setting for comparing schemes under the clustering condition
        (beacon triangulation, for one, is unrealistically sharp on exact
        latencies).
        """
        self._oracle = oracle
        self._probe_oracle = probe_oracle or oracle
        self._members = np.asarray(member_ids, dtype=int)
        self._build(make_rng(seed))

    @abc.abstractmethod
    def _build(self, rng: np.random.Generator) -> None:
        """Subclass hook: construct internal structures."""

    def query(
        self,
        target: int,
        seed: int | np.random.Generator | None = None,
    ) -> SearchResult:
        """Find the nearest member to ``target`` (not itself a member)."""
        if self._oracle is None or self._members is None:
            raise ConfigurationError(f"{self.name}: query() before build()")
        self._probe_count = 0
        self._aux_probe_count = 0
        rng = make_rng(seed)
        result = self._query(int(target), rng)
        result.probes = self._probe_count
        result.aux_probes = self._aux_probe_count
        return result

    @abc.abstractmethod
    def _query(self, target: int, rng: np.random.Generator) -> SearchResult:
        """Subclass hook: the actual search."""

    # -- probing --------------------------------------------------------------

    @property
    def members(self) -> np.ndarray:
        if self._members is None:
            raise ConfigurationError(f"{self.name}: not built yet")
        return self._members

    @property
    def oracle(self) -> LatencyOracle:
        if self._oracle is None:
            raise ConfigurationError(f"{self.name}: not built yet")
        return self._oracle

    def probe(self, node: int, target: int) -> float:
        """Measure RTT between a member and the target (counted, noisy)."""
        self._probe_count += 1
        assert self._probe_oracle is not None
        return self._probe_oracle.latency_ms(node, target)

    def probe_many(
        self, nodes: np.ndarray | list[int], target: int
    ) -> np.ndarray:
        """Measure RTTs from each of ``nodes`` to the target, batched.

        Accounting and measurement direction are exact: one probe per
        element, measured as ``latency_ms(node, target)`` — identical to
        calling :meth:`probe` in a loop even for asymmetric oracles.  Uses
        the oracle's vectorised fast path when available, with the scalar
        fallback otherwise.
        """
        nodes = np.asarray(nodes, dtype=int)
        if nodes.size == 0:
            return np.empty(0, dtype=float)
        return self.probe_block(nodes, [int(target)])[:, 0]

    def probe_block(
        self, rows: np.ndarray | list[int], cols: np.ndarray | list[int]
    ) -> np.ndarray:
        """Counted batched block of query-time measurements.

        The single batch analogue of :meth:`probe`: every probe-counting
        batch path (including the Meridian proxy oracle) funnels through
        here, so the accounting rule lives in one place.
        """
        rows = np.asarray(rows, dtype=int)
        cols = np.asarray(cols, dtype=int)
        if rows.size == 0 or cols.size == 0:
            return np.empty((rows.size, cols.size), dtype=float)
        self._probe_count += int(rows.size * cols.size)
        assert self._probe_oracle is not None
        return batch_latency_block(self._probe_oracle, rows, cols)

    def aux_probe(self, a: int, b: int) -> float:
        """Measure RTT between two non-target nodes at query time.

        Counted separately from target probes (the paper's lower bound is
        about target measurements), e.g. beacon-to-beacon traffic a query
        triggers.
        """
        self._aux_probe_count += 1
        assert self._probe_oracle is not None
        return self._probe_oracle.latency_ms(a, b)

    def aux_probe_many(
        self, a: int, nodes: np.ndarray | list[int]
    ) -> np.ndarray:
        """Measure RTTs from ``a`` to each of ``nodes``, batched.

        The aux counterpart of :meth:`probe_many`: one aux probe counted
        per element.
        """
        nodes = np.asarray(nodes, dtype=int)
        if nodes.size == 0:
            return np.empty(0, dtype=float)
        self._aux_probe_count += int(nodes.size)
        assert self._probe_oracle is not None
        return batch_latencies_from(self._probe_oracle, int(a), nodes)

    def offline_distances_from(self, node: int) -> np.ndarray:
        """RTTs from ``node`` to every member, for *build-time* use only.

        Uses the oracle's vectorised fast path when it exposes one.  Not
        counted as query probes — index construction is the offline phase.
        """
        return batch_latencies_from(self.oracle, int(node), self.members)

    def result(
        self,
        target: int,
        measured: dict[int, float],
        hops: int = 0,
        path: list[int] | None = None,
    ) -> SearchResult:
        """Build a result from the probe log (found = argmin)."""
        if not measured:
            raise ConfigurationError(f"{self.name}: query probed nothing")
        found = min(measured, key=measured.get)
        return SearchResult(
            target=target,
            found=found,
            found_latency_ms=measured[found],
            probes=self._probe_count,
            aux_probes=self._aux_probe_count,
            hops=hops,
            path=path or [],
        )
