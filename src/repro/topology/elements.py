"""Record types for routers, hosts, end-networks, PoPs and ISPs.

These are plain dataclasses — the router-level topology in
:mod:`repro.topology.graph` stores parallel arrays for the hot paths and
these records for everything that needs names, kinds and metadata (the
measurement pipelines mostly consume records).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class RouterKind(enum.Enum):
    """Role of a router in the last-hop hierarchy of Figure 1."""

    POP = "pop"  # a router inside an ISP point-of-presence (the cluster-hub)
    AGGREGATION = "aggregation"  # between end-networks and the PoP
    EDGE = "edge"  # inside an end-network (campus/LAN routers)
    CORE = "core"  # ISP backbone
    IXP = "ixp"  # inter-ISP peering point


class HostKind(enum.Enum):
    """What a simulated host is used for in the measurement study."""

    PEER = "peer"  # an Azureus-like P2P client
    DNS_SERVER = "dns"  # a recursive DNS server (Section 3.1)
    VANTAGE = "vantage"  # a PlanetLab-like vantage point (Table 1)
    MEASUREMENT = "measurement"  # the single rockettrace measurement host


@dataclass(frozen=True)
class IspRecord:
    """An ISP owning PoPs and an address block."""

    isp_id: int
    name: str
    as_number: int


@dataclass(frozen=True)
class PopRecord:
    """A point of presence: the star-center of Figure 1.

    A PoP is the *cluster-hub* of the paper's clustering condition; its
    router set shares one AS and city, which is exactly the heuristic
    rockettrace-based PoP identification relies on (Section 3.1).
    """

    pop_id: int
    isp_id: int
    city: str
    router_ids: tuple[int, ...]
    x: float  # geographic embedding, in one-way-ms units
    y: float


@dataclass(frozen=True)
class RouterRecord:
    """A router with rockettrace-visible annotations."""

    router_id: int
    kind: RouterKind
    isp_id: int
    pop_id: int | None  # None for CORE/IXP routers
    as_name: str
    city: str
    dns_name: str  # what rockettrace sees; may be misconfigured

    def annotation(self) -> tuple[str, str]:
        """The (AS, city) pair rockettrace infers from the router name."""
        return self.as_name, self.city


@dataclass(frozen=True)
class EndNetworkRecord:
    """An end-network: LAN / extended LAN / campus network.

    ``hub_latency_ms`` is the round-trip latency from hosts in this network
    to the PoP router it is served by, i.e. the quantity the paper's
    clustering condition constrains to be "about the same" across the
    cluster's end-networks.
    """

    en_id: int
    pop_id: int
    isp_id: int
    organization: str  # owning org; DNS servers of the org share a domain
    hub_latency_ms: float
    attachment_router_ids: tuple[int, ...]  # EN gateway .. up to PoP router
    attachment_latencies_ms: tuple[float, ...]  # per-link RTT contributions
    prefix_base: int  # first address of the EN's CIDR block
    prefix_length: int
    is_home_network: bool = False  # singleton broadband/DSL attachment


@dataclass(frozen=True)
class HostRecord:
    """A simulated host (peer, DNS server, vantage or measurement host)."""

    host_id: int
    kind: HostKind
    en_id: int
    pop_id: int
    isp_id: int
    ip: int
    domain: str | None = None  # DNS servers: the domain they serve
    responds_to_tcp_ping: bool = True
    responds_to_traceroute: bool = True
    # Per-host internal hops below the EN gateway (campus switches/routers),
    # as (router_id, link_latency_ms) pairs from the host outward.
    internal_path: tuple[tuple[int, float], ...] = field(default_factory=tuple)
