"""IPv4 address arithmetic.

The IP-prefix mechanism (Section 5, Fig 11) keys peers by fixed-length
prefixes of their addresses, so the library needs fast prefix extraction and
matching over addresses stored as unsigned 32-bit integers.  We use plain
ints rather than :mod:`ipaddress` objects because the Fig 11 sweep evaluates
millions of pairwise prefix matches.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import DataError

IPV4_BITS = 32
_MAX_IP = 2**32 - 1


def parse_ipv4(text: str) -> int:
    """Parse dotted-quad notation into a 32-bit integer."""
    parts = text.split(".")
    if len(parts) != 4:
        raise DataError(f"not a dotted quad: {text!r}")
    value = 0
    for part in parts:
        try:
            octet = int(part)
        except ValueError as exc:
            raise DataError(f"not a dotted quad: {text!r}") from exc
        if not 0 <= octet <= 255:
            raise DataError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_ipv4(ip: int) -> str:
    """Format a 32-bit integer as dotted-quad notation."""
    if not 0 <= ip <= _MAX_IP:
        raise DataError(f"IP out of range: {ip}")
    return ".".join(str((ip >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def ip_prefix(ip: int, length: int) -> int:
    """Return the ``length``-bit prefix of ``ip`` (right-aligned).

    The result identifies the prefix *value*; two addresses share a
    ``length``-bit prefix iff their ``ip_prefix(.., length)`` are equal.
    """
    if not 0 <= length <= IPV4_BITS:
        raise DataError(f"prefix length must be in [0, 32], got {length}")
    if length == 0:
        return 0
    return ip >> (IPV4_BITS - length)


def prefix_match_length(a: int, b: int) -> int:
    """Length in bits of the longest common prefix of two addresses."""
    diff = (a ^ b) & _MAX_IP
    if diff == 0:
        return IPV4_BITS
    return IPV4_BITS - diff.bit_length()


def prefixes_array(ips: np.ndarray, length: int) -> np.ndarray:
    """Vectorised :func:`ip_prefix` over an array of uint32/uint64 addresses."""
    if not 0 <= length <= IPV4_BITS:
        raise DataError(f"prefix length must be in [0, 32], got {length}")
    arr = np.asarray(ips, dtype=np.uint64)
    if length == 0:
        return np.zeros(arr.shape, dtype=np.uint64)
    return arr >> np.uint64(IPV4_BITS - length)


class PrefixAllocator:
    """Sequential allocator of disjoint CIDR blocks inside a parent block.

    Used by the topology generator to hand ISPs blocks out of a small set of
    /8s (mirroring how consumer address space concentrates), PoPs sub-blocks
    of their ISP, and end-networks /24s (or nearby sizes) of their PoP.
    """

    def __init__(self, base_ip: int, base_length: int) -> None:
        if not 0 <= base_length <= IPV4_BITS:
            raise DataError(f"base length must be in [0, 32], got {base_length}")
        mask_bits = IPV4_BITS - base_length
        if base_ip & ((1 << mask_bits) - 1):
            raise DataError("base_ip has bits set below the prefix length")
        self.base_ip = base_ip
        self.base_length = base_length
        self._next_offset = 0

    @property
    def capacity(self) -> int:
        """Number of addresses in the parent block."""
        return 1 << (IPV4_BITS - self.base_length)

    @property
    def remaining(self) -> int:
        """Addresses not yet handed out."""
        return self.capacity - self._next_offset

    def allocate(self, length: int) -> "PrefixAllocator":
        """Carve the next aligned /``length`` block out of this one."""
        if length < self.base_length:
            raise DataError(
                f"child /{length} cannot be larger than parent /{self.base_length}"
            )
        size = 1 << (IPV4_BITS - length)
        # Align the offset up to a multiple of the child block size.
        aligned = (self._next_offset + size - 1) & ~(size - 1)
        if aligned + size > self.capacity:
            raise DataError(
                f"parent /{self.base_length} exhausted allocating a /{length}"
            )
        self._next_offset = aligned + size
        return PrefixAllocator(self.base_ip + aligned, length)

    def random_address(self, rng: np.random.Generator) -> int:
        """Draw a uniform host address inside this block."""
        return int(self.base_ip + rng.integers(0, self.capacity))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PrefixAllocator({format_ipv4(self.base_ip)}/{self.base_length})"
