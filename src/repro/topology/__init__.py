"""Topology substrate: the Internet "last hop" that causes the clustering condition.

Two complementary models live here:

* :mod:`repro.topology.clustered` — the paper's Section 4 abstraction:
  clusters of end-networks hanging off cluster-hubs, with hub latencies
  ``mean ~ U[4, 6] ms`` scaled by ``(1 ± delta)`` and 100 µs intra-network
  latency.  This drives the Meridian simulations (Figs 8, 9).

* :mod:`repro.topology.internet` / :mod:`repro.topology.graph` — a full
  router-level synthetic Internet (ISPs → PoPs → aggregation trees →
  end-networks → hosts, with IPv4 allocation and router naming) that the
  measurement pipelines of Section 3 and the mechanism evaluations of
  Section 5 (Figs 3-7, 10, 11) run against.
"""

from repro.topology.clustered import ClusteredConfig, ClusteredTopology
from repro.topology.elements import (
    EndNetworkRecord,
    HostKind,
    HostRecord,
    IspRecord,
    PopRecord,
    RouterKind,
    RouterRecord,
)
from repro.topology.graph import RouterLevelTopology
from repro.topology.internet import InternetConfig, SyntheticInternet
from repro.topology.ip import (
    format_ipv4,
    ip_prefix,
    parse_ipv4,
    prefix_match_length,
)
from repro.topology.oracle import (
    CountingOracle,
    LatencyOracle,
    MatrixOracle,
    NoisyOracle,
)

__all__ = [
    "ClusteredConfig",
    "ClusteredTopology",
    "RouterKind",
    "HostKind",
    "RouterRecord",
    "HostRecord",
    "EndNetworkRecord",
    "PopRecord",
    "IspRecord",
    "RouterLevelTopology",
    "SyntheticInternet",
    "InternetConfig",
    "format_ipv4",
    "parse_ipv4",
    "ip_prefix",
    "prefix_match_length",
    "LatencyOracle",
    "MatrixOracle",
    "CountingOracle",
    "NoisyOracle",
]
