"""Router-level topology: storage and routing.

:class:`RouterLevelTopology` holds the generated Internet (see
:mod:`repro.topology.internet` for the generator) and answers the two
questions the measurement pipelines need:

* :meth:`route` — the router path and RTT between two hosts, following the
  paper's path model: up each host's attachment chain to the lowest common
  router if one exists below/at the PoP, otherwise up to the PoP and across
  the core.
* :meth:`upward_chain` — a host's chain of upstream routers with cumulative
  latencies (the ground truth behind UCLs and traceroute prefixes).

Within a PoP the attachment structure is a forest, so lowest-common-router
discovery is a linear scan of the two chains; across PoPs routes go through
a cached-Dijkstra core graph (networkx).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.topology.elements import (
    EndNetworkRecord,
    HostKind,
    HostRecord,
    IspRecord,
    PopRecord,
    RouterRecord,
)
from repro.util.errors import DataError, SimulationError


@dataclass(frozen=True)
class Route:
    """A host-to-host route: the ordered router ids crossed, and the RTT.

    ``cumulative_ms[i]`` is the RTT from the source host to ``routers[i]``;
    traceroute hop latencies come straight from these.
    """

    routers: tuple[int, ...]
    latency_ms: float
    cumulative_ms: tuple[float, ...] = ()

    @property
    def hop_length(self) -> int:
        """Number of links on the path (= routers + 1 for host-host routes).

        This matches the paper's Fig 10 metric: "if all peers tracked
        upstream routers n hops away, they would be able to discover all
        peers 2n hops away" — a pair whose route crosses ``2n - 1`` routers
        is ``2n`` hops apart.
        """
        return len(self.routers) + 1


class RouterLevelTopology:
    """The generated router-level Internet (see module docstring)."""

    def __init__(
        self,
        isps: list[IspRecord],
        pops: list[PopRecord],
        routers: list[RouterRecord],
        end_networks: list[EndNetworkRecord],
        hosts: list[HostRecord],
        core_graph: nx.Graph,
    ) -> None:
        self.isps = isps
        self.pops = pops
        self.routers = routers
        self.end_networks = end_networks
        self.hosts = hosts
        self.core_graph = core_graph
        # host_id -> tuple of (router_id, cumulative RTT ms from host),
        # ordered host-outward and ending at the attachment PoP router.
        self._upward: dict[int, tuple[tuple[int, float], ...]] = {}
        self._core_dist_cache: dict[int, dict[int, float]] = {}
        self._core_path_cache: dict[tuple[int, int], list[int]] = {}
        self._build_upward_chains()

    # -- construction helpers ------------------------------------------------

    def _build_upward_chains(self) -> None:
        for host in self.hosts:
            en = self.end_networks[host.en_id]
            chain: list[tuple[int, float]] = []
            cumulative = 0.0
            for router_id, link_ms in host.internal_path:
                cumulative += link_ms
                chain.append((router_id, cumulative))
            for router_id, link_ms in zip(
                en.attachment_router_ids, en.attachment_latencies_ms
            ):
                cumulative += link_ms
                chain.append((router_id, cumulative))
            if not chain:
                raise DataError(f"host {host.host_id} has an empty upward chain")
            self._upward[host.host_id] = tuple(chain)

    # -- basic accessors -------------------------------------------------------

    @property
    def n_hosts(self) -> int:
        return len(self.hosts)

    def host(self, host_id: int) -> HostRecord:
        return self.hosts[host_id]

    def router(self, router_id: int) -> RouterRecord:
        return self.routers[router_id]

    def end_network(self, en_id: int) -> EndNetworkRecord:
        return self.end_networks[en_id]

    def pop(self, pop_id: int) -> PopRecord:
        return self.pops[pop_id]

    def hosts_of_kind(self, kind: HostKind) -> list[HostRecord]:
        """All hosts of a given kind (peers, DNS servers, ...)."""
        return [h for h in self.hosts if h.kind == kind]

    def upward_chain(self, host_id: int) -> tuple[tuple[int, float], ...]:
        """(router_id, cumulative RTT) pairs from ``host_id`` to its PoP router."""
        return self._upward[host_id]

    def attachment_pop_router(self, host_id: int) -> int:
        """The PoP router id a host's chain terminates at."""
        return self._upward[host_id][-1][0]

    def hub_latency_ms(self, host_id: int) -> float:
        """RTT from a host to its PoP router (its hub latency)."""
        return self._upward[host_id][-1][1]

    # -- core routing ----------------------------------------------------------

    def _core_distances_from(self, router_id: int) -> dict[int, float]:
        if router_id not in self._core_dist_cache:
            if router_id not in self.core_graph:
                raise SimulationError(f"router {router_id} is not in the core graph")
            self._core_dist_cache[router_id] = nx.single_source_dijkstra_path_length(
                self.core_graph, router_id, weight="latency_ms"
            )
        return self._core_dist_cache[router_id]

    def _core_route(self, a: int, b: int) -> tuple[float, list[int]]:
        """RTT and router path between two core-graph routers."""
        if a == b:
            return 0.0, [a]
        key = (a, b) if a <= b else (b, a)
        if key not in self._core_path_cache:
            try:
                path = nx.dijkstra_path(self.core_graph, key[0], key[1], weight="latency_ms")
            except nx.NetworkXNoPath as exc:
                raise SimulationError(f"core graph is disconnected: {a} .. {b}") from exc
            self._core_path_cache[key] = path
        path = self._core_path_cache[key]
        if path[0] != a:
            path = list(reversed(path))
        distance = self._core_distances_from(a).get(b)
        if distance is None:
            raise SimulationError(f"no core distance between {a} and {b}")
        return distance, path

    # -- host-to-host routing ----------------------------------------------------

    def route(self, a: int, b: int) -> Route:
        """Router path and RTT between hosts ``a`` and ``b``.

        Follows the paper's model: if the two attachment chains share a
        router below or at the PoP, the message turns around at the first
        (lowest) shared router; otherwise it goes up to each host's PoP
        router and across the core graph.
        """
        if a == b:
            return Route(routers=(), latency_ms=0.0)
        chain_a = self._upward[a]
        chain_b = self._upward[b]
        position_b = {router: (idx, cum) for idx, (router, cum) in enumerate(chain_b)}
        for idx_a, (router, cum_a) in enumerate(chain_a):
            hit = position_b.get(router)
            if hit is not None:
                idx_b, lca_cum_b = hit
                routers = [r for r, _ in chain_a[: idx_a + 1]]
                cums = [c for _, c in chain_a[: idx_a + 1]]
                # Descend b's chain from just below the LCA to b's side.
                for j in range(idx_b - 1, -1, -1):
                    routers.append(chain_b[j][0])
                    cums.append(cum_a + (lca_cum_b - chain_b[j][1]))
                return Route(
                    routers=tuple(routers),
                    latency_ms=cum_a + lca_cum_b,
                    cumulative_ms=tuple(cums),
                )
        router_a, cum_a = chain_a[-1]
        router_b, cum_b = chain_b[-1]
        core_latency, core_path = self._core_route(router_a, router_b)
        routers = [r for r, _ in chain_a]
        cums = [c for _, c in chain_a]
        running = cum_a
        for prev, node in zip(core_path, core_path[1:]):
            running += float(self.core_graph.edges[prev, node]["latency_ms"])
            routers.append(node)
            cums.append(running)
        # ``running`` now sits at b's PoP router; descend b's chain.
        for j in range(len(chain_b) - 2, -1, -1):
            routers.append(chain_b[j][0])
            cums.append(running + (cum_b - chain_b[j][1]))
        return Route(
            routers=tuple(routers),
            latency_ms=cum_a + core_latency + cum_b,
            cumulative_ms=tuple(cums),
        )

    def latency_ms(self, a: int, b: int) -> float:
        """RTT between two hosts (oracle interface)."""
        return self.route(a, b).latency_ms

    @property
    def n_nodes(self) -> int:
        """Oracle interface: hosts are the nodes."""
        return self.n_hosts

    # -- ground truth helpers ---------------------------------------------------

    def same_end_network(self, a: int, b: int) -> bool:
        return self.hosts[a].en_id == self.hosts[b].en_id

    def same_pop(self, a: int, b: int) -> bool:
        return self.hosts[a].pop_id == self.hosts[b].pop_id

    def peers_in_pop(self, pop_id: int) -> list[int]:
        """Peer host ids whose end-networks hang off ``pop_id``."""
        return [
            h.host_id
            for h in self.hosts
            if h.pop_id == pop_id and h.kind == HostKind.PEER
        ]
