"""Router-level topology: storage and routing.

:class:`RouterLevelTopology` holds the generated Internet (see
:mod:`repro.topology.internet` for the generator) and answers the two
questions the measurement pipelines need:

* :meth:`route` — the router path and RTT between two hosts, following the
  paper's path model: up each host's attachment chain to the lowest common
  router if one exists below/at the PoP, otherwise up to the PoP and across
  the core.
* :meth:`upward_chain` — a host's chain of upstream routers with cumulative
  latencies (the ground truth behind UCLs and traceroute prefixes).

Within a PoP the attachment structure is a forest, so lowest-common-router
discovery is a linear scan of the two chains (against a per-host position
map precomputed at construction time).  Across PoPs routes use all-pairs
core-graph shortest paths, computed once with ``scipy.sparse.csgraph`` the
first time any cross-PoP question is asked — the core graph is small
(PoP/IXP routers only), so the dense distance/predecessor matrices are
cheap and make every subsequent core lookup O(1).

Bulk latency questions (the measurement pipelines ask for *every* host
pair) go through :meth:`latency_matrix`, which assembles whole RTT blocks
from the precomputed per-host hub latencies and the core distance matrix
instead of routing pair by pair.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.topology.elements import (
    EndNetworkRecord,
    HostKind,
    HostRecord,
    IspRecord,
    PopRecord,
    RouterRecord,
)
from repro.util.errors import DataError, SimulationError


@dataclass(frozen=True)
class Route:
    """A host-to-host route: the ordered router ids crossed, and the RTT.

    ``cumulative_ms[i]`` is the RTT from the source host to ``routers[i]``;
    traceroute hop latencies come straight from these.
    """

    routers: tuple[int, ...]
    latency_ms: float
    cumulative_ms: tuple[float, ...] = ()

    @property
    def hop_length(self) -> int:
        """Number of links on the path (= routers + 1 for host-host routes).

        This matches the paper's Fig 10 metric: "if all peers tracked
        upstream routers n hops away, they would be able to discover all
        peers 2n hops away" — a pair whose route crosses ``2n - 1`` routers
        is ``2n`` hops apart.
        """
        return len(self.routers) + 1


class RouterLevelTopology:
    """The generated router-level Internet (see module docstring)."""

    def __init__(
        self,
        isps: list[IspRecord],
        pops: list[PopRecord],
        routers: list[RouterRecord],
        end_networks: list[EndNetworkRecord],
        hosts: list[HostRecord],
        core_graph: nx.Graph,
    ) -> None:
        self.isps = isps
        self.pops = pops
        self.routers = routers
        self.end_networks = end_networks
        self.hosts = hosts
        self.core_graph = core_graph
        # host_id -> tuple of (router_id, cumulative RTT ms from host),
        # ordered host-outward and ending at the attachment PoP router.
        self._upward: dict[int, tuple[tuple[int, float], ...]] = {}
        # host_id -> {router_id: (chain index, cumulative RTT ms)} — the
        # lookup route() used to rebuild per call.
        self._upward_pos: dict[int, dict[int, tuple[int, float]]] = {}
        # Per-host attachment summaries (arrays indexed by host id).
        self._host_pop_router: np.ndarray = np.empty(0, dtype=int)
        self._host_hub_ms: np.ndarray = np.empty(0, dtype=float)
        # All-pairs core-graph state, built lazily by _ensure_core_paths().
        self._core_nodes: list[int] | None = None
        self._core_index: dict[int, int] | None = None
        self._core_dist: np.ndarray | None = None
        self._core_pred: np.ndarray | None = None
        self._host_core_index: np.ndarray | None = None
        self._build_upward_chains()

    # -- construction helpers ------------------------------------------------

    def _build_upward_chains(self) -> None:
        pop_router = np.empty(len(self.hosts), dtype=int)
        hub_ms = np.empty(len(self.hosts), dtype=float)
        for host in self.hosts:
            en = self.end_networks[host.en_id]
            chain: list[tuple[int, float]] = []
            cumulative = 0.0
            for router_id, link_ms in host.internal_path:
                cumulative += link_ms
                chain.append((router_id, cumulative))
            for router_id, link_ms in zip(
                en.attachment_router_ids, en.attachment_latencies_ms
            ):
                cumulative += link_ms
                chain.append((router_id, cumulative))
            if not chain:
                raise DataError(f"host {host.host_id} has an empty upward chain")
            self._upward[host.host_id] = tuple(chain)
            self._upward_pos[host.host_id] = {
                router: (idx, cum) for idx, (router, cum) in enumerate(chain)
            }
            pop_router[host.host_id] = chain[-1][0]
            hub_ms[host.host_id] = chain[-1][1]
        self._host_pop_router = pop_router
        self._host_hub_ms = hub_ms
        # Padded per-host chain arrays for the vectorised lowest-common-
        # router scan (-1 pads past each chain's end; chains are short, so
        # the (n_hosts, max_depth) arrays are tiny).
        depth = max(len(chain) for chain in self._upward.values())
        chain_router = np.full((len(self.hosts), depth), -1, dtype=int)
        chain_cum = np.zeros((len(self.hosts), depth), dtype=float)
        for host_id, chain in self._upward.items():
            for idx, (router, cum) in enumerate(chain):
                chain_router[host_id, idx] = router
                chain_cum[host_id, idx] = cum
        self._chain_router = chain_router
        self._chain_cum = chain_cum

    # -- basic accessors -------------------------------------------------------

    @property
    def n_hosts(self) -> int:
        return len(self.hosts)

    def host(self, host_id: int) -> HostRecord:
        return self.hosts[host_id]

    def router(self, router_id: int) -> RouterRecord:
        return self.routers[router_id]

    def end_network(self, en_id: int) -> EndNetworkRecord:
        return self.end_networks[en_id]

    def pop(self, pop_id: int) -> PopRecord:
        return self.pops[pop_id]

    def hosts_of_kind(self, kind: HostKind) -> list[HostRecord]:
        """All hosts of a given kind (peers, DNS servers, ...)."""
        return [h for h in self.hosts if h.kind == kind]

    def upward_chain(self, host_id: int) -> tuple[tuple[int, float], ...]:
        """(router_id, cumulative RTT) pairs from ``host_id`` to its PoP router."""
        return self._upward[host_id]

    def attachment_pop_router(self, host_id: int) -> int:
        """The PoP router id a host's chain terminates at."""
        return int(self._host_pop_router[host_id])

    def hub_latency_ms(self, host_id: int) -> float:
        """RTT from a host to its PoP router (its hub latency)."""
        return float(self._host_hub_ms[host_id])

    # -- core routing ----------------------------------------------------------

    def _ensure_core_paths(self) -> None:
        """All-pairs shortest paths over the (small) core graph, once."""
        if self._core_dist is not None:
            return
        import scipy.sparse
        import scipy.sparse.csgraph

        nodes = sorted(self.core_graph.nodes)
        index = {node: i for i, node in enumerate(nodes)}
        n = len(nodes)
        row, col, data = [], [], []
        for u, v, attrs in self.core_graph.edges(data=True):
            row.append(index[u])
            col.append(index[v])
            data.append(float(attrs["latency_ms"]))
        adjacency = scipy.sparse.csr_matrix(
            (data, (row, col)), shape=(n, n)
        )
        dist, pred = scipy.sparse.csgraph.dijkstra(
            adjacency, directed=False, return_predecessors=True
        )
        self._core_nodes = nodes
        self._core_index = index
        self._core_dist = dist
        self._core_pred = pred
        # Host -> core-matrix row of its attachment PoP router; -1 marks a
        # router absent from the core graph, surfaced as a SimulationError
        # only when a query actually needs that host's core position (the
        # pre-batch code was lazy in the same way).
        self._host_core_index = np.array(
            [index.get(r, -1) for r in self._host_pop_router.tolist()], dtype=int
        )

    def core_distance_ms(self, a: int, b: int) -> float | None:
        """Shortest-path RTT between two core routers, ``None`` if unknown.

        ``None`` means ``a`` or ``b`` is not a core router, or the core
        graph does not connect them.
        """
        self._ensure_core_paths()
        assert self._core_index is not None and self._core_dist is not None
        ia = self._core_index.get(a)
        ib = self._core_index.get(b)
        if ia is None or ib is None:
            return None
        distance = self._core_dist[ia, ib]
        if np.isinf(distance):
            return None
        return float(distance)

    def _core_route(self, a: int, b: int) -> tuple[float, list[int]]:
        """RTT and router path between two core-graph routers."""
        if a == b:
            return 0.0, [a]
        self._ensure_core_paths()
        assert (
            self._core_index is not None
            and self._core_dist is not None
            and self._core_pred is not None
            and self._core_nodes is not None
        )
        ia = self._core_index.get(a)
        ib = self._core_index.get(b)
        if ia is None:
            raise SimulationError(f"router {a} is not in the core graph")
        if ib is None:
            raise SimulationError(f"router {b} is not in the core graph")
        distance = self._core_dist[ia, ib]
        if np.isinf(distance):
            raise SimulationError(f"core graph is disconnected: {a} .. {b}")
        path = [b]
        j = ib
        while j != ia:
            j = int(self._core_pred[ia, j])
            path.append(self._core_nodes[j])
        path.reverse()
        return float(distance), path

    # -- host-to-host routing ----------------------------------------------------

    def route(self, a: int, b: int) -> Route:
        """Router path and RTT between hosts ``a`` and ``b``.

        Follows the paper's model: if the two attachment chains share a
        router below or at the PoP, the message turns around at the first
        (lowest) shared router; otherwise it goes up to each host's PoP
        router and across the core graph.  One implementation serves both
        the scalar and the batched path: this is :meth:`routes_from` with
        a single destination.
        """
        return self.routes_from(a, [b])[0]

    def routes_from(
        self, src: int, dst_hosts: "np.ndarray | list[int]"
    ) -> list[Route]:
        """Routes from one source to many destinations, sharing source work.

        The one routing implementation (:meth:`route` is the
        single-destination call).  Per-source work is shared across
        destinations: the source's upward-chain prefix and the core
        segment (shortest-path reconstruction plus the per-edge
        ``core_graph`` latency lookups, historically the per-pair
        dominant cost) are computed once per distinct destination PoP
        router instead of once per destination host — the same router
        tuples and the same floats in the same association order as a
        per-pair loop.  This is the fast path for traceroute campaigns,
        where one vantage traces thousands of hosts whose routes fan out
        over a handful of PoPs.
        """
        chain_a = self._upward[src]
        # destination PoP router -> (prefix routers, prefix cums,
        # cumulative RTT at that router, core latency), exactly the state
        # route() rebuilds per call before descending the b-chain.
        core_cache: dict[int, tuple[list[int], list[float], float, float]] = {}
        routes: list[Route] = []
        for dst in dst_hosts:
            dst = int(dst)
            if dst == src:
                routes.append(Route(routers=(), latency_ms=0.0))
                continue
            chain_b = self._upward[dst]
            position_b = self._upward_pos[dst]
            shared = None
            for idx_a, (router, cum_a) in enumerate(chain_a):
                hit = position_b.get(router)
                if hit is not None:
                    shared = idx_a, cum_a, hit
                    break
            if shared is not None:
                # Same-PoP pair: the chains are short, keep the scalar scan.
                idx_a, cum_a, (idx_b, lca_cum_b) = shared
                routers = [r for r, _ in chain_a[: idx_a + 1]]
                cums = [c for _, c in chain_a[: idx_a + 1]]
                for j in range(idx_b - 1, -1, -1):
                    routers.append(chain_b[j][0])
                    cums.append(cum_a + (lca_cum_b - chain_b[j][1]))
                routes.append(
                    Route(
                        routers=tuple(routers),
                        latency_ms=cum_a + lca_cum_b,
                        cumulative_ms=tuple(cums),
                    )
                )
                continue
            router_a, cum_a = chain_a[-1]
            router_b, cum_b = chain_b[-1]
            cached = core_cache.get(router_b)
            if cached is None:
                core_latency, core_path = self._core_route(router_a, router_b)
                prefix_routers = [r for r, _ in chain_a]
                prefix_cums = [c for _, c in chain_a]
                running = cum_a
                for prev, node in zip(core_path, core_path[1:]):
                    running += float(
                        self.core_graph.edges[prev, node]["latency_ms"]
                    )
                    prefix_routers.append(node)
                    prefix_cums.append(running)
                cached = (prefix_routers, prefix_cums, running, core_latency)
                core_cache[router_b] = cached
            prefix_routers, prefix_cums, running, core_latency = cached
            routers = list(prefix_routers)
            cums = list(prefix_cums)
            for j in range(len(chain_b) - 2, -1, -1):
                routers.append(chain_b[j][0])
                cums.append(running + (cum_b - chain_b[j][1]))
            routes.append(
                Route(
                    routers=tuple(routers),
                    latency_ms=cum_a + core_latency + cum_b,
                    cumulative_ms=tuple(cums),
                )
            )
        return routes

    def _pair_latency_ms(self, a: int, b: int) -> float:
        """RTT between two hosts without materialising the router path."""
        if a == b:
            return 0.0
        position_b = self._upward_pos[b]
        for router, cum_a in self._upward[a]:
            hit = position_b.get(router)
            if hit is not None:
                return cum_a + hit[1]
        self._ensure_core_paths()
        assert self._core_dist is not None and self._host_core_index is not None
        ia = self._host_core_index[a]
        ib = self._host_core_index[b]
        if ia < 0 or ib < 0:
            missing = self._host_pop_router[a if ia < 0 else b]
            raise SimulationError(f"router {missing} is not in the core graph")
        distance = self._core_dist[ia, ib]
        if np.isinf(distance):
            raise SimulationError(
                f"core graph is disconnected: "
                f"{self._host_pop_router[a]} .. {self._host_pop_router[b]}"
            )
        return float(
            self._host_hub_ms[a] + distance + self._host_hub_ms[b]
        )

    def _lca_pair_latencies(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vectorised RTTs for host pairs that share an attachment router.

        The grouped-array form of the scalar lowest-common-router scan in
        :meth:`_pair_latency_ms`: compare the two padded chain arrays as a
        ``(pairs, depth, depth)`` match cube, take the first hit in a-chain
        order (each router appears at most once per chain, so the a-major
        ``argmax`` lands on exactly the router the scalar scan returns) and
        add the two cumulative latencies at the hit — the same two floats
        in the same order, so results are bit-identical.  Works in bounded
        chunks to keep the cube small.
        """
        a = np.asarray(a, dtype=int)
        b = np.asarray(b, dtype=int)
        out = np.empty(a.size, dtype=float)
        depth = self._chain_router.shape[1]
        chunk = max(1, (1 << 18) // max(1, depth * depth))
        for start in range(0, a.size, chunk):
            sl = slice(start, min(a.size, start + chunk))
            ra = self._chain_router[a[sl]]  # (P, depth)
            rb = self._chain_router[b[sl]]
            match = (ra[:, :, None] == rb[:, None, :]) & (ra >= 0)[:, :, None]
            flat = match.reshape(match.shape[0], -1)
            if not flat.any(axis=1).all():
                bad = int(np.flatnonzero(~flat.any(axis=1))[0])
                raise SimulationError(
                    f"hosts {int(a[sl][bad])} and {int(b[sl][bad])} share an "
                    "attachment PoP router but no chain router"
                )
            first = flat.argmax(axis=1)
            ia, ib = np.divmod(first, depth)
            out[sl] = (
                self._chain_cum[a[sl], ia] + self._chain_cum[b[sl], ib]
            )
        out[a == b] = 0.0
        return out

    def latency_ms(self, a: int, b: int) -> float:
        """RTT between two hosts (oracle interface)."""
        return self._pair_latency_ms(a, b)

    @property
    def n_nodes(self) -> int:
        """Oracle interface: hosts are the nodes."""
        return self.n_hosts

    # -- bulk latency (batch oracle interface) ----------------------------------

    def latency_matrix(
        self,
        host_ids: np.ndarray | list[int],
        col_host_ids: np.ndarray | list[int] | None = None,
    ) -> np.ndarray:
        """RTT block between host id arrays, assembled without per-pair routing.

        For the (overwhelmingly common) cross-PoP pairs the RTT is
        ``hub(a) + core_distance(pop(a), pop(b)) + hub(b)``, filled in one
        vectorised expression from the all-pairs core matrix.  Pairs whose
        attachment chains terminate at the same PoP router may share a
        router below the PoP, so those entries are corrected with the
        grouped-array lowest-common-router scan
        (:meth:`_lca_pair_latencies` — bit-identical to the scalar scan).
        Equal ids yield 0.
        """
        rows = np.asarray(host_ids, dtype=int)
        cols = rows if col_host_ids is None else np.asarray(col_host_ids, dtype=int)
        self._ensure_core_paths()
        assert self._core_dist is not None and self._host_core_index is not None
        core_rows = self._host_core_index[rows]
        core_cols = self._host_core_index[cols]
        # Same attachment PoP router: the chains may share a lower router.
        same_top = (
            self._host_pop_router[rows][:, None]
            == self._host_pop_router[cols][None, :]
        )
        # Hosts anchored outside the core graph are an error only for the
        # cross-PoP cells that actually need a core distance.
        needs_core = ~same_top
        missing = (core_rows < 0)[:, None] | (core_cols < 0)[None, :]
        if np.any(missing & needs_core):
            i, j = np.argwhere(missing & needs_core)[0]
            bad_host = rows[i] if core_rows[i] < 0 else cols[j]
            raise SimulationError(
                f"router {self._host_pop_router[bad_host]} is not in the core graph"
            )
        # Association order matches the scalar path ((hub_a + core) + hub_b)
        # so batch and per-pair results are bit-identical.  (-1 indices only
        # occur in same-top cells, which are overwritten below.)
        block = (
            self._host_hub_ms[rows][:, None]
            + self._core_dist[np.ix_(core_rows, core_cols)]
        ) + self._host_hub_ms[cols][None, :]
        if np.any(np.isinf(block[needs_core])):
            raise SimulationError("core graph is disconnected")
        if np.any(same_top):
            i, j = np.nonzero(same_top)
            block[i, j] = self._lca_pair_latencies(rows[i], cols[j])
        return block

    def pair_latencies(
        self, pairs: "list[tuple[int, int]] | np.ndarray"
    ) -> np.ndarray:
        """Element-wise RTTs for an explicit host-pair list.

        The sparse counterpart of :meth:`latency_matrix`: when a pipeline
        needs specific pairs (the DNS study's sampled cluster pairs, say)
        rather than a dense block, this avoids materialising the full
        cross product.  Cross-PoP pairs are vectorised; pairs sharing an
        attachment PoP router fall back to the exact per-pair scan.
        """
        pairs_arr = np.asarray(pairs, dtype=int)
        if pairs_arr.size == 0:
            return np.empty(0, dtype=float)
        a = pairs_arr[:, 0]
        b = pairs_arr[:, 1]
        self._ensure_core_paths()
        assert self._core_dist is not None and self._host_core_index is not None
        ia = self._host_core_index[a]
        ib = self._host_core_index[b]
        same_top = self._host_pop_router[a] == self._host_pop_router[b]
        missing = ((ia < 0) | (ib < 0)) & ~same_top
        if np.any(missing):
            k = int(np.flatnonzero(missing)[0])
            bad_host = a[k] if ia[k] < 0 else b[k]
            raise SimulationError(
                f"router {self._host_pop_router[bad_host]} is not in the core graph"
            )
        out = (
            self._host_hub_ms[a] + self._core_dist[ia, ib]
        ) + self._host_hub_ms[b]
        idx = np.flatnonzero(same_top)
        if idx.size:
            out[idx] = self._lca_pair_latencies(a[idx], b[idx])
        if np.any(np.isinf(out[~same_top])):
            raise SimulationError("core graph is disconnected")
        return out

    def latencies_from(
        self, a: int, members: np.ndarray | None = None
    ) -> np.ndarray:
        """Batch oracle interface: RTTs from host ``a`` to ``members``."""
        if members is None:
            members = np.arange(self.n_hosts)
        return self.latency_matrix([a], members)[0]

    def latency_block(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Batch oracle interface: the ``rows × cols`` RTT block."""
        return self.latency_matrix(rows, cols)

    # -- ground truth helpers ---------------------------------------------------

    def same_end_network(self, a: int, b: int) -> bool:
        return self.hosts[a].en_id == self.hosts[b].en_id

    def same_pop(self, a: int, b: int) -> bool:
        return self.hosts[a].pop_id == self.hosts[b].pop_id

    def peers_in_pop(self, pop_id: int) -> list[int]:
        """Peer host ids whose end-networks hang off ``pop_id``."""
        return [
            h.host_id
            for h in self.hosts
            if h.pop_id == pop_id and h.kind == HostKind.PEER
        ]
