"""Generator for the router-level synthetic Internet.

Builds the full last-hop structure of the paper's Figure 1, embedded in a
small world map:

* **ISPs** own PoPs placed at named cities; PoP routers share an AS and a
  city (the property rockettrace-based PoP identification exploits).
* **ISP backbones** connect each ISP's PoPs; ISPs interconnect at IXPs in
  major cities, so cross-ISP routes traverse realistic detours.
* **Aggregation forests** under each PoP: shared aggregation routers that
  end-network uplinks merge into ("connections funnel in from the end-hosts
  and end-networks, possibly merging as they get closer to the PoP").
* **End-networks** (campus/corporate, with gateways and internal switches)
  and **home hosts** (no local network) attach to the forest.  Each
  end-network's hub latency is its PoP's mean scaled by a per-PoP spread
  factor, so PoPs with tight spreads satisfy the clustering condition and
  PoPs with loose spreads do not — both occur, as in the wild.
* **Addressing**: ISPs carve blocks out of one consumer /8 (plus a separate
  provider-independent /8 for ~8 % of campus networks), PoPs get sub-blocks,
  end-networks get /24s.  This drives the Fig 11 prefix-heuristic behaviour.
* **Populations**: Azureus-like peers (with a TCP-ping response model),
  recursive DNS servers (with per-organization domains, some organizations
  spanning multiple sites — a confound the paper observed), vantage-point
  hosts at the Table 1 cities, and a single measurement host.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.topology.cities import City, WORLD_CITIES, city_by_name, city_code, major_cities
from repro.topology.elements import (
    EndNetworkRecord,
    HostKind,
    HostRecord,
    IspRecord,
    PopRecord,
    RouterKind,
    RouterRecord,
)
from repro.topology.graph import RouterLevelTopology
from repro.topology.ip import PrefixAllocator
from repro.util.errors import ConfigurationError
from repro.util.rng import make_rng
from repro.util.validate import require_in_range, require_positive


@dataclass(frozen=True)
class InternetConfig:
    """Knobs of the synthetic Internet generator.

    Defaults produce a laptop-friendly Internet (~1k end-networks, ~2k
    hosts); the measurement experiments scale the population knobs up.
    """

    n_isps: int = 6
    pops_per_isp_low: int = 3
    pops_per_isp_high: int = 8
    en_per_pop_low: int = 6
    en_per_pop_high: int = 48
    home_en_fraction: float = 0.5
    # Hub-latency model: per-PoP mean ~ U[low, high]; per-EN factor
    # ~ U[1 - spread, 1 + spread] with the spread drawn per PoP.
    mean_hub_latency_low_ms: float = 3.0
    mean_hub_latency_high_ms: float = 7.0
    pop_spread_low: float = 0.08
    pop_spread_high: float = 0.45
    # Attachment depth: probability of attaching directly to a PoP router,
    # to a level-1 aggregation router, or to a level-2 aggregation router.
    agg_depth_weights: tuple[float, float, float] = (0.35, 0.45, 0.2)
    end_networks_per_l1_agg: int = 6
    # Populations.
    peer_probability_home: float = 0.8
    mean_peers_per_campus_en: float = 1.3
    max_peers_per_campus_en: int = 5
    dns_probability_campus: float = 0.6
    max_dns_per_en: int = 2
    multi_site_org_fraction: float = 0.06
    # Measurement behaviour.
    tcp_response_rate: float = 0.45
    traceroute_response_rate: float = 0.9
    router_misname_rate: float = 0.03
    # Addressing.
    pi_address_fraction: float = 0.08
    consumer_slash8: int = 83  # all ISP space lives in 83.0.0.0/8
    pi_slash8: int = 128  # provider-independent space (campus/edu)

    def __post_init__(self) -> None:
        require_positive(self.n_isps, "n_isps")
        require_positive(self.pops_per_isp_low, "pops_per_isp_low")
        if self.pops_per_isp_high < self.pops_per_isp_low:
            raise ConfigurationError("pops_per_isp_high < pops_per_isp_low")
        if self.en_per_pop_high < self.en_per_pop_low:
            raise ConfigurationError("en_per_pop_high < en_per_pop_low")
        require_in_range(self.home_en_fraction, "home_en_fraction", 0.0, 1.0)
        require_in_range(self.tcp_response_rate, "tcp_response_rate", 0.0, 1.0)
        require_in_range(self.pi_address_fraction, "pi_address_fraction", 0.0, 1.0)
        if abs(sum(self.agg_depth_weights) - 1.0) > 1e-9:
            raise ConfigurationError("agg_depth_weights must sum to 1")


@dataclass
class _Builder:
    """Mutable state threaded through the generation stages."""

    config: InternetConfig
    rng: np.random.Generator
    isps: list[IspRecord] = field(default_factory=list)
    pops: list[PopRecord] = field(default_factory=list)
    routers: list[RouterRecord] = field(default_factory=list)
    end_networks: list[EndNetworkRecord] = field(default_factory=list)
    hosts: list[HostRecord] = field(default_factory=list)
    core: nx.Graph = field(default_factory=nx.Graph)
    pop_city: dict[int, City] = field(default_factory=dict)
    pop_primary_router: dict[int, int] = field(default_factory=dict)
    pop_routers: dict[int, list[int]] = field(default_factory=dict)
    pop_mean_hub: dict[int, float] = field(default_factory=dict)
    pop_spread: dict[int, float] = field(default_factory=dict)
    pop_en_count: dict[int, int] = field(default_factory=dict)
    pop_allocator: dict[int, "_PopAddressCursor"] = field(default_factory=dict)
    # Shared aggregation forest: child router -> (parent router, link RTT ms).
    agg_parent: dict[int, tuple[int, float]] = field(default_factory=dict)
    pop_l1_aggs: dict[int, list[int]] = field(default_factory=dict)
    pop_l2_aggs: dict[int, list[int]] = field(default_factory=dict)
    org_counter: int = 0

    def add_router(
        self,
        kind: RouterKind,
        isp_id: int,
        pop_id: int | None,
        city: City,
        role: str,
    ) -> int:
        router_id = len(self.routers)
        as_name = self.isps[isp_id].name if isp_id >= 0 else "ix"
        named_city = city.name
        # rockettrace infers AS/city from the router's DNS name; a small
        # fraction of names are misconfigured (paper Section 3.1 caveat).
        if self.rng.random() < self.config.router_misname_rate:
            named_city = str(self.rng.choice([c.name for c in WORLD_CITIES]))
        dns_name = f"{role}{router_id}.{city_code(named_city)}.{as_name}.net"
        self.routers.append(
            RouterRecord(
                router_id=router_id,
                kind=kind,
                isp_id=isp_id,
                pop_id=pop_id,
                as_name=as_name,
                city=named_city,
                dns_name=dns_name,
            )
        )
        return router_id

    def agg_path_to_pop(self, attach_router: int) -> tuple[list[int], list[float]]:
        """Routers and link RTTs from ``attach_router`` up to its PoP router.

        The attach router itself is the first entry; the PoP router is last.
        """
        routers = [attach_router]
        links: list[float] = []
        current = attach_router
        while current in self.agg_parent:
            parent, link_ms = self.agg_parent[current]
            routers.append(parent)
            links.append(link_ms)
            current = parent
        return routers, links

    def next_org(self) -> str:
        self.org_counter += 1
        return f"org{self.org_counter}"


class SyntheticInternet(RouterLevelTopology):
    """A generated router-level Internet with peer/DNS/vantage populations."""

    def __init__(
        self,
        config: InternetConfig,
        isps: list[IspRecord],
        pops: list[PopRecord],
        routers: list[RouterRecord],
        end_networks: list[EndNetworkRecord],
        hosts: list[HostRecord],
        core_graph: nx.Graph,
        agg_parent: dict[int, tuple[int, float]],
    ) -> None:
        super().__init__(isps, pops, routers, end_networks, hosts, core_graph)
        self.config = config
        self.agg_parent = agg_parent
        # gateway router id -> (pop_router_id, rtt below it); built lazily by
        # router_anchor (the old per-call linear scan over every end-network
        # dominated the ping pipelines).
        self._edge_anchor_cache: dict[int, tuple[int, float]] | None = None
        self.peer_ids = [h.host_id for h in hosts if h.kind == HostKind.PEER]
        self.dns_server_ids = [h.host_id for h in hosts if h.kind == HostKind.DNS_SERVER]
        self.vantage_ids = [h.host_id for h in hosts if h.kind == HostKind.VANTAGE]
        measurement = [h.host_id for h in hosts if h.kind == HostKind.MEASUREMENT]
        self.measurement_host_id = measurement[0] if measurement else None

    # ------------------------------------------------------------------ #

    @classmethod
    def generate(
        cls,
        config: InternetConfig | None = None,
        seed: int | np.random.Generator | None = None,
        vantage_cities: tuple[str, ...] | None = None,
    ) -> "SyntheticInternet":
        """Generate a fresh Internet.

        ``vantage_cities`` defaults to the paper's Table 1 locations (see
        :mod:`repro.measurement.vantage`); pass an empty tuple to skip
        vantage hosts entirely.
        """
        config = config or InternetConfig()
        rng = make_rng(seed)
        b = _Builder(config=config, rng=rng)

        _generate_isps_and_pops(b)
        _generate_backbone(b)
        _allocate_addresses(b)
        _generate_agg_forests(b)
        _generate_end_networks(b)
        _merge_multi_site_orgs(b)
        _populate_hosts(b)
        if vantage_cities is None:
            from repro.measurement.vantage import TABLE1_VANTAGE_CITIES

            vantage_cities = TABLE1_VANTAGE_CITIES
        _place_vantage_hosts(b, vantage_cities)

        return cls(
            config=config,
            isps=b.isps,
            pops=b.pops,
            routers=b.routers,
            end_networks=b.end_networks,
            hosts=b.hosts,
            core_graph=b.core,
            agg_parent=b.agg_parent,
        )

    # -- router anchoring (used by ping) ------------------------------------

    def router_anchor(self, router_id: int) -> tuple[int, float] | None:
        """Map a router to ``(pop_router_id, rtt_to_it)`` for ping routing.

        PoP/core/IXP routers anchor to themselves at distance 0; aggregation
        routers climb the shared forest; end-network gateways anchor through
        their network's attachment chain.  Returns ``None`` for routers that
        cannot be anchored (campus-internal switches).
        """
        record = self.routers[router_id]
        if record.kind in (RouterKind.POP, RouterKind.CORE, RouterKind.IXP):
            return router_id, 0.0
        if router_id in self.agg_parent:
            total = 0.0
            current = router_id
            while current in self.agg_parent:
                parent, link_ms = self.agg_parent[current]
                total += link_ms
                current = parent
            return current, total
        if record.kind == RouterKind.EDGE:
            if self._edge_anchor_cache is None:
                cache: dict[int, tuple[int, float]] = {}
                for en in self.end_networks:
                    if en.attachment_router_ids:
                        cache.setdefault(
                            en.attachment_router_ids[0],
                            (
                                en.attachment_router_ids[-1],
                                float(sum(en.attachment_latencies_ms[1:])),
                            ),
                        )
                self._edge_anchor_cache = cache
            return self._edge_anchor_cache.get(router_id)
        return None

    def describe(self) -> str:
        """One-line summary used in experiment logs."""
        return (
            f"SyntheticInternet(isps={len(self.isps)}, pops={len(self.pops)}, "
            f"end_networks={len(self.end_networks)}, hosts={len(self.hosts)}, "
            f"peers={len(self.peer_ids)}, dns={len(self.dns_server_ids)})"
        )


# --------------------------------------------------------------------------- #
# generation stages
# --------------------------------------------------------------------------- #


def _generate_isps_and_pops(b: _Builder) -> None:
    cfg, rng = b.config, b.rng
    cities = list(WORLD_CITIES)
    for isp_id in range(cfg.n_isps):
        b.isps.append(
            IspRecord(isp_id=isp_id, name=f"isp{isp_id}", as_number=7000 + isp_id)
        )
        n_pops = int(rng.integers(cfg.pops_per_isp_low, cfg.pops_per_isp_high + 1))
        # ISPs concentrate in a home region but reach everywhere: weight the
        # city choice toward a home continent.
        home = rng.choice(["NA", "EU", "AS"])
        weights = np.array([3.0 if c.continent == home else 1.0 for c in cities])
        weights /= weights.sum()
        chosen = rng.choice(
            len(cities), size=min(n_pops, len(cities)), replace=False, p=weights
        )
        for city_idx in chosen:
            city = cities[city_idx]
            pop_id = len(b.pops)
            n_routers = int(rng.integers(1, 4))
            router_ids = [
                b.add_router(RouterKind.POP, isp_id, pop_id, city, role="cr")
                for _ in range(n_routers)
            ]
            b.pops.append(
                PopRecord(
                    pop_id=pop_id,
                    isp_id=isp_id,
                    city=city.name,
                    router_ids=tuple(router_ids),
                    x=city.x,
                    y=city.y,
                )
            )
            b.pop_city[pop_id] = city
            b.pop_primary_router[pop_id] = router_ids[0]
            b.pop_routers[pop_id] = router_ids
            b.pop_mean_hub[pop_id] = float(
                rng.uniform(cfg.mean_hub_latency_low_ms, cfg.mean_hub_latency_high_ms)
            )
            b.pop_spread[pop_id] = float(
                rng.uniform(cfg.pop_spread_low, cfg.pop_spread_high)
            )
            b.pop_en_count[pop_id] = int(
                rng.integers(cfg.en_per_pop_low, cfg.en_per_pop_high + 1)
            )
            # Intra-PoP links: routers in a PoP are "quite close together".
            for i, r1 in enumerate(router_ids):
                for r2 in router_ids[i + 1 :]:
                    b.core.add_edge(r1, r2, latency_ms=float(rng.uniform(0.05, 0.25)))


def _generate_backbone(b: _Builder) -> None:
    rng = b.rng
    pops_by_isp: dict[int, list[int]] = {}
    for pop in b.pops:
        pops_by_isp.setdefault(pop.isp_id, []).append(pop.pop_id)
    # ISP backbone: full mesh among each ISP's PoP primary routers.
    for pop_ids in pops_by_isp.values():
        for i, pa in enumerate(pop_ids):
            for pb in pop_ids[i + 1 :]:
                ca, cb = b.pop_city[pa], b.pop_city[pb]
                detour = float(rng.uniform(1.05, 1.35))
                rtt = 2.0 * ca.distance_ms(cb) * detour + float(rng.uniform(0.2, 0.8))
                b.core.add_edge(
                    b.pop_primary_router[pa],
                    b.pop_primary_router[pb],
                    latency_ms=rtt,
                )
    # IXPs at major cities; ISPs with a PoP in that city connect locally.
    ixp_router_by_city: dict[str, int] = {}
    for city in major_cities():
        ixp_id = b.add_router(RouterKind.IXP, -1, None, city, role="ixp")
        ixp_router_by_city[city.name] = ixp_id
    # Tier-1 transit mesh between exchange points, so any two ISPs can reach
    # each other even when they share no exchange city.
    ixp_cities = list(major_cities())
    for i, ca in enumerate(ixp_cities):
        for cb in ixp_cities[i + 1 :]:
            rtt = 2.0 * ca.distance_ms(cb) * float(rng.uniform(1.05, 1.25)) + 0.3
            b.core.add_edge(
                ixp_router_by_city[ca.name], ixp_router_by_city[cb.name], latency_ms=rtt
            )
    for pop in b.pops:
        ixp = ixp_router_by_city.get(pop.city)
        if ixp is not None:
            b.core.add_edge(
                b.pop_primary_router[pop.pop_id],
                ixp,
                latency_ms=float(rng.uniform(0.3, 1.0)),
            )
        else:
            # Transit uplink to the nearest exchange city, so routes do not
            # take continent-scale detours through the ISP's home region.
            city = b.pop_city[pop.pop_id]
            nearest = min(major_cities(), key=lambda c: c.distance_ms(city))
            rtt = 2.0 * city.distance_ms(nearest) * float(rng.uniform(1.05, 1.25)) + 0.5
            b.core.add_edge(
                b.pop_primary_router[pop.pop_id],
                ixp_router_by_city[nearest.name],
                latency_ms=rtt,
            )


class _PopAddressCursor:
    """Hands a PoP /24s drawn as scattered chunks from its ISP's block.

    Real ISPs do not give a PoP one contiguous block: BRAS pools receive
    chunks of consecutive /24s as demand grows, interleaved with every
    other PoP of the ISP.  Consequently a /14 of ISP space mixes cities
    (false positives for the prefix heuristic) while two end-networks of
    the same PoP usually share nothing longer than the ISP prefix (false
    negatives) — the no-sweet-spot structure of Fig 11.
    """

    def __init__(
        self,
        isp_block: PrefixAllocator,
        rng: np.random.Generator,
        expected_networks: int,
    ) -> None:
        self._isp_block = isp_block
        self._rng = rng
        self._chunk: PrefixAllocator | None = None
        # Chunks never exceed the PoP's expected demand (small PoPs get
        # small chunks, so little address space is stranded).
        self._lengths = [
            length
            for length in (22, 21, 20, 19)
            if (1 << (24 - length)) <= max(4, expected_networks)
        ] or [22]

    def allocate(self, length: int) -> PrefixAllocator:
        if length != 24:
            raise ConfigurationError("PoP cursors hand out /24s only")
        if self._chunk is None or self._chunk.remaining < 256:
            chunk_length = int(self._rng.choice(self._lengths))
            self._chunk = self._isp_block.allocate(chunk_length)
        return self._chunk.allocate(24)


def _allocate_addresses(b: _Builder) -> None:
    """Size ISP blocks to demand; PoPs draw interleaved chunks from them.

    ISP space concentrates in a handful of consecutive consumer /8s (as
    real broadband space does), overflowing into the next /8 when one
    fills; this concentration drives the prefix heuristic's high
    false-positive rate at short prefix lengths (Fig 11).
    """
    cfg = b.config
    pools = [PrefixAllocator((cfg.consumer_slash8 + k) << 24, 8) for k in range(8)]
    pool_index = 0

    def allocate_isp_block(length: int) -> PrefixAllocator:
        nonlocal pool_index
        while pool_index < len(pools):
            try:
                return pools[pool_index].allocate(length)
            except Exception:
                pool_index += 1
        raise ConfigurationError("consumer address pools exhausted")

    pops_by_isp: dict[int, list[int]] = {}
    for pop in b.pops:
        pops_by_isp.setdefault(pop.isp_id, []).append(pop.pop_id)
    for isp in b.isps:
        pop_ids = pops_by_isp.get(isp.isp_id, [])
        # /24s needed: each PoP's end-network count plus headroom for
        # vantage attachments and chunk-alignment waste.
        need = sum(max(8, 2 * b.pop_en_count[p]) for p in pop_ids)
        # Headroom: chunk-alignment waste is bounded by one max chunk per PoP.
        isp_need = max(64, int(1.25 * need) + 32 * max(1, len(pop_ids)))
        isp_length = max(9, 24 - math.ceil(math.log2(isp_need)))
        isp_block = allocate_isp_block(isp_length)
        for pop_id in pop_ids:
            b.pop_allocator[pop_id] = _PopAddressCursor(
                isp_block, b.rng, expected_networks=b.pop_en_count[pop_id]
            )


def _generate_agg_forests(b: _Builder) -> None:
    """Shared aggregation routers that end-network uplinks merge into.

    Aggregation fan-out is heterogeneous across PoPs: most PoPs spread
    their uplinks over many small aggregation routers, a minority funnel
    them into a few fat concentrators (big BRAS/DSLAM sites) —
    ``end_networks_per_l1_agg`` is the fan-out of the fattest tier.  The
    fat tail is what produces the paper's largest peer clusters.
    """
    cfg, rng = b.config, b.rng
    for pop in b.pops:
        pop_id = pop.pop_id
        city = b.pop_city[pop_id]
        n_en = b.pop_en_count[pop_id]
        fanout_scale = float(
            rng.choice([0.04, 0.1, 0.25, 1.0], p=[0.35, 0.27, 0.15, 0.23])
        )
        per_l1 = max(2, int(round(cfg.end_networks_per_l1_agg * fanout_scale)))
        n_l1 = max(1, n_en // per_l1)
        l1 = []
        for _ in range(n_l1):
            agg = b.add_router(RouterKind.AGGREGATION, pop.isp_id, pop_id, city, "agg")
            parent = int(rng.choice(b.pop_routers[pop_id]))
            b.agg_parent[agg] = (parent, float(rng.uniform(0.15, 0.5)))
            l1.append(agg)
        n_l2 = max(1, n_l1 // 2)
        l2 = []
        for _ in range(n_l2):
            agg = b.add_router(RouterKind.AGGREGATION, pop.isp_id, pop_id, city, "agg")
            parent = int(rng.choice(l1))
            b.agg_parent[agg] = (parent, float(rng.uniform(0.1, 0.4)))
            l2.append(agg)
        b.pop_l1_aggs[pop_id] = l1
        b.pop_l2_aggs[pop_id] = l2


def _make_end_network(
    b: _Builder,
    pop: PopRecord,
    hub_latency_ms: float,
    is_home: bool,
    organization: str | None = None,
    pi_block: PrefixAllocator | None = None,
) -> EndNetworkRecord:
    """Create one end-network attached to the PoP's aggregation forest."""
    cfg, rng = b.config, b.rng
    pop_id = pop.pop_id
    city = b.pop_city[pop_id]
    depth = int(rng.choice(3, p=list(cfg.agg_depth_weights)))
    if depth == 0:
        attach = int(rng.choice(b.pop_routers[pop_id]))
    elif depth == 1:
        attach = int(rng.choice(b.pop_l1_aggs[pop_id]))
    else:
        attach = int(rng.choice(b.pop_l2_aggs[pop_id]))
    shared_routers, shared_links = b.agg_path_to_pop(attach)

    if is_home:
        # A home host's access link runs straight to the attach router.
        routers = list(shared_routers)
        access = max(0.3, hub_latency_ms - sum(shared_links))
        links = [access] + shared_links
    else:
        # Campus network: gateway router, then the access link upstream.
        gw = b.add_router(RouterKind.EDGE, pop.isp_id, pop_id, city, "gw")
        routers = [gw] + list(shared_routers)
        lan_link = float(rng.uniform(0.02, 0.08))
        access = max(0.3, hub_latency_ms - sum(shared_links) - lan_link)
        links = [lan_link, access] + shared_links

    if pi_block is not None:
        block = pi_block
    else:
        block = b.pop_allocator[pop_id].allocate(24)
    en_id = len(b.end_networks)
    record = EndNetworkRecord(
        en_id=en_id,
        pop_id=pop_id,
        isp_id=pop.isp_id,
        organization=organization or (f"home{en_id}" if is_home else b.next_org()),
        hub_latency_ms=float(sum(links)),
        attachment_router_ids=tuple(routers),
        attachment_latencies_ms=tuple(links),
        prefix_base=block.base_ip,
        prefix_length=block.base_length,
        is_home_network=is_home,
    )
    b.end_networks.append(record)
    return record


def _generate_end_networks(b: _Builder) -> None:
    cfg, rng = b.config, b.rng
    pi_pool = PrefixAllocator(cfg.pi_slash8 << 24, 8)
    for pop in b.pops:
        spread = b.pop_spread[pop.pop_id]
        for _ in range(b.pop_en_count[pop.pop_id]):
            is_home = bool(rng.random() < cfg.home_en_fraction)
            factor = float(rng.uniform(1.0 - spread, 1.0 + spread))
            hub = b.pop_mean_hub[pop.pop_id] * factor
            pi_block = None
            if not is_home and rng.random() < cfg.pi_address_fraction:
                pi_block = pi_pool.allocate(24)
            _make_end_network(b, pop, hub, is_home, pi_block=pi_block)


def _merge_multi_site_orgs(b: _Builder) -> None:
    """Give some organizations multiple sites (different PoPs, same domain).

    The paper noticed same-domain DNS-server pairs in different geographic
    locations; those pairs pollute the intra-domain latency distribution and
    must exist in our synthetic study too.
    """
    cfg, rng = b.config, b.rng
    campus = [en for en in b.end_networks if not en.is_home_network]
    n_merges = int(len(campus) * cfg.multi_site_org_fraction)
    if n_merges == 0 or len(campus) < 2:
        return
    for _ in range(n_merges):
        a, c = rng.choice(len(campus), size=2, replace=False)
        primary, secondary = campus[int(a)], campus[int(c)]
        if primary.pop_id == secondary.pop_id:
            continue
        merged = EndNetworkRecord(
            en_id=secondary.en_id,
            pop_id=secondary.pop_id,
            isp_id=secondary.isp_id,
            organization=primary.organization,
            hub_latency_ms=secondary.hub_latency_ms,
            attachment_router_ids=secondary.attachment_router_ids,
            attachment_latencies_ms=secondary.attachment_latencies_ms,
            prefix_base=secondary.prefix_base,
            prefix_length=secondary.prefix_length,
            is_home_network=secondary.is_home_network,
        )
        b.end_networks[secondary.en_id] = merged
        campus[int(c)] = merged


def _internal_switches(b: _Builder, en: EndNetworkRecord) -> list[int]:
    """Create campus-internal switch routers hosts may hang off."""
    if en.is_home_network:
        return []
    n = int(b.rng.integers(1, 4))
    city = b.pop_city[en.pop_id]
    return [
        b.add_router(RouterKind.EDGE, en.isp_id, en.pop_id, city, "sw")
        for _ in range(n)
    ]


def _add_host(
    b: _Builder,
    en: EndNetworkRecord,
    kind: HostKind,
    switches: list[int],
    domain: str | None = None,
    always_responds: bool = False,
) -> int:
    cfg, rng = b.config, b.rng
    host_id = len(b.hosts)
    block = PrefixAllocator(en.prefix_base, en.prefix_length)
    ip = block.random_address(rng)
    internal: tuple[tuple[int, float], ...] = ()
    if switches and rng.random() < 0.7:
        switch = int(rng.choice(switches))
        internal = ((switch, float(rng.uniform(0.02, 0.08))),)
    responds = always_responds or bool(rng.random() < cfg.tcp_response_rate)
    b.hosts.append(
        HostRecord(
            host_id=host_id,
            kind=kind,
            en_id=en.en_id,
            pop_id=en.pop_id,
            isp_id=en.isp_id,
            ip=ip,
            domain=domain,
            responds_to_tcp_ping=responds,
            responds_to_traceroute=always_responds
            or bool(rng.random() < cfg.traceroute_response_rate),
            internal_path=internal,
        )
    )
    return host_id


def _populate_hosts(b: _Builder) -> None:
    cfg, rng = b.config, b.rng
    for en in list(b.end_networks):
        switches = _internal_switches(b, en)
        if en.is_home_network:
            if rng.random() < cfg.peer_probability_home:
                _add_host(b, en, HostKind.PEER, switches)
            continue
        n_peers = min(
            cfg.max_peers_per_campus_en, int(rng.poisson(cfg.mean_peers_per_campus_en))
        )
        for _ in range(n_peers):
            _add_host(b, en, HostKind.PEER, switches)
        if rng.random() < cfg.dns_probability_campus:
            n_dns = int(rng.integers(1, cfg.max_dns_per_en + 1))
            domain = f"{en.organization}.net"
            for _ in range(n_dns):
                # DNS servers live in machine rooms: always reachable.
                _add_host(b, en, HostKind.DNS_SERVER, [], domain=domain, always_responds=True)


def _place_vantage_hosts(b: _Builder, vantage_cities: tuple[str, ...]) -> None:
    """Attach vantage hosts (and one measurement host) at given cities.

    Each vantage gets its own well-connected end-network (universities have
    short hub latencies) on the PoP nearest to the city.
    """
    rng = b.rng

    def attach(kind: HostKind, city_name: str) -> None:
        city = city_by_name(city_name)
        pop = min(b.pops, key=lambda p: city.distance_ms(b.pop_city[p.pop_id]))
        en = _make_end_network(
            b,
            pop,
            hub_latency_ms=float(rng.uniform(0.8, 2.0)),
            is_home=False,
            organization=f"vantage-{city_name.lower().replace(' ', '-')}",
        )
        _add_host(b, en, kind, switches=[], always_responds=True)

    for name in vantage_cities:
        attach(HostKind.VANTAGE, name)
    # The single rockettrace measurement host (Section 3.1) sits at Ithaca,
    # the authors' institution.
    attach(HostKind.MEASUREMENT, "Ithaca")
