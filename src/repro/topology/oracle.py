"""Latency oracles: the ground-truth answer to "what is the RTT between a and b?".

Every nearest-peer algorithm in the library consumes a
:class:`LatencyOracle`, never a raw matrix, so the same algorithm code runs
against a dense matrix (Meridian simulations), the routed router-level
topology (measurement studies), or noisy/counting wrappers (probe accounting
— the paper's core cost metric is the number of latency probes).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.util.errors import DataError
from repro.util.rng import make_rng


@runtime_checkable
class LatencyOracle(Protocol):
    """Interface: round-trip latency in milliseconds between two node ids."""

    def latency_ms(self, a: int, b: int) -> float:
        """Return the RTT between nodes ``a`` and ``b`` in milliseconds."""
        ...

    @property
    def n_nodes(self) -> int:
        """Number of nodes the oracle knows about (ids are 0..n_nodes-1)."""
        ...


class MatrixOracle:
    """Oracle backed by a dense symmetric latency matrix."""

    def __init__(self, matrix: np.ndarray) -> None:
        arr = np.asarray(matrix, dtype=float)
        if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
            raise DataError(f"latency matrix must be square, got {arr.shape}")
        self._matrix = arr

    @property
    def n_nodes(self) -> int:
        return self._matrix.shape[0]

    @property
    def matrix(self) -> np.ndarray:
        """The underlying matrix (read-only by convention)."""
        return self._matrix

    def latency_ms(self, a: int, b: int) -> float:
        return float(self._matrix[a, b])

    def latencies_from(self, a: int) -> np.ndarray:
        """The full latency row for node ``a`` (fast path for simulators)."""
        return self._matrix[a]


class CountingOracle:
    """Wrapper that counts probes, deduplicating repeat measurements.

    The paper's lower bound is about *distinct* latency probes ("for a peer
    to tell if it is the closest peer to A2, it has to first measure its
    latency to A2"); repeated queries for a cached pair are counted
    separately so both metrics are available.
    """

    def __init__(self, inner: LatencyOracle) -> None:
        self._inner = inner
        self.total_probes = 0
        self.unique_probes = 0
        self._seen: set[tuple[int, int]] = set()

    @property
    def n_nodes(self) -> int:
        return self._inner.n_nodes

    def latency_ms(self, a: int, b: int) -> float:
        self.total_probes += 1
        key = (a, b) if a <= b else (b, a)
        if key not in self._seen:
            self._seen.add(key)
            self.unique_probes += 1
        return self._inner.latency_ms(a, b)

    def reset(self) -> None:
        """Zero the counters (e.g. between queries)."""
        self.total_probes = 0
        self.unique_probes = 0
        self._seen.clear()


class NoisyOracle:
    """Wrapper adding multiplicative measurement noise to each probe.

    Real probes (ping, TCP-ping, King) never return the true RTT; modelling
    that here lets algorithm evaluations distinguish "fails because of the
    clustering condition" from "fails because of measurement noise".
    Noise is lognormal with median 1, i.e. ``measured = true * exp(sigma*Z)``.
    """

    def __init__(
        self,
        inner: LatencyOracle,
        sigma: float = 0.05,
        additive_ms: float = 0.0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if sigma < 0:
            raise DataError(f"sigma must be >= 0, got {sigma}")
        if additive_ms < 0:
            raise DataError(f"additive_ms must be >= 0, got {additive_ms}")
        self._inner = inner
        self._sigma = sigma
        self._additive_ms = additive_ms
        self._rng = make_rng(seed)

    @property
    def n_nodes(self) -> int:
        return self._inner.n_nodes

    def latency_ms(self, a: int, b: int) -> float:
        true = self._inner.latency_ms(a, b)
        noisy = true * float(np.exp(self._rng.normal(0.0, self._sigma)))
        if self._additive_ms:
            noisy += float(self._rng.exponential(self._additive_ms))
        return noisy
