"""Latency oracles: the ground-truth answer to "what is the RTT between a and b?".

Every nearest-peer algorithm in the library consumes a
:class:`LatencyOracle`, never a raw matrix, so the same algorithm code runs
against a dense matrix (Meridian simulations), the routed router-level
topology (measurement studies), or noisy/counting wrappers (probe accounting
— the paper's core cost metric is the number of latency probes).

Batch fast path
---------------

Simulated probes are the repository's hot path: Meridian overlay
construction issues O(n·k) of them, ring selection O(k²) more per node.
Oracles may therefore expose two *optional* vectorised methods (the
:class:`BatchLatencyOracle` protocol):

* ``latencies_from(a, members)`` — RTTs from ``a`` to each id in
  ``members`` (or the full row when ``members`` is ``None``);
* ``latency_block(rows, cols)`` — the dense ``len(rows) × len(cols)``
  RTT block.

Callers never probe for these methods themselves: they go through
:func:`batch_latencies_from` / :func:`batch_latency_block`, which fall back
to element-wise ``latency_ms`` loops, so third-party oracles implementing
only the scalar protocol keep working everywhere.
"""

from __future__ import annotations

import inspect
from typing import Protocol, runtime_checkable

import numpy as np

from repro.util.errors import DataError
from repro.util.rng import make_rng


@runtime_checkable
class LatencyOracle(Protocol):
    """Interface: round-trip latency in milliseconds between two node ids."""

    def latency_ms(self, a: int, b: int) -> float:
        """Return the RTT between nodes ``a`` and ``b`` in milliseconds."""
        ...

    @property
    def n_nodes(self) -> int:
        """Number of nodes the oracle knows about (ids are 0..n_nodes-1)."""
        ...


@runtime_checkable
class BatchLatencyOracle(LatencyOracle, Protocol):
    """A latency oracle with the vectorised fast path (see module docstring).

    This protocol is *optional*: call sites use the dispatch helpers below,
    never ``isinstance`` checks, so scalar-only oracles remain first-class.
    """

    def latencies_from(
        self, a: int, members: np.ndarray | None = None
    ) -> np.ndarray:
        """RTTs from ``a`` to ``members`` (full row when ``members is None``)."""
        ...

    def latency_block(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """The ``len(rows) × len(cols)`` RTT block."""
        ...


def batch_latencies_from(
    oracle: LatencyOracle, a: int, members: np.ndarray | list[int]
) -> np.ndarray:
    """RTTs from ``a`` to each of ``members``, batched when the oracle can.

    Falls back to a scalar ``latency_ms`` loop for plain oracles, and to
    full-row indexing for legacy oracles whose ``latencies_from`` takes no
    ``members`` argument — so every :class:`LatencyOracle` works here.
    """
    members = np.asarray(members, dtype=int)
    fn = getattr(oracle, "latencies_from", None)
    if fn is not None:
        try:
            return np.asarray(fn(int(a), members), dtype=float)
        except TypeError:
            # Only fall back for the legacy single-argument signature
            # (whose binding fails before the body runs, so no oracle
            # state was consumed).  A TypeError raised *inside* a two-arg
            # implementation is a real bug and must propagate — retrying
            # would double-consume RNG draws / probe counters.
            try:
                inspect.signature(fn).bind(int(a), members)
            except TypeError:
                return np.asarray(fn(int(a)), dtype=float)[members]
            raise
    return np.array(
        [oracle.latency_ms(int(a), int(m)) for m in members], dtype=float
    )


def batch_latency_block(
    oracle: LatencyOracle,
    rows: np.ndarray | list[int],
    cols: np.ndarray | list[int],
) -> np.ndarray:
    """The ``rows × cols`` RTT block, batched when the oracle can.

    Scalar fallback iterates ``latency_ms(row, col)`` row-major, matching
    the element order every batch implementation must produce.
    """
    rows = np.asarray(rows, dtype=int)
    cols = np.asarray(cols, dtype=int)
    fn = getattr(oracle, "latency_block", None)
    if fn is not None:
        return np.asarray(fn(rows, cols), dtype=float)
    return np.array(
        [[oracle.latency_ms(int(a), int(b)) for b in cols] for a in rows],
        dtype=float,
    )


def oracle_probe_many(oracle: LatencyOracle):
    """An uncounted ``(src, nodes) -> RTTs`` probe callable over ``oracle``.

    The substrate-level default for probe-callable parameters (the
    Meridian overlay/gossip builders take ``probe_many=``): standalone
    callers measure straight off the oracle, while an algorithm passes
    its counted channel instead so the same code path bills its probes.
    Keeping the raw oracle access here — outside the probe-accounting
    packages — is what lets the ``counted-probes`` lint rule gate every
    direct oracle call inside them.
    """

    def probe_many(src: int, nodes: np.ndarray | list[int]) -> np.ndarray:
        return batch_latencies_from(oracle, int(src), nodes)

    return probe_many


def oracle_pairwise(oracle: LatencyOracle):
    """An uncounted ``(nodes) -> RTT block`` pairwise callable over ``oracle``.

    The block-shaped sibling of :func:`oracle_probe_many`, for
    diversity-selection passes that need all-pairs RTTs of a candidate
    set.
    """

    def pairwise(nodes: np.ndarray | list[int]) -> np.ndarray:
        return batch_latency_block(oracle, nodes, nodes)

    return pairwise


class MatrixOracle:
    """Oracle backed by a dense symmetric latency matrix."""

    def __init__(self, matrix: np.ndarray) -> None:
        arr = np.asarray(matrix, dtype=float)
        if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
            raise DataError(f"latency matrix must be square, got {arr.shape}")
        self._matrix = arr

    @property
    def n_nodes(self) -> int:
        return self._matrix.shape[0]

    @property
    def matrix(self) -> np.ndarray:
        """The underlying matrix (read-only by convention)."""
        return self._matrix

    def latency_ms(self, a: int, b: int) -> float:
        return float(self._matrix[a, b])

    def latencies_from(
        self, a: int, members: np.ndarray | None = None
    ) -> np.ndarray:
        """The latency row for node ``a``, optionally sliced to ``members``."""
        row = self._matrix[a]
        if members is None:
            return row
        return row[np.asarray(members, dtype=int)]

    def latency_block(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Dense block — one fancy-indexing call, no Python loop."""
        return self._matrix[
            np.ix_(np.asarray(rows, dtype=int), np.asarray(cols, dtype=int))
        ]


class CountingOracle:
    """Wrapper that counts probes, deduplicating repeat measurements.

    The paper's lower bound is about *distinct* latency probes ("for a peer
    to tell if it is the closest peer to A2, it has to first measure its
    latency to A2"); repeated queries for a cached pair are counted
    separately so both metrics are available.

    Batched calls count exactly like the equivalent scalar loop: one total
    probe per element, one unique probe per previously unseen unordered
    pair.
    """

    def __init__(self, inner: LatencyOracle) -> None:
        self._inner = inner
        self.total_probes = 0
        self.unique_probes = 0
        self._seen: set[tuple[int, int]] = set()

    @property
    def n_nodes(self) -> int:
        return self._inner.n_nodes

    def latency_ms(self, a: int, b: int) -> float:
        self.total_probes += 1
        key = (a, b) if a <= b else (b, a)
        if key not in self._seen:
            self._seen.add(key)
            self.unique_probes += 1
        return self._inner.latency_ms(a, b)

    def _count_batch(self, a_ids: np.ndarray, b_ids: np.ndarray) -> None:
        """Advance both counters for element-aligned id arrays."""
        lo = np.minimum(a_ids, b_ids)
        hi = np.maximum(a_ids, b_ids)
        self.total_probes += int(lo.size)
        before = len(self._seen)
        self._seen.update(zip(lo.tolist(), hi.tolist()))
        self.unique_probes += len(self._seen) - before

    def latencies_from(
        self, a: int, members: np.ndarray | None = None
    ) -> np.ndarray:
        if members is None:
            members = np.arange(self.n_nodes)
        members = np.asarray(members, dtype=int)
        self._count_batch(np.full(members.size, int(a)), members)
        return batch_latencies_from(self._inner, a, members)

    def latency_block(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=int)
        cols = np.asarray(cols, dtype=int)
        self._count_batch(np.repeat(rows, cols.size), np.tile(cols, rows.size))
        return batch_latency_block(self._inner, rows, cols)

    def reset(self) -> None:
        """Zero the counters (e.g. between queries)."""
        self.total_probes = 0
        self.unique_probes = 0
        self._seen.clear()


class NoisyOracle:
    """Wrapper adding multiplicative measurement noise to each probe.

    Real probes (ping, TCP-ping, King) never return the true RTT; modelling
    that here lets algorithm evaluations distinguish "fails because of the
    clustering condition" from "fails because of measurement noise".
    Noise is lognormal with median 1, i.e. ``measured = true * exp(sigma*Z)``.

    **Batch stream semantics.** Batched calls draw from the same generator
    as scalar calls.  A batch of ``k`` probes draws ``k`` lognormal factors
    in one vectorised call (element order: ``members`` order for
    ``latencies_from``, row-major for ``latency_block``) and then — only
    when ``additive_ms > 0`` — ``k`` additive lags in a second vectorised
    call.  numpy generators produce bit-identical variates for ``size=k``
    and ``k`` scalar draws, so with ``additive_ms == 0`` a batch is
    bit-identical to the equivalent scalar loop.  With ``additive_ms > 0``
    the scalar loop interleaves factor/lag draws per probe while the batch
    draws all factors first, so the streams diverge (same distribution,
    different variates).
    """

    def __init__(
        self,
        inner: LatencyOracle,
        sigma: float = 0.05,
        additive_ms: float = 0.0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if sigma < 0:
            raise DataError(f"sigma must be >= 0, got {sigma}")
        if additive_ms < 0:
            raise DataError(f"additive_ms must be >= 0, got {additive_ms}")
        self._inner = inner
        self._sigma = sigma
        self._additive_ms = additive_ms
        self._rng = make_rng(seed)

    @property
    def n_nodes(self) -> int:
        return self._inner.n_nodes

    def latency_ms(self, a: int, b: int) -> float:
        true = self._inner.latency_ms(a, b)
        noisy = true * float(np.exp(self._rng.normal(0.0, self._sigma)))
        if self._additive_ms:
            noisy += float(self._rng.exponential(self._additive_ms))
        return noisy

    def _noisy_batch(self, true: np.ndarray) -> np.ndarray:
        """Apply one batch of noise draws (see class docstring for order)."""
        true = np.asarray(true, dtype=float)
        noisy = true * np.exp(self._rng.normal(0.0, self._sigma, size=true.shape))
        if self._additive_ms:
            noisy = noisy + self._rng.exponential(self._additive_ms, size=true.shape)
        return noisy

    def latencies_from(
        self, a: int, members: np.ndarray | None = None
    ) -> np.ndarray:
        if members is None:
            members = np.arange(self.n_nodes)
        return self._noisy_batch(batch_latencies_from(self._inner, a, members))

    def latency_block(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        return self._noisy_batch(batch_latency_block(self._inner, rows, cols))
