"""A small world map of named cities for PoP placement.

Coordinates are in **one-way milliseconds**: the Euclidean distance between
two cities approximates the one-way propagation delay of a straight fibre
path between them (RTT = 2x distance, before detour factors).  The scale is
calibrated to familiar anchors: US coast-to-coast ~ 35 ms one-way,
transatlantic ~ 40 ms, transpacific ~ 55 ms.

The seven PlanetLab vantage-point cities of the paper's Table 1 are all
present so :mod:`repro.measurement.vantage` can place them faithfully.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.errors import DataError


@dataclass(frozen=True)
class City:
    """A named location on the latency plane."""

    name: str
    continent: str
    x: float  # one-way ms, west-east
    y: float  # one-way ms, south-north
    is_major: bool = False  # major cities host IXPs

    def distance_ms(self, other: "City") -> float:
        """One-way propagation delay to ``other`` in ms."""
        return math.hypot(self.x - other.x, self.y - other.y)


#: The built-in world.  Table 1 cities are marked in comments.
WORLD_CITIES: tuple[City, ...] = (
    # North America, west
    City("Seattle", "NA", 0.0, 10.0, is_major=True),  # Table 1: U. Washington
    City("San Francisco", "NA", 1.0, 2.0, is_major=True),
    City("San Diego", "NA", 4.0, -4.0),  # Table 1: UCSD
    City("Denver", "NA", 12.0, 3.0),
    City("Dallas", "NA", 18.0, -6.0, is_major=True),
    # North America, east
    City("Chicago", "NA", 24.0, 6.0, is_major=True),
    City("Atlanta", "NA", 29.0, -5.0),
    City("Ithaca", "NA", 33.0, 7.0),  # Table 1: Cornell
    City("New York", "NA", 35.0, 5.0, is_major=True),
    City("Washington DC", "NA", 34.0, 2.0, is_major=True),
    City("Gainesville", "NA", 31.0, -11.0),  # Table 1: U. Florida
    City("Toronto", "NA", 31.0, 10.0),
    # Europe
    City("London", "EU", 75.0, 18.0, is_major=True),
    City("Cambridge UK", "EU", 76.0, 19.0),  # Table 1: U. Cambridge
    City("Paris", "EU", 78.0, 15.0),
    City("Amsterdam", "EU", 79.0, 18.0, is_major=True),
    City("Frankfurt", "EU", 82.0, 16.0, is_major=True),
    City("Madrid", "EU", 74.0, 8.0),
    City("Stockholm", "EU", 84.0, 24.0),
    # Asia / Pacific
    City("Tokyo", "AS", -55.0, 0.0, is_major=True),  # Table 1: U. Tokyo
    City("Shenyang", "AS", -68.0, 6.0),  # Table 1: 6planetlab
    City("Beijing", "AS", -70.0, 4.0, is_major=True),
    City("Seoul", "AS", -62.0, 2.0),
    City("Singapore", "AS", -78.0, -22.0, is_major=True),
    City("Sydney", "OC", -50.0, -42.0),
)

_BY_NAME = {c.name: c for c in WORLD_CITIES}


def city_by_name(name: str) -> City:
    """Look up a built-in city; raises :class:`DataError` for unknown names."""
    try:
        return _BY_NAME[name]
    except KeyError as exc:
        raise DataError(f"unknown city {name!r}") from exc


def major_cities() -> tuple[City, ...]:
    """Cities hosting inter-ISP exchange points."""
    return tuple(c for c in WORLD_CITIES if c.is_major)


#: Short lowercase codes used in synthetic router DNS names ("...sea1...").
def city_code(name: str) -> str:
    """A rockettrace-style 3-letter city code."""
    cleaned = name.lower().replace(" ", "")
    return cleaned[:3]
