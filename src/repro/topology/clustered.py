"""The paper's Section 4 clustered latency model.

"To simulate the clustering condition in the inter-peer latency matrix, we
create clusters of end-networks that in turn contain peers" — this module is
that construction, verbatim:

* each cluster's mean hub latency is uniform in [4, 6] ms;
* each end-network's hub latency is uniform in ``(1 - delta) .. (1 + delta)``
  times its cluster's mean;
* every end-network holds ``peers_per_end_network`` peers (paper: 2);
* intra-end-network latency is 100 µs;
* two peers in different end-networks are separated by
  ``hub(a) + core(cluster_a, cluster_b) + hub(b)`` where ``core`` comes from
  a Meridian-dataset-like inter-hub matrix (median ≈ 65 ms) and is zero
  within a cluster.

The resulting latency assignment "satisfies the expected gradation":
intra-EN ≪ intra-cluster < inter-cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import ConfigurationError, DataError
from repro.util.rng import make_rng
from repro.util.units import INTRA_EN_LATENCY_MS
from repro.util.validate import require_in_range, require_positive


@dataclass(frozen=True)
class ClusteredConfig:
    """Parameters of the Section 4 construction (paper defaults)."""

    n_clusters: int
    end_networks_per_cluster: int
    peers_per_end_network: int = 2
    delta: float = 0.2
    mean_hub_latency_low_ms: float = 4.0
    mean_hub_latency_high_ms: float = 6.0
    intra_en_latency_ms: float = INTRA_EN_LATENCY_MS

    def __post_init__(self) -> None:
        require_positive(self.n_clusters, "n_clusters")
        require_positive(self.end_networks_per_cluster, "end_networks_per_cluster")
        require_positive(self.peers_per_end_network, "peers_per_end_network")
        require_in_range(self.delta, "delta", 0.0, 1.0)
        require_positive(self.mean_hub_latency_low_ms, "mean_hub_latency_low_ms")
        if self.mean_hub_latency_high_ms < self.mean_hub_latency_low_ms:
            raise ConfigurationError(
                "mean_hub_latency_high_ms must be >= mean_hub_latency_low_ms"
            )
        require_positive(self.intra_en_latency_ms, "intra_en_latency_ms")

    @property
    def n_end_networks(self) -> int:
        """Total end-networks across all clusters."""
        return self.n_clusters * self.end_networks_per_cluster

    @property
    def n_peers(self) -> int:
        """Total peers across all clusters."""
        return self.n_end_networks * self.peers_per_end_network


class ClusteredTopology:
    """A concrete sample of the Section 4 model.

    Hosts are integer ids ``0 .. n_peers-1``; parallel arrays map each host
    to its end-network and cluster, and each end-network to its hub latency.
    The class is a :class:`~repro.topology.oracle.LatencyOracle`.
    """

    def __init__(
        self,
        config: ClusteredConfig,
        en_cluster: np.ndarray,
        en_hub_latency_ms: np.ndarray,
        host_en: np.ndarray,
        core_ms: np.ndarray,
    ) -> None:
        if en_cluster.shape != en_hub_latency_ms.shape:
            raise DataError("en_cluster and en_hub_latency_ms must be parallel")
        if core_ms.shape != (config.n_clusters, config.n_clusters):
            raise DataError(
                f"core matrix shape {core_ms.shape} does not match "
                f"{config.n_clusters} clusters"
            )
        if not np.allclose(np.diag(core_ms), 0.0):
            raise DataError("core matrix must have a zero diagonal")
        self.config = config
        self.en_cluster = en_cluster
        self.en_hub_latency_ms = en_hub_latency_ms
        self.host_en = host_en
        self.host_cluster = en_cluster[host_en]
        self.host_hub_latency_ms = en_hub_latency_ms[host_en]
        self.core_ms = core_ms

    # -- construction ------------------------------------------------------

    @classmethod
    def generate(
        cls,
        config: ClusteredConfig,
        core_ms: np.ndarray,
        seed: int | np.random.Generator | None = None,
    ) -> "ClusteredTopology":
        """Sample a topology per the Section 4 recipe.

        ``core_ms`` supplies inter-cluster-hub latencies (use
        :func:`repro.latency.synthetic.synthetic_core_matrix` for a
        Meridian-dataset-like one).
        """
        rng = make_rng(seed)
        n_en = config.n_end_networks
        en_cluster = np.repeat(
            np.arange(config.n_clusters), config.end_networks_per_cluster
        )
        cluster_mean = rng.uniform(
            config.mean_hub_latency_low_ms,
            config.mean_hub_latency_high_ms,
            size=config.n_clusters,
        )
        factor = rng.uniform(1.0 - config.delta, 1.0 + config.delta, size=n_en)
        en_hub_latency = cluster_mean[en_cluster] * factor
        host_en = np.repeat(np.arange(n_en), config.peers_per_end_network)
        return cls(
            config=config,
            en_cluster=en_cluster,
            en_hub_latency_ms=en_hub_latency,
            host_en=host_en,
            core_ms=np.asarray(core_ms, dtype=float),
        )

    # -- oracle interface --------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return int(self.host_en.size)

    def latency_ms(self, a: int, b: int) -> float:
        """RTT between hosts ``a`` and ``b`` per the Section 4 path model."""
        if a == b:
            return 0.0
        if self.host_en[a] == self.host_en[b]:
            return self.config.intra_en_latency_ms
        hub = self.host_hub_latency_ms[a] + self.host_hub_latency_ms[b]
        ca, cb = self.host_cluster[a], self.host_cluster[b]
        return float(hub + self.core_ms[ca, cb])

    def latencies_from(self, a: int, members: np.ndarray | None = None) -> np.ndarray:
        """RTTs from host ``a`` to ``members`` without a dense matrix.

        The batch half of the :class:`~repro.topology.oracle.BatchLatencyOracle`
        protocol, computed from the path model directly — the float
        operation order matches :meth:`latency_ms` and :meth:`full_matrix`
        term for term, so the values are bit-identical to a dense row
        slice.  O(len(members)) time and memory: what lets the simulator
        hold a million-peer world where the full matrix would be 8 TB.
        """
        if members is None:
            members = np.arange(self.n_nodes)
        else:
            members = np.asarray(members, dtype=int)
        row = self.host_hub_latency_ms[a] + self.host_hub_latency_ms[members]
        row += self.core_ms[self.host_cluster[a], self.host_cluster[members]]
        row[self.host_en[members] == self.host_en[a]] = self.config.intra_en_latency_ms
        row[members == a] = 0.0
        return row

    def latency_pairs(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise RTTs ``latency_ms(a[i], b[i])``, vectorised."""
        a = np.asarray(a, dtype=int)
        b = np.asarray(b, dtype=int)
        vals = self.host_hub_latency_ms[a] + self.host_hub_latency_ms[b]
        vals += self.core_ms[self.host_cluster[a], self.host_cluster[b]]
        vals[self.host_en[a] == self.host_en[b]] = self.config.intra_en_latency_ms
        vals[a == b] = 0.0
        return vals

    def latency_block(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """RTT block between two host-id sets (matrix-free fancy slice)."""
        rows = np.asarray(rows, dtype=int)
        cols = np.asarray(cols, dtype=int)
        hub = self.host_hub_latency_ms
        block = hub[rows][:, None] + hub[cols][None, :]
        block += self.core_ms[np.ix_(self.host_cluster[rows], self.host_cluster[cols])]
        same_en = self.host_en[rows][:, None] == self.host_en[cols][None, :]
        block[same_en] = self.config.intra_en_latency_ms
        block[rows[:, None] == cols[None, :]] = 0.0
        return block

    def full_matrix(self) -> np.ndarray:
        """Dense symmetric latency matrix over all hosts (vectorised)."""
        hub = self.host_hub_latency_ms
        matrix = hub[:, None] + hub[None, :]
        matrix += self.core_ms[np.ix_(self.host_cluster, self.host_cluster)]
        same_en = self.host_en[:, None] == self.host_en[None, :]
        matrix[same_en] = self.config.intra_en_latency_ms
        np.fill_diagonal(matrix, 0.0)
        return matrix

    # -- ground-truth helpers ----------------------------------------------

    def same_end_network(self, a: int, b: int) -> bool:
        """True if two hosts share an end-network (the 'exact-closest' case)."""
        return bool(self.host_en[a] == self.host_en[b])

    def same_cluster(self, a: int, b: int) -> bool:
        """True if two hosts hang off the same cluster-hub."""
        return bool(self.host_cluster[a] == self.host_cluster[b])

    def hosts_in_end_network(self, en_id: int) -> np.ndarray:
        """All host ids inside end-network ``en_id``."""
        return np.flatnonzero(self.host_en == en_id)

    def hosts_in_cluster(self, cluster_id: int) -> np.ndarray:
        """All host ids inside cluster ``cluster_id``."""
        return np.flatnonzero(self.host_cluster == cluster_id)

    def end_network_mates(self, host: int) -> np.ndarray:
        """Hosts sharing ``host``'s end-network, excluding ``host`` itself."""
        mates = self.hosts_in_end_network(int(self.host_en[host]))
        return mates[mates != host]

    def describe(self) -> str:
        """One-line summary used in experiment logs."""
        c = self.config
        return (
            f"ClusteredTopology(clusters={c.n_clusters}, "
            f"en/cluster={c.end_networks_per_cluster}, "
            f"peers/en={c.peers_per_end_network}, delta={c.delta}, "
            f"hosts={self.n_nodes})"
        )
