"""The IP-prefix heuristic and its Fig 11 error analysis.

Peers are keyed by a fixed-length prefix of their IP address; a joining
peer retrieves everyone sharing its prefix and probes them.  The paper
finds "no clear sweet-spot": short prefixes drown the peer in false
positives, long prefixes miss most genuinely close peers.
:func:`prefix_error_rates` reproduces that trade-off exactly as defined in
the paper:

* per-peer **false-positive rate** — peers sharing the prefix but farther
  than the threshold, over all peers farther than the threshold;
* per-peer **false-negative rate** — peers *not* sharing the prefix but
  closer than the threshold, over all peers closer than the threshold
  (computed only for peers that have at least one close peer);
* the figure plots the medians across peers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.topology.internet import SyntheticInternet
from repro.topology.ip import prefixes_array
from repro.util.errors import DataError
from repro.util.rng import make_rng


class PrefixMap:
    """prefix-value -> peers key-value mapping (the deployable heuristic)."""

    def __init__(
        self, internet: SyntheticInternet, prefix_length: int = 24, backend=None
    ) -> None:
        from repro.mechanisms.ucl import DictBackend

        if not 0 < prefix_length <= 32:
            raise DataError(f"prefix_length must be in (0, 32], got {prefix_length}")
        self._internet = internet
        self._prefix_length = prefix_length
        self._backend = backend if backend is not None else DictBackend()

    def _key(self, peer_id: int) -> int:
        ip = self._internet.host(peer_id).ip
        return int(prefixes_array(np.array([ip]), self._prefix_length)[0])

    def insert_peer(self, peer_id: int) -> None:
        self._backend.put(self._key(peer_id), peer_id)

    def candidates(self, peer_id: int) -> set[int]:
        """Peers sharing the prefix (excluding the peer itself)."""
        found = set(self._backend.get(self._key(peer_id)))
        found.discard(peer_id)
        return found

    def find_nearest(
        self,
        new_peer: int,
        probe_budget: int | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> tuple[int | None, float | None, int]:
        """Probe prefix-mates; returns (peer, latency, probes_used).

        Unlike the UCL map there is no latency annotation to pre-filter
        with, so every retrieved candidate costs a probe — the
        false-positive cost the paper highlights.  Probes run over the P2P
        protocol itself (participating peers are mutually reachable).
        """
        rng = make_rng(seed)
        candidates = list(self.candidates(new_peer))
        rng.shuffle(candidates)
        if probe_budget is not None:
            candidates = candidates[:probe_budget]
        best_peer, best_latency = None, None
        probes = 0
        for candidate in candidates:
            true = self._internet.route(new_peer, candidate).latency_ms
            measured = true * float(np.exp(rng.normal(0.0, 0.02))) + float(
                rng.exponential(0.05)
            )
            probes += 1
            if best_latency is None or measured < best_latency:
                best_peer, best_latency = candidate, measured
        return best_peer, best_latency, probes


@dataclass(frozen=True)
class PrefixErrorRates:
    """Fig 11's y values for one prefix length."""

    prefix_length: int
    median_false_positive_rate: float
    median_false_negative_rate: float
    peers_evaluated: int
    peers_with_close_peer: int


def prefix_error_rates(
    ips: np.ndarray,
    close_pairs: set[tuple[int, int]],
    prefix_lengths: list[int],
) -> list[PrefixErrorRates]:
    """Evaluate the heuristic over a peer population.

    ``ips[i]`` is peer i's address; ``close_pairs`` holds index pairs
    ``(i, j), i < j`` whose latency is under the threshold (10 ms in the
    paper).  All other pairs count as far.  Complexity is O(peers) per
    prefix length via prefix-group counting — no all-pairs scan.
    """
    n = ips.shape[0]
    if n < 2:
        raise DataError("need at least two peers")
    close_neighbors: dict[int, set[int]] = {i: set() for i in range(n)}
    for i, j in close_pairs:
        if not (0 <= i < n and 0 <= j < n) or i == j:
            raise DataError(f"bad close pair ({i}, {j})")
        close_neighbors[i].add(j)
        close_neighbors[j].add(i)

    results = []
    for length in prefix_lengths:
        prefixes = prefixes_array(ips, length)
        # Count peers per prefix group.
        unique, inverse, counts = np.unique(
            prefixes, return_inverse=True, return_counts=True
        )
        sharing = counts[inverse] - 1  # peers (other than self) sharing
        false_positive_rates = []
        false_negative_rates = []
        peers_with_close = 0
        for i in range(n):
            close = close_neighbors[i]
            n_close = len(close)
            close_sharing = sum(
                1 for j in close if prefixes[j] == prefixes[i]
            )
            far_total = (n - 1) - n_close
            far_sharing = int(sharing[i]) - close_sharing
            if far_total > 0:
                false_positive_rates.append(far_sharing / far_total)
            if n_close > 0:
                peers_with_close += 1
                false_negative_rates.append((n_close - close_sharing) / n_close)
        results.append(
            PrefixErrorRates(
                prefix_length=length,
                median_false_positive_rate=float(np.median(false_positive_rates)),
                median_false_negative_rate=(
                    float(np.median(false_negative_rates))
                    if false_negative_rates
                    else 0.0
                ),
                peers_evaluated=n,
                peers_with_close_peer=peers_with_close,
            )
        )
    return results


def close_pairs_from_internet(
    internet: SyntheticInternet,
    peer_ids: list[int],
    threshold_ms: float = 10.0,
    max_pairs_per_city: int = 200_000,
    seed: int | np.random.Generator | None = None,
) -> set[tuple[int, int]]:
    """Index pairs (into ``peer_ids``) closer than ``threshold_ms``.

    Close pairs can only occur between peers whose PoPs share a city (hub
    latencies alone exceed the threshold otherwise), so enumeration is
    per-city.
    """
    rng = make_rng(seed)
    index_of = {peer: i for i, peer in enumerate(peer_ids)}
    by_city: dict[str, list[int]] = {}
    for peer in peer_ids:
        city = internet.pop(internet.host(peer).pop_id).city
        by_city.setdefault(city, []).append(peer)
    close: set[tuple[int, int]] = set()
    for peers in by_city.values():
        if len(peers) < 2:
            continue
        pairs = [
            (peers[i], peers[j])
            for i in range(len(peers))
            for j in range(i + 1, len(peers))
        ]
        if len(pairs) > max_pairs_per_city:
            picks = rng.choice(len(pairs), size=max_pairs_per_city, replace=False)
            pairs = [pairs[int(k)] for k in picks]
        for a, b in pairs:
            if internet.route(a, b).latency_ms < threshold_ms:
                ia, ib = index_of[a], index_of[b]
                close.add((min(ia, ib), max(ia, ib)))
    return close
