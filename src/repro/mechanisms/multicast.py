"""Expanding IP-multicast search inside the end-network.

The paper's first mechanism: "a simple expanding search within each
end-network using IP multicast ... assumes that IP multicast is enabled
within each end-network and that messages multicast from one host ... are
capable of reaching any other host in the end-network; the latter
assumption may often be invalid in large end-networks that are themselves
composed of multiple LANs or VLANs".

The simulation models both failure modes: per-end-network multicast
availability, and VLAN fragmentation that partitions large end-networks
into scopes a multicast cannot cross.
"""

from __future__ import annotations

import numpy as np

from repro.topology.internet import SyntheticInternet
from repro.util.rng import make_rng
from repro.util.validate import require_in_range


class MulticastSearch:
    """End-network-scoped peer discovery via simulated multicast."""

    def __init__(
        self,
        internet: SyntheticInternet,
        multicast_enabled_fraction: float = 0.7,
        vlan_fragmentation_threshold: int = 6,
        vlans_in_large_en: int = 3,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        require_in_range(
            multicast_enabled_fraction, "multicast_enabled_fraction", 0.0, 1.0
        )
        self._internet = internet
        rng = make_rng(seed)
        # Decide per end-network: multicast availability and VLAN scopes.
        self._en_enabled: dict[int, bool] = {}
        self._host_scope: dict[int, tuple[int, int]] = {}
        hosts_by_en: dict[int, list[int]] = {}
        for host in internet.hosts:
            hosts_by_en.setdefault(host.en_id, []).append(host.host_id)
        for en in internet.end_networks:
            self._en_enabled[en.en_id] = bool(
                rng.random() < multicast_enabled_fraction
            )
            members = hosts_by_en.get(en.en_id, [])
            if len(members) >= vlan_fragmentation_threshold:
                scopes = rng.integers(0, vlans_in_large_en, size=len(members))
            else:
                scopes = np.zeros(len(members), dtype=int)
            for host_id, scope in zip(members, scopes):
                self._host_scope[host_id] = (en.en_id, int(scope))

    def reachable_peers(self, host_id: int, peer_ids: set[int]) -> list[int]:
        """Peers an expanding multicast from ``host_id`` would discover."""
        en_id, scope = self._host_scope[host_id]
        if not self._en_enabled[en_id]:
            return []
        return [
            p
            for p, s in self._host_scope.items()
            if p != host_id and s == (en_id, scope) and p in peer_ids
        ]

    def find_nearest(
        self, host_id: int, peer_ids: set[int]
    ) -> tuple[int | None, float | None]:
        """The closest multicast-reachable peer (intra-EN, so all are near)."""
        reachable = self.reachable_peers(host_id, peer_ids)
        if not reachable:
            return None, None
        best = min(
            reachable, key=lambda p: self._internet.route(host_id, p).latency_ms
        )
        return best, self._internet.route(host_id, best).latency_ms
