"""Per-end-network membership registries.

The paper's second mechanism: "a central server inside each end-network
that tracks all peers inside the end-network that are currently in the P2P
system ... it needs a sufficiently large number of peers within each
end-network to justify the setup of the membership tracking server."

The simulation deploys registries only in end-networks whose peer
population meets a deployment threshold, so evaluations expose exactly that
coverage limitation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.internet import SyntheticInternet
from repro.util.errors import DataError
from repro.util.validate import require_positive


@dataclass(frozen=True)
class RegistryStats:
    """Deployment coverage summary."""

    end_networks_total: int
    end_networks_with_registry: int
    peers_covered: int
    peers_total: int

    @property
    def peer_coverage(self) -> float:
        return self.peers_covered / self.peers_total if self.peers_total else 0.0


class EndNetworkRegistry:
    """Membership tracking servers, one per (large enough) end-network."""

    def __init__(
        self,
        internet: SyntheticInternet,
        deployment_threshold: int = 2,
    ) -> None:
        require_positive(deployment_threshold, "deployment_threshold")
        self._internet = internet
        self._threshold = deployment_threshold
        self._members: dict[int, set[int]] = {}  # en_id -> joined peers
        self._deployed: set[int] = set()
        # Deployment decision happens against the *potential* population.
        peers_by_en: dict[int, int] = {}
        for host in internet.hosts:
            if host.kind.value == "peer":
                peers_by_en[host.en_id] = peers_by_en.get(host.en_id, 0) + 1
        for en_id, count in peers_by_en.items():
            if count >= deployment_threshold:
                self._deployed.add(en_id)
                self._members[en_id] = set()

    def has_registry(self, en_id: int) -> bool:
        return en_id in self._deployed

    def join(self, peer_id: int) -> bool:
        """Register a peer; returns False when its network has no registry."""
        en_id = self._internet.host(peer_id).en_id
        if en_id not in self._deployed:
            return False
        self._members[en_id].add(peer_id)
        return True

    def leave(self, peer_id: int) -> None:
        en_id = self._internet.host(peer_id).en_id
        members = self._members.get(en_id)
        if members is None or peer_id not in members:
            raise DataError(f"peer {peer_id} was not registered")
        members.discard(peer_id)

    def lookup(self, peer_id: int) -> list[int]:
        """Current co-located members (excluding the asker)."""
        en_id = self._internet.host(peer_id).en_id
        members = self._members.get(en_id, set())
        return [m for m in members if m != peer_id]

    def find_nearest(self, peer_id: int) -> tuple[int | None, float | None]:
        """Closest registered same-network peer."""
        members = self.lookup(peer_id)
        if not members:
            return None, None
        best = min(
            members, key=lambda m: self._internet.route(peer_id, m).latency_ms
        )
        return best, self._internet.route(peer_id, best).latency_ms

    def stats(self) -> RegistryStats:
        """Coverage of the deployment policy."""
        peers = [h for h in self._internet.hosts if h.kind.value == "peer"]
        covered = sum(1 for p in peers if p.en_id in self._deployed)
        return RegistryStats(
            end_networks_total=len(self._internet.end_networks),
            end_networks_with_registry=len(self._deployed),
            peers_covered=covered,
            peers_total=len(peers),
        )
