"""The paper's Section 5 mechanisms for beating the clustering condition.

Three families, all of which "explicitly or implicitly search for peers
that are topologically close":

1. **Expanding multicast search** inside the end-network
   (:mod:`repro.mechanisms.multicast`) — needs IP multicast enabled and can
   miss peers across VLAN boundaries;
2. **Per-end-network membership registry**
   (:mod:`repro.mechanisms.registry`) — centralised, needs enough local
   peers to justify the server;
3. **Topology hints over a key-value map** — the decentralised approach the
   paper evaluates: Upstream Connectivity Lists
   (:mod:`repro.mechanisms.ucl`, Fig 10) and IP prefixes
   (:mod:`repro.mechanisms.ipprefix`, Fig 11), both hostable on the Chord
   substrate in :mod:`repro.dht`.

:mod:`repro.mechanisms.composite` couples a mechanism with a traditional
nearest-peer algorithm, as the paper recommends; and
:mod:`repro.mechanisms.proximity` implements the UCL-extended proximity
addresses suggested for Vivaldi/PIC.
"""

from repro.mechanisms.composite import CompositeFinder, CompositeResult
from repro.mechanisms.ipprefix import (
    PrefixErrorRates,
    PrefixMap,
    prefix_error_rates,
)
from repro.mechanisms.multicast import MulticastSearch
from repro.mechanisms.proximity import ProximityAddress, proximity_compare
from repro.mechanisms.registry import EndNetworkRegistry
from repro.mechanisms.ucl import UclEntry, UclMap, compute_ucl

__all__ = [
    "UclMap",
    "UclEntry",
    "compute_ucl",
    "PrefixMap",
    "PrefixErrorRates",
    "prefix_error_rates",
    "MulticastSearch",
    "EndNetworkRegistry",
    "CompositeFinder",
    "CompositeResult",
    "ProximityAddress",
    "proximity_compare",
]
