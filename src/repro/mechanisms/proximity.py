"""Composite proximity addresses: coordinates extended with UCL hints.

The paper: "the UCL (or the IP prefix) is added as an extension of the
otherwise latency-based proximity address.  When comparing two such
composite addresses, if the UCL indicates that the nodes share an upstream
router, then the nodes are considered to be close together and the
proximity address may be ignored.  If the two nodes do not share an
upstream router, then the UCL is ignored."
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mechanisms.ucl import UclEntry
from repro.util.errors import DataError


@dataclass(frozen=True)
class ProximityAddress:
    """A node's composite address: coordinate + UCL (+ optional prefix)."""

    node_id: int
    coordinate: np.ndarray
    ucl: tuple[UclEntry, ...] = field(default_factory=tuple)
    ip_prefix: int | None = None
    prefix_length: int = 24

    def shared_router_estimate(self, other: "ProximityAddress") -> float | None:
        """Latency estimate through the closest shared upstream router.

        ``None`` when no router is shared.  The estimate is the sum of the
        two latencies to the shared router, minimised over shared routers —
        the rough-but-probe-free estimate Section 5 describes.
        """
        mine = {entry.router_id: entry.latency_ms for entry in self.ucl}
        best: float | None = None
        for entry in other.ucl:
            my_latency = mine.get(entry.router_id)
            if my_latency is None:
                continue
            estimate = my_latency + entry.latency_ms
            if best is None or estimate < best:
                best = estimate
        return best


def proximity_compare(a: ProximityAddress, b: ProximityAddress) -> float:
    """Estimated RTT between two composite addresses.

    Shared-UCL estimate wins when available (the coordinate is ignored);
    otherwise falls back to coordinate distance.
    """
    if a.coordinate.shape != b.coordinate.shape:
        raise DataError("coordinate dimensionalities differ")
    shared = a.shared_router_estimate(b)
    if shared is not None:
        return shared
    return float(np.linalg.norm(a.coordinate - b.coordinate))


def rank_candidates(
    me: ProximityAddress, candidates: list[ProximityAddress]
) -> list[tuple[int, float]]:
    """Candidates sorted by composite-address proximity to ``me``."""
    scored = [
        (candidate.node_id, proximity_compare(me, candidate))
        for candidate in candidates
    ]
    scored.sort(key=lambda pair: pair[1])
    return scored
