"""Coupling mechanisms with traditional nearest-peer algorithms.

The paper: "the three approaches listed above would be used in conjunction
with existing near-peer finding algorithms (and with one another) to obtain
maximum accuracy" — and for UCL specifically, "if the closest peer happens
to be significantly farther away ... we suggest coupling the above approach
with traditional nearest-peer algorithms".

:class:`CompositeFinder` runs a mechanism cascade (multicast → registry →
UCL → prefix, any subset) and falls back to a latency-only algorithm when
no mechanism produces a near candidate; the result records which stage
answered, so evaluations can attribute wins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import NearestPeerAlgorithm
from repro.mechanisms.ipprefix import PrefixMap
from repro.mechanisms.multicast import MulticastSearch
from repro.mechanisms.registry import EndNetworkRegistry
from repro.mechanisms.ucl import UclEntry, UclMap, compute_ucl
from repro.topology.internet import SyntheticInternet
from repro.util.rng import make_rng


@dataclass(frozen=True)
class CompositeResult:
    """Outcome of a composite search."""

    target: int
    found: int | None
    latency_ms: float | None
    stage: str  # "multicast" | "registry" | "ucl" | "prefix" | "fallback" | "none"
    probes: int


class CompositeFinder:
    """Mechanism cascade with algorithmic fallback."""

    def __init__(
        self,
        internet: SyntheticInternet,
        multicast: MulticastSearch | None = None,
        registry: EndNetworkRegistry | None = None,
        ucl_map: UclMap | None = None,
        prefix_map: PrefixMap | None = None,
        fallback: NearestPeerAlgorithm | None = None,
        ucl_max_estimate_ms: float = 10.0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self._internet = internet
        self._multicast = multicast
        self._registry = registry
        self._ucl_map = ucl_map
        self._prefix_map = prefix_map
        self._fallback = fallback
        self._ucl_max_estimate_ms = ucl_max_estimate_ms
        self._rng = make_rng(seed)
        self._peer_set: set[int] = set()

    def register_peer(self, peer_id: int, ucl: list[UclEntry] | None = None) -> None:
        """A peer joins: publish it through every configured mechanism."""
        self._peer_set.add(peer_id)
        if self._registry is not None:
            self._registry.join(peer_id)
        if self._ucl_map is not None:
            if ucl is None:
                ucl = compute_ucl(self._internet, peer_id, seed=self._rng)
            self._ucl_map.insert_peer(peer_id, ucl)
        if self._prefix_map is not None:
            self._prefix_map.insert_peer(peer_id)

    def find_nearest(self, target: int) -> CompositeResult:
        """Run the cascade for a joining peer ``target``."""
        if self._multicast is not None:
            found, latency = self._multicast.find_nearest(target, self._peer_set)
            if found is not None:
                return CompositeResult(target, found, latency, "multicast", probes=0)
        if self._registry is not None:
            found, latency = self._registry.find_nearest(target)
            if found is not None:
                return CompositeResult(target, found, latency, "registry", probes=0)
        if self._ucl_map is not None:
            ucl = compute_ucl(self._internet, target, seed=self._rng)
            found, latency, stats = self._ucl_map.find_nearest(
                target,
                ucl,
                max_estimate_ms=self._ucl_max_estimate_ms,
                seed=self._rng,
            )
            if found is not None:
                return CompositeResult(target, found, latency, "ucl", stats.probes)
        if self._prefix_map is not None:
            found, latency, probes = self._prefix_map.find_nearest(
                target, probe_budget=32, seed=self._rng
            )
            if found is not None and latency is not None and latency <= 2 * self._ucl_max_estimate_ms:
                return CompositeResult(target, found, latency, "prefix", probes)
        if self._fallback is not None:
            outcome = self._fallback.query(target, seed=self._rng)
            return CompositeResult(
                target,
                outcome.found,
                outcome.found_latency_ms,
                "fallback",
                outcome.probes,
            )
        return CompositeResult(target, None, None, "none", probes=0)
