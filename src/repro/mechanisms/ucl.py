"""Upstream Connectivity Lists (UCLs) — the paper's most promising mechanism.

A peer's UCL is "the list of routers that are at a fixed number of hops
(say 5) or closer from the peer, where peers would determine their UCLs by
running traceroutes to a few different locations in the Internet".  The
key-value mapping stores, per upstream router, the peers that list it —
annotated with the peer→router latency so that "two peers that share
upstream routers can form a rough estimate of their latency to each other
as the sum of their latencies to the closest common router" and discard
far candidates without probing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.measurement.ping import Pinger
from repro.measurement.traceroute import Rockettrace
from repro.topology.internet import SyntheticInternet
from repro.util.errors import DataError
from repro.util.rng import make_rng
from repro.util.validate import require_positive


@dataclass(frozen=True)
class UclEntry:
    """One UCL element: an upstream router and the latency to reach it."""

    router_id: int
    latency_ms: float


def compute_ucl(
    internet: SyntheticInternet,
    host_id: int,
    max_routers: int = 5,
    n_traceroute_targets: int = 3,
    tracer: Rockettrace | None = None,
    pinger: Pinger | None = None,
    seed: int | np.random.Generator | None = None,
) -> list[UclEntry]:
    """Determine a host's UCL by tracerouting to a few random destinations.

    Only routers that actually responded on some trace enter the UCL (a
    silent router is invisible to the mechanism — the realistic
    false-negative source the paper acknowledges).  Latencies to the
    routers come from ping.
    """
    require_positive(max_routers, "max_routers")
    rng = make_rng(seed)
    tracer = tracer or Rockettrace(internet, seed=rng)
    pinger = pinger or Pinger(internet, seed=rng)

    seen: dict[int, float] = {}
    candidates = [h.host_id for h in internet.hosts if h.host_id != host_id]
    picks = rng.choice(np.asarray(candidates), size=min(n_traceroute_targets, len(candidates)), replace=False)
    for destination in picks:
        trace = tracer.trace(host_id, int(destination))
        for hop in trace.hops[:max_routers]:
            if not hop.responded or hop.router_id in seen:
                continue
            rtt = pinger.ping_router(host_id, hop.router_id)
            if rtt is None and hop.rtt_ms is not None:
                rtt = hop.rtt_ms
            if rtt is not None:
                seen[hop.router_id] = float(rtt)
    return [UclEntry(router_id=r, latency_ms=lat) for r, lat in seen.items()]


@dataclass
class UclQueryStats:
    """Cost accounting for one UCL-based nearest-peer query."""

    candidates_retrieved: int = 0
    candidates_after_filter: int = 0
    probes: int = 0
    map_operations: int = 0


class UclMap:
    """The router -> peers key-value mapping.

    ``backend`` is anything with ``put(key, value)`` / ``get(key) -> set``
    — a plain :class:`DictBackend` for perfect-map evaluations (the paper's
    "we assume a perfect key-value map here") or a
    :class:`~repro.dht.kvstore.DhtKeyValueStore` for the deployable system.
    """

    def __init__(self, internet: SyntheticInternet, backend=None) -> None:
        self._internet = internet
        self._backend = backend if backend is not None else DictBackend()
        self._ucl_cache: dict[int, list[UclEntry]] = {}

    def insert_peer(self, peer_id: int, ucl: list[UclEntry]) -> None:
        """Publish ``peer_id`` under each of its upstream routers."""
        self._ucl_cache[peer_id] = ucl
        for entry in ucl:
            self._backend.put(entry.router_id, (peer_id, entry.latency_ms))

    def remove_peer(self, peer_id: int) -> None:
        """Withdraw a departed peer's mappings."""
        ucl = self._ucl_cache.pop(peer_id, [])
        for entry in ucl:
            if hasattr(self._backend, "remove"):
                self._backend.remove(entry.router_id, (peer_id, entry.latency_ms))

    def probe_peer(
        self, a: int, b: int, rng: np.random.Generator
    ) -> float:
        """Application-level RTT probe between two *participating* peers.

        Unlike ICMP ping (which NATed peers drop), peers inside the P2P
        system measure each other over the overlay protocol itself, so the
        probe always completes; it carries small multiplicative noise.
        """
        true = self._internet.route(a, b).latency_ms
        return true * float(np.exp(rng.normal(0.0, 0.02))) + float(
            rng.exponential(0.05)
        )

    def find_nearest(
        self,
        new_peer: int,
        ucl: list[UclEntry],
        max_estimate_ms: float | None = None,
        probe_budget: int | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> tuple[int | None, float | None, UclQueryStats]:
        """Find the nearest published peer sharing an upstream router.

        Candidates are ranked by the latency estimate
        ``lat(new_peer, router) + lat(candidate, router)`` minimised over
        shared routers; candidates whose estimate exceeds
        ``max_estimate_ms`` are dropped unprobed (the paper's answer to the
        prefix heuristic's false-positive cost).  Returns
        ``(peer, measured_latency, stats)`` with ``(None, None, stats)``
        when no candidate shares a router.
        """
        rng = make_rng(seed)
        stats = UclQueryStats()
        estimates: dict[int, float] = {}
        for entry in ucl:
            stats.map_operations += 1
            for candidate, candidate_latency in self._backend.get(entry.router_id):
                if candidate == new_peer:
                    continue
                estimate = entry.latency_ms + candidate_latency
                if candidate not in estimates or estimate < estimates[candidate]:
                    estimates[candidate] = estimate
        stats.candidates_retrieved = len(estimates)
        if max_estimate_ms is not None:
            estimates = {
                c: e for c, e in estimates.items() if e <= max_estimate_ms
            }
        stats.candidates_after_filter = len(estimates)
        if not estimates:
            return None, None, stats

        ranked = sorted(estimates, key=estimates.get)
        if probe_budget is not None:
            ranked = ranked[:probe_budget]
        best_peer, best_latency = None, None
        for candidate in ranked:
            measured = self.probe_peer(new_peer, candidate, rng)
            stats.probes += 1
            if best_latency is None or measured < best_latency:
                best_peer, best_latency = candidate, measured
        return best_peer, best_latency, stats


class DictBackend:
    """Perfect in-process key-value map (multi-valued)."""

    def __init__(self) -> None:
        self._data: dict = {}

    def put(self, key, value) -> None:
        self._data.setdefault(key, set()).add(value)

    def get(self, key) -> set:
        return self._data.get(key, set())

    def remove(self, key, value) -> None:
        values = self._data.get(key)
        if values is not None:
            values.discard(value)


def hop_length_vs_latency(
    internet: SyntheticInternet,
    peer_ids: list[int],
    max_latency_ms: float = 10.0,
    max_pairs_per_pop: int = 4000,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """(latency, hop_length) samples for close peer pairs — Fig 10's data.

    Enumerates pairs within each PoP (and across PoPs in the same city,
    which can also be close) and keeps those under ``max_latency_ms``.
    ``hop_length`` counts links, so "the number of routers to be tracked in
    order to discover peers at a given latency ... is half the
    corresponding hop-length value".
    """
    if max_latency_ms <= 0:
        raise DataError("max_latency_ms must be positive")
    rng = make_rng(seed)
    by_scope: dict[str, list[int]] = {}
    for peer in peer_ids:
        record = internet.host(peer)
        city = internet.pop(record.pop_id).city
        by_scope.setdefault(city, []).append(peer)

    latencies: list[float] = []
    hop_lengths: list[int] = []
    for peers in by_scope.values():
        if len(peers) < 2:
            continue
        pairs = [
            (peers[i], peers[j])
            for i in range(len(peers))
            for j in range(i + 1, len(peers))
        ]
        if len(pairs) > max_pairs_per_pop:
            picks = rng.choice(len(pairs), size=max_pairs_per_pop, replace=False)
            pairs = [pairs[int(k)] for k in picks]
        for a, b in pairs:
            route = internet.route(a, b)
            if route.latency_ms <= max_latency_ms:
                latencies.append(route.latency_ms)
                hop_lengths.append(route.hop_length)
    return np.asarray(latencies), np.asarray(hop_lengths, dtype=int)
