"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.util.errors import DataError


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render a monospace table with a header rule.

    Column widths adapt to content; numeric cells are compactly formatted.
    """
    if not headers:
        raise DataError("table needs at least one column")
    str_rows = [[_format_cell(c) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise DataError(
                f"row {i} has {len(row)} cells but table has {len(headers)} columns"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(widths[j]) for j, c in enumerate(cells)).rstrip()

    lines = [render_row(list(headers)), render_row(["-" * w for w in widths])]
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)


def series_table(
    x_name: str,
    x_values: Sequence[Any],
    series: Mapping[str, Sequence[Any]],
) -> str:
    """Render parallel series as a table with x as the first column."""
    headers = [x_name] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        row: list[Any] = [x]
        for name in series:
            column = series[name]
            if len(column) != len(x_values):
                raise DataError(
                    f"series {name!r} has {len(column)} values, expected {len(x_values)}"
                )
            row.append(column[i])
        rows.append(row)
    return format_table(headers, rows)
