"""Binned percentile scatter plots.

Figures 4 and 10 of the paper are "binned scatter-plots": sample points with
nearby x values are grouped into a bin represented by one x value, and the
5th/25th/50th/75th/95th percentiles of the y values in each bin are shown.
:func:`binned_percentiles` reproduces that reduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.util.errors import DataError

#: The percentile set shown in the paper's binned plots.
PAPER_PERCENTILES = (5, 25, 50, 75, 95)


@dataclass(frozen=True)
class BinnedPercentiles:
    """Result of a binned-percentile reduction.

    ``centers[i]`` is the representative x of bin ``i``; ``counts[i]`` the
    number of samples in it; ``percentiles[p][i]`` the p-th percentile of the
    y values in bin ``i``.
    """

    centers: np.ndarray
    counts: np.ndarray
    percentiles: dict[int, np.ndarray] = field(default_factory=dict)

    @property
    def medians(self) -> np.ndarray:
        """Convenience accessor for the 50th-percentile series."""
        if 50 not in self.percentiles:
            raise DataError("median was not among the requested percentiles")
        return self.percentiles[50]

    def rows(self) -> list[dict[str, float]]:
        """Flatten to a list of per-bin dicts (for table rendering)."""
        out = []
        for i, center in enumerate(self.centers):
            row: dict[str, float] = {"x": float(center), "count": int(self.counts[i])}
            for p, series in sorted(self.percentiles.items()):
                row[f"p{p}"] = float(series[i])
            out.append(row)
        return out


def log_bins(low: float, high: float, bins_per_decade: int = 4) -> np.ndarray:
    """Logarithmically spaced bin edges covering [low, high].

    The paper's latency axes are log-scale; binning in log space keeps each
    bin's relative width constant.
    """
    if low <= 0 or high <= low:
        raise DataError(f"need 0 < low < high, got low={low}, high={high}")
    decades = np.log10(high / low)
    n_edges = max(2, int(np.ceil(decades * bins_per_decade)) + 1)
    return np.geomspace(low, high, n_edges)


def binned_percentiles(
    x: Sequence[float],
    y: Sequence[float],
    edges: Sequence[float],
    percentiles: Sequence[int] = PAPER_PERCENTILES,
    min_count: int = 1,
) -> BinnedPercentiles:
    """Group (x, y) samples into bins of x and summarise y per bin.

    Bins with fewer than ``min_count`` samples are dropped (the paper's plots
    omit sparse bins rather than show noisy percentiles).  Bin centers are
    the geometric mean of the edges, matching log-scale axes.
    """
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.shape != ya.shape:
        raise DataError(f"x and y lengths differ: {xa.shape} vs {ya.shape}")
    if xa.size == 0:
        raise DataError("cannot bin an empty sample")
    edges_arr = np.asarray(edges, dtype=float)
    if edges_arr.ndim != 1 or edges_arr.size < 2:
        raise DataError("edges must be a 1-D array of at least two values")
    if np.any(np.diff(edges_arr) <= 0):
        raise DataError("edges must be strictly increasing")

    indices = np.digitize(xa, edges_arr) - 1
    centers: list[float] = []
    counts: list[int] = []
    per_p: dict[int, list[float]] = {p: [] for p in percentiles}
    for b in range(edges_arr.size - 1):
        mask = indices == b
        n = int(np.count_nonzero(mask))
        if n < min_count:
            continue
        lo, hi = edges_arr[b], edges_arr[b + 1]
        center = float(np.sqrt(lo * hi)) if lo > 0 else (lo + hi) / 2.0
        centers.append(center)
        counts.append(n)
        ys = ya[mask]
        for p in percentiles:
            per_p[p].append(float(np.percentile(ys, p)))

    return BinnedPercentiles(
        centers=np.asarray(centers),
        counts=np.asarray(counts),
        percentiles={p: np.asarray(v) for p, v in per_p.items()},
    )
