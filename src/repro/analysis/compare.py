"""Paper-vs-measured comparison records.

We are not expected to match the paper's absolute numbers (our substrate is a
synthetic Internet, not the authors' 2008 testbed), but the *shape* of every
result must hold: who wins, by roughly what factor, where peaks and
crossovers fall.  :class:`ShapeCheck` encodes one such qualitative claim with
a machine-checkable predicate; :class:`Comparison` pairs a paper-reported
value with our measured one for EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.tables import format_table
from repro.harness.results import TrialRecord


@dataclass(frozen=True)
class Comparison:
    """One paper-reported quantity next to our measured value."""

    experiment: str
    quantity: str
    paper_value: str
    measured_value: str
    note: str = ""


@dataclass
class ShapeCheck:
    """A qualitative claim from the paper, evaluated against measured data.

    Example: "Fig 8: P(correct closest) peaks at an intermediate cluster size
    and declines at 250 end-networks/cluster".
    """

    experiment: str
    claim: str
    predicate: Callable[[], bool]
    result: bool | None = field(default=None)

    def evaluate(self) -> bool:
        """Run the predicate once and cache the outcome."""
        if self.result is None:
            self.result = bool(self.predicate())
        return self.result


def format_trial_records(records: list[TrialRecord]) -> str:
    """Render harness trial records as a head-to-head comparison table.

    One row per scheme: the paper's three success/cost metrics plus the
    auxiliary-probe bill (beacon-to-beacon traffic and the like) and the
    membership-maintenance bill (0.0 under the static protocols).  When
    any record carries simulated timing (a daemon-protocol
    :class:`~repro.harness.results.DaemonTrialRecord`), five daemon
    columns are appended — median/p95/p99 simulated ms to answer, the
    deadline availability and the per-query retransmit bill — and
    records without timing degrade gracefully to ``-`` cells.
    """
    headers = ["scheme", "P(exact closest)", "P(correct cluster)",
               "probes/query", "aux/query", "maint/query"]
    timed = any(_has_timing(r) for r in records)
    if timed:
        headers += [
            "tta p50 (ms)", "tta p95 (ms)", "tta p99 (ms)",
            "availability", "retx/query",
        ]
    rows = []
    for r in records:
        row = [
            r.scheme,
            f"{r.exact_rate:.3f}",
            f"{r.cluster_rate:.3f}",
            f"{r.mean_probes_per_query:.1f}",
            f"{r.mean_aux_probes_per_query:.1f}",
            f"{r.mean_maintenance_probes_per_query:.1f}",
        ]
        if timed:
            if _has_timing(r):
                retransmits = getattr(r, "total_probe_retransmits", None)
                row += [
                    f"{r.tta_median_ms:.1f}",
                    f"{r.tta_p95_ms:.1f}",
                    f"{r.tta_p99_ms:.1f}",
                    f"{r.availability:.3f}",
                    (
                        "-"
                        if retransmits is None
                        else f"{retransmits / r.n_queries:.2f}"
                    ),
                ]
            else:
                row += ["-"] * 5
        rows.append(row)
    return format_table(headers, rows)


def _has_timing(record: TrialRecord) -> bool:
    """Whether a record carries the daemon timing arrays.

    Checks the arrays themselves (not the percentile properties): a
    :class:`~repro.harness.results.DaemonTrialRecord` built without its
    optional timing fields must degrade like an untimed record rather
    than crash the percentile computation.
    """
    return (
        getattr(record, "arrival_ms", None) is not None
        and getattr(record, "finish_ms", None) is not None
    )


def rank_by_time_to_answer(records: list[TrialRecord]) -> list[TrialRecord]:
    """Order daemon records by median time to answer, fastest first.

    The daemon protocol's headline ranking: schemes are judged by how
    quickly they *answer* under load, not how few probes they issue.
    Records without timing (non-daemon protocols) sort after all timed
    ones, keeping their relative order.
    """
    def key(indexed: tuple[int, TrialRecord]) -> tuple[int, float, int]:
        index, record = indexed
        if not _has_timing(record):
            return (1, 0.0, index)
        return (0, float(record.tta_median_ms), index)

    return [record for _, record in sorted(enumerate(records), key=key)]


def format_comparisons(comparisons: list[Comparison]) -> str:
    """Render comparison records as a table for EXPERIMENTS.md."""
    return format_table(
        ["experiment", "quantity", "paper", "measured", "note"],
        [
            [c.experiment, c.quantity, c.paper_value, c.measured_value, c.note]
            for c in comparisons
        ],
    )


def format_shape_checks(checks: list[ShapeCheck]) -> str:
    """Render shape-check outcomes as a PASS/FAIL table."""
    return format_table(
        ["experiment", "claim", "holds"],
        [
            [c.experiment, c.claim, "PASS" if c.evaluate() else "FAIL"]
            for c in checks
        ],
    )
