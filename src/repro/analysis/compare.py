"""Paper-vs-measured comparison records.

We are not expected to match the paper's absolute numbers (our substrate is a
synthetic Internet, not the authors' 2008 testbed), but the *shape* of every
result must hold: who wins, by roughly what factor, where peaks and
crossovers fall.  :class:`ShapeCheck` encodes one such qualitative claim with
a machine-checkable predicate; :class:`Comparison` pairs a paper-reported
value with our measured one for EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.tables import format_table
from repro.harness.results import TrialRecord


@dataclass(frozen=True)
class Comparison:
    """One paper-reported quantity next to our measured value."""

    experiment: str
    quantity: str
    paper_value: str
    measured_value: str
    note: str = ""


@dataclass
class ShapeCheck:
    """A qualitative claim from the paper, evaluated against measured data.

    Example: "Fig 8: P(correct closest) peaks at an intermediate cluster size
    and declines at 250 end-networks/cluster".
    """

    experiment: str
    claim: str
    predicate: Callable[[], bool]
    result: bool | None = field(default=None)

    def evaluate(self) -> bool:
        """Run the predicate once and cache the outcome."""
        if self.result is None:
            self.result = bool(self.predicate())
        return self.result


def format_trial_records(records: list[TrialRecord]) -> str:
    """Render harness trial records as a head-to-head comparison table.

    One row per scheme: the paper's three success/cost metrics plus the
    auxiliary-probe bill (beacon-to-beacon traffic and the like) and the
    membership-maintenance bill (0.0 under the static protocols).
    """
    return format_table(
        ["scheme", "P(exact closest)", "P(correct cluster)",
         "probes/query", "aux/query", "maint/query"],
        [
            [
                r.scheme,
                f"{r.exact_rate:.3f}",
                f"{r.cluster_rate:.3f}",
                f"{r.mean_probes_per_query:.1f}",
                f"{r.mean_aux_probes_per_query:.1f}",
                f"{r.mean_maintenance_probes_per_query:.1f}",
            ]
            for r in records
        ],
    )


def format_comparisons(comparisons: list[Comparison]) -> str:
    """Render comparison records as a table for EXPERIMENTS.md."""
    return format_table(
        ["experiment", "quantity", "paper", "measured", "note"],
        [
            [c.experiment, c.quantity, c.paper_value, c.measured_value, c.note]
            for c in comparisons
        ],
    )


def format_shape_checks(checks: list[ShapeCheck]) -> str:
    """Render shape-check outcomes as a PASS/FAIL table."""
    return format_table(
        ["experiment", "claim", "holds"],
        [
            [c.experiment, c.claim, "PASS" if c.evaluate() else "FAIL"]
            for c in checks
        ],
    )
