"""Empirical cumulative distribution functions.

Half of the paper's figures are CDFs (Fig 3 is a *cumulative count*, Figs 5-7
are CDFs / cumulative counts of latencies).  :class:`EmpiricalCdf` supports
both normalised (probability) and raw cumulative-count evaluation, plus
quantiles, so experiment drivers can report e.g. "fraction of pairs with
prediction measure in [0.5, 2]" exactly as Section 3.1 does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.util.errors import DataError

#: Interface alias used in type hints; an EmpiricalCdf is the only
#: implementation today but the alias keeps call sites honest.
Cdf = "EmpiricalCdf"


@dataclass(frozen=True)
class EmpiricalCdf:
    """An empirical CDF over a fixed sample.

    Stores the sorted sample; evaluation is a binary search.  Instances are
    immutable — build a new one to add data.
    """

    sorted_values: np.ndarray

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "EmpiricalCdf":
        """Build a CDF from any iterable of finite values."""
        arr = np.asarray(list(values), dtype=float)
        if arr.size == 0:
            raise DataError("cannot build a CDF from an empty sample")
        if not np.all(np.isfinite(arr)):
            raise DataError("CDF sample contains non-finite values")
        return cls(sorted_values=np.sort(arr))

    @property
    def n(self) -> int:
        """Sample size."""
        return int(self.sorted_values.size)

    def probability_at_or_below(self, x: float) -> float:
        """P(X <= x) under the empirical distribution."""
        return float(np.searchsorted(self.sorted_values, x, side="right")) / self.n

    def count_at_or_below(self, x: float) -> int:
        """Number of sample points <= x (the paper's 'cumulative count')."""
        return int(np.searchsorted(self.sorted_values, x, side="right"))

    def fraction_in_range(self, low: float, high: float) -> float:
        """Fraction of the sample in the closed interval [low, high].

        Section 3.1 reports "about 65% of the tested pairs have prediction
        measure between the range of 0.5 and 2" — this is that computation.
        """
        if high < low:
            raise DataError(f"empty range [{low}, {high}]")
        below_low = np.searchsorted(self.sorted_values, low, side="left")
        below_high = np.searchsorted(self.sorted_values, high, side="right")
        return float(below_high - below_low) / self.n

    def quantile(self, q: float) -> float:
        """Inverse CDF at ``q`` in [0, 1] (linear interpolation)."""
        if not 0.0 <= q <= 1.0:
            raise DataError(f"quantile must be in [0, 1], got {q}")
        return float(np.quantile(self.sorted_values, q))

    @property
    def median(self) -> float:
        """The 50th percentile."""
        return self.quantile(0.5)

    def evaluate(self, xs: Sequence[float]) -> np.ndarray:
        """Vectorised P(X <= x) over ``xs``."""
        arr = np.asarray(xs, dtype=float)
        return np.searchsorted(self.sorted_values, arr, side="right") / self.n

    def support(self) -> tuple[float, float]:
        """(min, max) of the sample."""
        return float(self.sorted_values[0]), float(self.sorted_values[-1])

    def as_series(self, points: int = 100, log_x: bool = False) -> tuple[np.ndarray, np.ndarray]:
        """Return (xs, P(X<=xs)) suitable for plotting.

        ``log_x`` spaces the evaluation grid logarithmically, matching the
        paper's log-scale latency axes (Figs 5, 6, 7).
        """
        lo, hi = self.support()
        if log_x:
            lo = max(lo, 1e-6)
            xs = np.geomspace(lo, max(hi, lo * (1 + 1e-9)), points)
        else:
            xs = np.linspace(lo, hi, points)
        return xs, self.evaluate(xs)
