"""Statistical analysis and presentation helpers.

The paper presents results as CDFs (Figs 3, 5, 6, 7), binned percentile
scatter plots (Figs 4, 10), and simple x/y series with error ranges
(Figs 8, 9, 11).  This package implements those exact presentation forms so
experiment drivers can emit the same rows/series the paper reports, plus
ASCII renderings for terminal inspection and comparison records for
EXPERIMENTS.md.
"""

from repro.analysis.binning import BinnedPercentiles, binned_percentiles, log_bins
from repro.analysis.cdf import Cdf, EmpiricalCdf
from repro.analysis.compare import Comparison, ShapeCheck, format_comparisons
from repro.analysis.plotting import ascii_cdf, ascii_series
from repro.analysis.tables import format_table, series_table

__all__ = [
    "Cdf",
    "EmpiricalCdf",
    "BinnedPercentiles",
    "binned_percentiles",
    "log_bins",
    "Comparison",
    "ShapeCheck",
    "format_comparisons",
    "ascii_cdf",
    "ascii_series",
    "format_table",
    "series_table",
]
