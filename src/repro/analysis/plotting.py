"""ASCII plotting for terminal-friendly experiment output.

The benchmark harness runs headless; these renderers let EXPERIMENTS.md and
bench output show the *shape* of each figure (where a curve peaks, where two
curves cross) without any plotting dependency.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.util.errors import DataError


def _scale(values: np.ndarray, out_max: int) -> np.ndarray:
    lo, hi = float(np.min(values)), float(np.max(values))
    if hi <= lo:
        return np.zeros(values.size, dtype=int)
    return np.round((values - lo) / (hi - lo) * out_max).astype(int)


def ascii_series(
    x: Sequence[float],
    ys: dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    title: str = "",
) -> str:
    """Render one or more y series against a shared x axis as ASCII art.

    Each series gets a distinct glyph; the legend maps glyphs to names.
    The x axis is rank-spaced (one column per sample when they fit), which
    matches the paper's habit of log/categorical x axes.
    """
    xa = np.asarray(x, dtype=float)
    if xa.size == 0:
        raise DataError("cannot plot an empty series")
    glyphs = "*o+x#@%&"
    all_y = np.concatenate([np.asarray(v, dtype=float) for v in ys.values()])
    if all_y.size == 0:
        raise DataError("no y data to plot")
    y_lo, y_hi = float(np.min(all_y)), float(np.max(all_y))
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    cols = _scale(np.arange(xa.size, dtype=float), width - 1)
    for si, (name, series) in enumerate(ys.items()):
        ya = np.asarray(series, dtype=float)
        if ya.shape != xa.shape:
            raise DataError(f"series {name!r} length {ya.size} != x length {xa.size}")
        rows = np.round((ya - y_lo) / (y_hi - y_lo) * (height - 1)).astype(int)
        for c, r in zip(cols, rows):
            grid[height - 1 - r][c] = glyphs[si % len(glyphs)]

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:>10.4g} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_lo:>10.4g} ┤" + "".join(grid[-1]))
    lines.append(" " * 12 + "└" + "─" * width)
    lines.append(
        " " * 12 + f"x: {xa[0]:.4g} .. {xa[-1]:.4g}   "
        + "  ".join(f"{glyphs[i % len(glyphs)]}={name}" for i, name in enumerate(ys))
    )
    return "\n".join(lines)


def ascii_cdf(
    samples_by_name: dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    log_x: bool = False,
) -> str:
    """Render empirical CDFs of one or more samples on a shared axis."""
    from repro.analysis.cdf import EmpiricalCdf

    cleaned = {k: np.asarray(v, dtype=float) for k, v in samples_by_name.items()}
    if not cleaned:
        raise DataError("no samples to plot")
    lo = min(float(np.min(v)) for v in cleaned.values())
    hi = max(float(np.max(v)) for v in cleaned.values())
    if log_x:
        lo = max(lo, 1e-6)
        xs = np.geomspace(lo, max(hi, lo * 1.001), width)
    else:
        xs = np.linspace(lo, hi, width)
    ys = {
        name: EmpiricalCdf.from_values(vals).evaluate(xs)
        for name, vals in cleaned.items()
    }
    return ascii_series(xs, ys, width=width, height=height, title=title)
