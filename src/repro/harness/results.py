"""Typed results produced by the query engine.

A :class:`TrialRecord` holds the raw per-query arrays of one trial (one
world, one built algorithm, one query batch) plus the scored hit masks; an
:class:`AggregateStats` summarises one metric across trials the way the
paper plots its three simulation runs (median/min/max, plus mean/std).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.util.errors import DataError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.harness.scenario import Scenario


class MembershipLog:
    """Persistent diff log of the membership epochs of a churn trial.

    Epoch 0 is the initial membership; epoch ``t`` is epoch ``t - 1`` with
    ``left[t]`` removed and ``joined[t]`` appended (sorted, the order
    :meth:`repro.algorithms.base.NearestPeerAlgorithm.join` maintains).
    Recording an event stores only the changed ids — O(changes) per event
    rather than the O(|M|) full-array copy the engine used to take — so a
    long trial over a large membership costs O(events + total changes)
    memory.  Epoch member arrays are reconstructed on demand
    (:meth:`membership`, or the sequential :meth:`walk` that
    :func:`repro.harness.scoring.score_epochs` drives).
    """

    def __init__(self, initial: np.ndarray) -> None:
        self._initial = np.array(initial, dtype=int, copy=True)
        self._joined: list[np.ndarray] = []
        self._left: list[np.ndarray] = []

    def append_event(
        self,
        joined: np.ndarray | Sequence[int],
        left: np.ndarray | Sequence[int],
    ) -> int:
        """Record one membership event; returns the new epoch index."""
        self._joined.append(np.asarray(joined, dtype=int))
        self._left.append(np.asarray(left, dtype=int))
        return len(self._joined)

    @property
    def n_epochs(self) -> int:
        """Epoch count, including the initial epoch 0."""
        return len(self._joined) + 1

    @property
    def stored_entries(self) -> int:
        """Total member ids held by the log — the memory-regression metric.

        Exactly ``|initial| + Σ |changes|``; the per-event full-snapshot
        representation this replaces stored ``Σ |M_t|`` instead.
        """
        return int(
            self._initial.size
            + sum(j.size for j in self._joined)
            + sum(x.size for x in self._left)
        )

    def _apply(self, members: np.ndarray, epoch: int) -> np.ndarray:
        left = self._left[epoch - 1]
        joined = self._joined[epoch - 1]
        if left.size:
            members = members[~np.isin(members, left)]
        if joined.size:
            members = np.concatenate([members, np.sort(joined)])
        return members

    def membership(self, epoch: int) -> np.ndarray:
        """Reconstruct the member array of one epoch."""
        if not 0 <= epoch < self.n_epochs:
            raise DataError(
                f"epoch {epoch} out of range [0, {self.n_epochs})"
            )
        members = self._initial
        for e in range(1, epoch + 1):
            members = self._apply(members, e)
        return members

    def walk(self, epochs: np.ndarray | Sequence[int]):
        """Yield the member array of each requested epoch, in order.

        ``epochs`` must be sorted ascending; the diffs are applied once in
        a single forward pass, so scoring a whole trial costs one walk.
        """
        members = self._initial
        cursor = 0
        for epoch in epochs:
            epoch = int(epoch)
            if epoch < cursor:
                raise DataError("walk() epochs must be sorted ascending")
            if epoch >= self.n_epochs:
                raise DataError(
                    f"epoch {epoch} out of range [0, {self.n_epochs})"
                )
            while cursor < epoch:
                cursor += 1
                members = self._apply(members, cursor)
            yield members


@dataclass(frozen=True)
class TrialRecord:
    """Per-query outcomes of one trial, scored against ground truth.

    All arrays are parallel, one entry per query.  ``exact_hit`` marks
    queries whose found member ties the true minimum latency to the target
    (end-network mates count as ties); ``cluster_hit`` marks queries whose
    found member shares the target's cluster.
    """

    scheme: str
    world_seed: int | None
    targets: np.ndarray
    found: np.ndarray
    found_latency_ms: np.ndarray
    probes: np.ndarray
    aux_probes: np.ndarray
    hops: np.ndarray
    exact_hit: np.ndarray
    cluster_hit: np.ndarray
    #: Hub latency of each found peer (Fig 9's load-concentration axis).
    found_hub_latency_ms: np.ndarray | None = None
    #: Membership-maintenance probes billed to each query slot (the events
    #: applied since the previous query).  ``None`` for static protocols.
    maintenance_probes: np.ndarray | None = None
    #: Live membership size at each query (churn protocol only).
    membership_size: np.ndarray | None = None
    #: Maintenance probes spent churning before the first query (the
    #: warmup phase of a churn trial), kept out of the per-query bill.
    #: Under a deferred maintenance discipline warmup events may buffer at
    #: zero cost here and land on the first query's bill instead.
    warmup_maintenance_probes: int = 0
    #: Membership events (non-empty join/leave calls) the trial applied,
    #: so maintenance cost can be normalised per event as well as per
    #: query.  0 for static protocols.
    n_churn_events: int = 0
    #: Service-mode phase this record belongs to (``None`` elsewhere).
    phase: str | None = None

    def __post_init__(self) -> None:
        n = self.targets.size
        for name in ("found", "found_latency_ms", "probes", "aux_probes",
                     "hops", "exact_hit", "cluster_hit",
                     "found_hub_latency_ms", "maintenance_probes",
                     "membership_size"):
            arr = getattr(self, name)
            if arr is None:
                continue
            if arr.shape != (n,):
                raise DataError(
                    f"TrialRecord.{name} has shape {arr.shape}, expected ({n},)"
                )

    # -- per-trial metrics (names double as aggregate keys) ----------------

    @property
    def n_queries(self) -> int:
        return int(self.targets.size)

    @property
    def exact_rate(self) -> float:
        """P(correct closest peer) over the batch."""
        return float(self.exact_hit.mean())

    @property
    def cluster_rate(self) -> float:
        """P(correct cluster) over the batch."""
        return float(self.cluster_hit.mean())

    @property
    def mean_probes_per_query(self) -> float:
        return float(self.probes.mean())

    @property
    def mean_aux_probes_per_query(self) -> float:
        return float(self.aux_probes.mean())

    @property
    def mean_hops_per_query(self) -> float:
        return float(self.hops.mean())

    @property
    def total_probes(self) -> int:
        return int(self.probes.sum())

    @property
    def mean_maintenance_probes_per_query(self) -> float:
        """Per-query maintenance bill; 0 under a static membership."""
        if self.maintenance_probes is None:
            return 0.0
        return float(self.maintenance_probes.mean())

    @property
    def total_maintenance_probes(self) -> int:
        """All maintenance probes, including the warmup phase."""
        billed = (
            int(self.maintenance_probes.sum())
            if self.maintenance_probes is not None
            else 0
        )
        return billed + int(self.warmup_maintenance_probes)

    @property
    def maintenance_probes_per_event(self) -> float:
        """Total maintenance bill (warmup included) per membership event.

        The discipline-comparison metric: an eager rebuild scheme pays
        |M|² here per event, a coalescing one ~|M|²/k.
        """
        if self.n_churn_events == 0:
            return 0.0
        return self.total_maintenance_probes / self.n_churn_events

    @property
    def mean_membership_size(self) -> float:
        """Mean live-membership size over the query batch (0 if static)."""
        if self.membership_size is None:
            return 0.0
        return float(self.membership_size.mean())

    @property
    def median_wrong_hub_latency_ms(self) -> float:
        """Median hub latency of found peers over queries that missed.

        The Fig 9 metric: when Meridian fails, does it concentrate on peers
        near the hub?  Zero when every query hit (or hub data is absent).
        """
        if self.found_hub_latency_ms is None:
            return 0.0
        wrong = self.found_hub_latency_ms[~self.exact_hit]
        return float(np.median(wrong)) if wrong.size else 0.0


@dataclass(frozen=True)
class DaemonTrialRecord(TrialRecord):
    """A :class:`TrialRecord` from the simulated-time query daemon.

    On top of the classic per-query arrays it carries the *timing* arrays
    (all in simulated ms): when each query arrived, when it entered
    service (after any FIFO wait behind its entry node's concurrency cap)
    and when its answer landed.  Queries are in arrival order.  The
    headline metric is **time to answer** — ``finish - arrival`` —
    summarised by the percentile properties the daemon scenarios rank
    schemes with.

    ``warmup_maintenance_probes`` holds the run's *trailing* maintenance
    (accrued after the last answer, claimed by no query's bill), so
    :attr:`~TrialRecord.total_maintenance_probes` stays exact.
    """

    #: Simulated arrival / service-start / answer times per query.
    arrival_ms: np.ndarray | None = None
    start_ms: np.ndarray | None = None
    finish_ms: np.ndarray | None = None
    #: Probe rounds each query's plan issued (its critical-path depth).
    probe_rounds: np.ndarray | None = None
    #: Simulated time from first arrival to last answer.
    makespan_ms: float = 0.0
    #: Time-weighted mean / peak of queries FIFO-queued behind node caps.
    queue_depth_time_avg: float = 0.0
    queue_depth_max: int = 0
    #: Time-weighted mean / peak of probes simultaneously in flight.
    in_flight_probes_time_avg: float = 0.0
    in_flight_probes_max: int = 0
    #: Continuous Meridian ring-repair totals (0 for other schemes).
    ring_repair_passes: int = 0
    ring_repair_nodes: int = 0
    ring_repair_probes: int = 0
    #: Timer-forced deferred-maintenance flushes.
    forced_flushes: int = 0
    #: Fault-path bills per query (``None`` without a fault model).
    probe_drops: np.ndarray | None = None
    probe_retransmits: np.ndarray | None = None
    probe_timeouts: np.ndarray | None = None
    relayed_probes: np.ndarray | None = None
    query_retries: np.ndarray | None = None
    #: Total simulated ms the run's probes spent on NAT relay detours.
    relay_extra_ms: float = 0.0
    #: Availability deadline the scenario scores against.
    deadline_ms: float = float("inf")
    #: Exact per-membership-event maintenance bills from the scheduler's
    #: ledger, length ``n_churn_events``.  Unlike the per-query
    #: ``maintenance_probes`` claims (first finisher wins), each entry is
    #: invariant to stepper choice and shard layout.
    maintenance_by_event: np.ndarray | None = None
    #: Maintenance attributable to no membership event (Meridian's
    #: continuous ring repair).  ``sum(maintenance_by_event) +
    #: maintenance_background_probes == total_maintenance_probes``.
    maintenance_background_probes: int = 0
    #: Event-loop diagnostics: events executed, live events left queued at
    #: drain (always 0 for a clean run), the largest raw heap ever held,
    #: and the lifetime cancelled-event count (the compaction workload).
    loop_events: int = 0
    loop_pending_at_drain: int = 0
    loop_queue_peak: int = 0
    loop_cancelled_events: int = 0
    #: Trace stream (tuple of :class:`repro.obs.trace.Span`, canonical
    #: order) and sampled metrics
    #: (:class:`repro.obs.metrics.TimeSeriesBlock`); ``None`` unless the
    #: trial ran with ``DaemonSpec.trace`` set.
    spans: tuple | None = None
    timeseries: object | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        n = self.targets.size
        for name in (
            "arrival_ms",
            "start_ms",
            "finish_ms",
            "probe_rounds",
            "probe_drops",
            "probe_retransmits",
            "probe_timeouts",
            "relayed_probes",
            "query_retries",
        ):
            arr = getattr(self, name)
            if arr is not None and arr.shape != (n,):
                raise DataError(
                    f"DaemonTrialRecord.{name} has shape {arr.shape}, "
                    f"expected ({n},)"
                )
        ledger = self.maintenance_by_event
        if ledger is not None and ledger.shape != (self.n_churn_events,):
            raise DataError(
                f"DaemonTrialRecord.maintenance_by_event has shape "
                f"{ledger.shape}, expected ({self.n_churn_events},)"
            )

    @property
    def maintenance_probes_per_event(self) -> float:
        """Mean exact per-event maintenance bill from the ledger.

        Prefers the scheduler's per-event ledger (background repair such
        as Meridian ring maintenance excluded — that is reported
        separately as :attr:`maintenance_background_probes`); falls back
        to the aggregate total/event ratio when no ledger was recorded.
        """
        if self.maintenance_by_event is not None:
            if self.maintenance_by_event.size == 0:
                return 0.0
            return float(self.maintenance_by_event.mean())
        if self.n_churn_events == 0:
            return 0.0
        return self.total_maintenance_probes / self.n_churn_events

    # -- timing metrics ----------------------------------------------------

    @property
    def time_to_answer_ms(self) -> np.ndarray:
        """Per-query answer latency: arrival to answer, queueing included."""
        return self.finish_ms - self.arrival_ms

    @property
    def queue_wait_ms(self) -> np.ndarray:
        """Per-query FIFO wait before entering service."""
        return self.start_ms - self.arrival_ms

    @property
    def service_time_ms(self) -> np.ndarray:
        """Per-query in-service time (the probing critical path)."""
        return self.finish_ms - self.start_ms

    @property
    def tta_mean_ms(self) -> float:
        return float(self.time_to_answer_ms.mean())

    @property
    def tta_median_ms(self) -> float:
        return float(np.percentile(self.time_to_answer_ms, 50))

    @property
    def tta_p95_ms(self) -> float:
        return float(np.percentile(self.time_to_answer_ms, 95))

    @property
    def tta_p99_ms(self) -> float:
        return float(np.percentile(self.time_to_answer_ms, 99))

    @property
    def mean_queue_wait_ms(self) -> float:
        return float(self.queue_wait_ms.mean())

    @property
    def mean_probe_rounds(self) -> float:
        """Mean critical-path depth (sequential probe rounds per query)."""
        if self.probe_rounds is None:
            return 0.0
        return float(self.probe_rounds.mean())

    @property
    def simulated_queries_per_sec(self) -> float:
        """Answer throughput in simulated time."""
        if self.makespan_ms <= 0:
            return 0.0
        return self.n_queries / (self.makespan_ms / 1000.0)

    # -- fault metrics -----------------------------------------------------

    @property
    def availability(self) -> float:
        """Fraction of queries answered within the scenario's deadline.

        1.0 when no deadline is set: every query is eventually answered
        (the daemon retries until it hears something), so availability
        only bites when lateness has a cost.
        """
        if not np.isfinite(self.deadline_ms):
            return 1.0
        return float((self.time_to_answer_ms <= self.deadline_ms).mean())

    @property
    def total_probe_drops(self) -> int:
        return 0 if self.probe_drops is None else int(self.probe_drops.sum())

    @property
    def total_probe_retransmits(self) -> int:
        if self.probe_retransmits is None:
            return 0
        return int(self.probe_retransmits.sum())

    @property
    def total_probe_timeouts(self) -> int:
        if self.probe_timeouts is None:
            return 0
        return int(self.probe_timeouts.sum())

    @property
    def total_relayed_probes(self) -> int:
        if self.relayed_probes is None:
            return 0
        return int(self.relayed_probes.sum())

    @property
    def total_query_retries(self) -> int:
        if self.query_retries is None:
            return 0
        return int(self.query_retries.sum())


@dataclass(frozen=True)
class AggregateStats:
    """One metric summarised across trials (the paper's median/min/max)."""

    metric: str
    count: int
    mean: float
    median: float
    minimum: float
    maximum: float
    std: float

    @classmethod
    def from_values(cls, metric: str, values: Sequence[float]) -> "AggregateStats":
        if len(values) == 0:
            raise DataError(f"cannot aggregate zero values for {metric!r}")
        arr = np.asarray(values, dtype=float)
        return cls(
            metric=metric,
            count=int(arr.size),
            mean=float(arr.mean()),
            median=float(np.median(arr)),
            minimum=float(arr.min()),
            maximum=float(arr.max()),
            std=float(arr.std()),
        )

    def describe(self) -> str:
        """One-line summary for experiment logs."""
        return (
            f"{self.metric}: median={self.median:.4g} "
            f"[{self.minimum:.4g}, {self.maximum:.4g}] over {self.count} trials"
        )


@dataclass(frozen=True)
class ScenarioResult:
    """All trials of one scenario, with cross-trial aggregation."""

    scenario: "Scenario"
    records: list[TrialRecord] = field(default_factory=list)

    @property
    def n_trials(self) -> int:
        return len(self.records)

    def values(self, metric: str) -> list[float]:
        """The per-trial values of a :class:`TrialRecord` metric."""
        if not self.records:
            raise DataError(f"scenario {self.scenario.name!r} produced no trials")
        return [float(getattr(record, metric)) for record in self.records]

    def aggregate(self, metric: str) -> AggregateStats:
        """Summarise a per-trial metric across all trials."""
        return AggregateStats.from_values(metric, self.values(metric))
