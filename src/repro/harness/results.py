"""Typed results produced by the query engine.

A :class:`TrialRecord` holds the raw per-query arrays of one trial (one
world, one built algorithm, one query batch) plus the scored hit masks; an
:class:`AggregateStats` summarises one metric across trials the way the
paper plots its three simulation runs (median/min/max, plus mean/std).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.util.errors import DataError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.harness.scenario import Scenario


@dataclass(frozen=True)
class TrialRecord:
    """Per-query outcomes of one trial, scored against ground truth.

    All arrays are parallel, one entry per query.  ``exact_hit`` marks
    queries whose found member ties the true minimum latency to the target
    (end-network mates count as ties); ``cluster_hit`` marks queries whose
    found member shares the target's cluster.
    """

    scheme: str
    world_seed: int | None
    targets: np.ndarray
    found: np.ndarray
    found_latency_ms: np.ndarray
    probes: np.ndarray
    aux_probes: np.ndarray
    hops: np.ndarray
    exact_hit: np.ndarray
    cluster_hit: np.ndarray
    #: Hub latency of each found peer (Fig 9's load-concentration axis).
    found_hub_latency_ms: np.ndarray | None = None
    #: Membership-maintenance probes billed to each query slot (the events
    #: applied since the previous query).  ``None`` for static protocols.
    maintenance_probes: np.ndarray | None = None
    #: Live membership size at each query (churn protocol only).
    membership_size: np.ndarray | None = None
    #: Maintenance probes spent churning before the first query (the
    #: warmup phase of a churn trial), kept out of the per-query bill.
    warmup_maintenance_probes: int = 0

    def __post_init__(self) -> None:
        n = self.targets.size
        for name in ("found", "found_latency_ms", "probes", "aux_probes",
                     "hops", "exact_hit", "cluster_hit",
                     "found_hub_latency_ms", "maintenance_probes",
                     "membership_size"):
            arr = getattr(self, name)
            if arr is None:
                continue
            if arr.shape != (n,):
                raise DataError(
                    f"TrialRecord.{name} has shape {arr.shape}, expected ({n},)"
                )

    # -- per-trial metrics (names double as aggregate keys) ----------------

    @property
    def n_queries(self) -> int:
        return int(self.targets.size)

    @property
    def exact_rate(self) -> float:
        """P(correct closest peer) over the batch."""
        return float(self.exact_hit.mean())

    @property
    def cluster_rate(self) -> float:
        """P(correct cluster) over the batch."""
        return float(self.cluster_hit.mean())

    @property
    def mean_probes_per_query(self) -> float:
        return float(self.probes.mean())

    @property
    def mean_aux_probes_per_query(self) -> float:
        return float(self.aux_probes.mean())

    @property
    def mean_hops_per_query(self) -> float:
        return float(self.hops.mean())

    @property
    def total_probes(self) -> int:
        return int(self.probes.sum())

    @property
    def mean_maintenance_probes_per_query(self) -> float:
        """Per-query maintenance bill; 0 under a static membership."""
        if self.maintenance_probes is None:
            return 0.0
        return float(self.maintenance_probes.mean())

    @property
    def total_maintenance_probes(self) -> int:
        """All maintenance probes, including the warmup phase."""
        billed = (
            int(self.maintenance_probes.sum())
            if self.maintenance_probes is not None
            else 0
        )
        return billed + int(self.warmup_maintenance_probes)

    @property
    def mean_membership_size(self) -> float:
        """Mean live-membership size over the query batch (0 if static)."""
        if self.membership_size is None:
            return 0.0
        return float(self.membership_size.mean())

    @property
    def median_wrong_hub_latency_ms(self) -> float:
        """Median hub latency of found peers over queries that missed.

        The Fig 9 metric: when Meridian fails, does it concentrate on peers
        near the hub?  Zero when every query hit (or hub data is absent).
        """
        if self.found_hub_latency_ms is None:
            return 0.0
        wrong = self.found_hub_latency_ms[~self.exact_hit]
        return float(np.median(wrong)) if wrong.size else 0.0


@dataclass(frozen=True)
class AggregateStats:
    """One metric summarised across trials (the paper's median/min/max)."""

    metric: str
    count: int
    mean: float
    median: float
    minimum: float
    maximum: float
    std: float

    @classmethod
    def from_values(cls, metric: str, values: Sequence[float]) -> "AggregateStats":
        if len(values) == 0:
            raise DataError(f"cannot aggregate zero values for {metric!r}")
        arr = np.asarray(values, dtype=float)
        return cls(
            metric=metric,
            count=int(arr.size),
            mean=float(arr.mean()),
            median=float(np.median(arr)),
            minimum=float(arr.min()),
            maximum=float(arr.max()),
            std=float(arr.std()),
        )

    def describe(self) -> str:
        """One-line summary for experiment logs."""
        return (
            f"{self.metric}: median={self.median:.4g} "
            f"[{self.minimum:.4g}, {self.maximum:.4g}] over {self.count} trials"
        )


@dataclass(frozen=True)
class ScenarioResult:
    """All trials of one scenario, with cross-trial aggregation."""

    scenario: "Scenario"
    records: list[TrialRecord] = field(default_factory=list)

    @property
    def n_trials(self) -> int:
        return len(self.records)

    def values(self, metric: str) -> list[float]:
        """The per-trial values of a :class:`TrialRecord` metric."""
        if not self.records:
            raise DataError(f"scenario {self.scenario.name!r} produced no trials")
        return [float(getattr(record, metric)) for record in self.records]

    def aggregate(self, metric: str) -> AggregateStats:
        """Summarise a per-trial metric across all trials."""
        return AggregateStats.from_values(metric, self.values(metric))
